"""Ready-made topologies used by tests, benchmarks, and examples.

:func:`figure3_network` reproduces the paper's Figure 3: an access
operator with three processing platforms, an HTTP optimizer and web
cache on the client path, and a NAT&firewall protecting the internal
platforms -- Platforms 1 and 2 are not reachable from the outside, so
the Figure 4 push-notification module can only be placed on Platform 3.

:func:`grow_topology` extends a base network with extra routers and
platforms; Figure 10 uses it to measure how static analysis scales with
operator network size.
"""

from __future__ import annotations

from typing import Optional

from repro.netmodel.topology import Network

#: Address plan of the Figure 3 reproduction.
CLIENT_PREFIX = "172.16.0.0/16"
PLATFORM1_POOL = "10.1.0.0/24"
PLATFORM2_POOL = "10.2.0.0/24"
PLATFORM3_POOL = "192.0.2.0/24"
CLIENT_ADDR = "172.16.15.133"


def figure3_network() -> Network:
    """The paper's Figure 3 operator network.

    Topology::

        internet -- r1 -- platform3            (externally reachable)
                     |
                    fw (nat&firewall: denies inbound to the private
                     |                platform pools)
                    r2 -- clients (172.16/16)
                     |\\-- platform1 (private)
                     |--- platform2 (private)
                    httpopt + webcache on the client HTTP path (r2)
    """
    net = Network("figure3")
    net.add_internet()
    net.add_router("r1")
    net.add_router("r2")
    net.add_client_subnet("clients", CLIENT_PREFIX)
    net.add_platform("platform1", PLATFORM1_POOL)
    net.add_platform("platform2", PLATFORM2_POOL)
    net.add_platform("platform3", PLATFORM3_POOL)
    # The NAT&firewall protects the operator's internal platforms:
    # traffic destined to their private pools is dropped at the border.
    net.add_middlebox(
        "fw",
        "IPFilter",
        "deny dst net %s" % PLATFORM1_POOL,
        "deny dst net %s" % PLATFORM2_POOL,
        "allow any",
    )
    net.link("internet", "r1")
    net.link("r1", "platform3")
    net.link("r1", "fw", b_port=1)       # iface 1 = outside
    net.link("fw", "r2", a_port=0)       # iface 0 = inside
    net.link("r2", "clients")
    net.link("r2", "platform1")
    net.link("r2", "platform2")
    net.compute_routes()
    return net


def figure3_operator_policy() -> str:
    """The operator requirement of Section 2.2: client-bound HTTP must
    traverse the HTTP optimizer (here: the fw path into r2)."""
    return "reach from internet tcp src port 80 -> fw -> client"


def linear_network(
    n_middleboxes: int, with_platform: bool = True
) -> Network:
    """A chain of routers and middleboxes, Figure 10's growth pattern.

    ``internet - r0 - mb0 - r1 - mb1 - ... - rN - clients`` with an
    externally-reachable platform hanging off ``r0``.
    """
    net = Network("linear-%d" % n_middleboxes)
    net.add_internet()
    previous = "internet"
    for index in range(n_middleboxes + 1):
        router = "r%d" % index
        net.add_router(router)
        net.link(previous, router)
        if index < n_middleboxes:
            box = "mb%d" % index
            net.add_middlebox(box, "Counter")
            net.link(router, box)
            previous = box
        else:
            previous = router
    net.add_client_subnet("clients", CLIENT_PREFIX)
    net.link(previous, "clients")
    if with_platform:
        net.add_platform("platform0", PLATFORM3_POOL)
        net.link("r0", "platform0")
    net.compute_routes()
    return net


def star_network(
    n_platforms: int, pool_base: Optional[int] = None
) -> Network:
    """One border router fanning out to ``n_platforms`` platforms.

    Used by platform-scaling benchmarks that need many candidate
    placement targets.
    """
    net = Network("star-%d" % n_platforms)
    net.add_internet()
    net.add_router("r0")
    net.add_client_subnet("clients", CLIENT_PREFIX)
    net.link("internet", "r0")
    net.link("r0", "clients")
    for index in range(n_platforms):
        name = "platform%d" % index
        net.add_platform(name, "192.0.%d.0/24" % (index + 1))
        net.link("r0", name)
    net.compute_routes()
    return net
