"""The operator topology graph.

A :class:`Network` holds typed nodes connected by bidirectional links:

* :class:`Router` -- forwards by longest-prefix match,
* :class:`Middlebox` -- an operator middlebox, backed by a Click element
  class (stateful firewall, HTTP optimizer, web cache, NAT...),
* :class:`Platform` -- an In-Net processing platform with an address
  pool from which deployed modules get their unique addresses,
* :class:`ClientSubnet` -- the operator's residential clients,
* :class:`Host` -- a single addressed endpoint,
* :class:`Internet` -- everything outside the operator (default route).

``compute_routes()`` fills every router's table with shortest-path
routes toward every addressed node, which is the "snapshot of routing
tables" the controller verifies against (Section 4.3).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.common.addr import parse_prefix, prefix_range
from repro.common.errors import ConfigError
from repro.common.intervals import IntervalSet
from repro.netmodel.routing import RoutingTable


class Node:
    """Base class for topology nodes."""

    def __init__(self, name: str):
        self.name = name
        #: port number -> (peer node name, peer port).
        self.ports: Dict[int, Tuple[str, int]] = {}
        self._port_counter = itertools.count()

    def allocate_port(self) -> int:
        """Next unused port number on this node."""
        port = next(self._port_counter)
        while port in self.ports:
            port = next(self._port_counter)
        return port

    #: Addresses owned by this node (empty = none).
    def owned_addresses(self) -> IntervalSet:
        return IntervalSet.empty()

    @property
    def kind(self) -> str:
        return type(self).__name__.lower()

    def __repr__(self) -> str:
        return "%s(%r)" % (type(self).__name__, self.name)


class Router(Node):
    """An IP router with an LPM routing table."""

    def __init__(self, name: str):
        super().__init__(name)
        self.table = RoutingTable()


class Host(Node):
    """A single endpoint with one address."""

    def __init__(self, name: str, address: int):
        super().__init__(name)
        self.address = address

    def owned_addresses(self) -> IntervalSet:
        return IntervalSet.single(self.address)


class ClientSubnet(Node):
    """The operator's residential/mobile client subnet."""

    def __init__(self, name: str, network: int, plen: int):
        super().__init__(name)
        self.network = network
        self.plen = plen

    def owned_addresses(self) -> IntervalSet:
        low, high = prefix_range(self.network, self.plen)
        return IntervalSet.from_interval(low, high)


class Internet(Node):
    """Everything outside the operator's network (default route)."""

    def owned_addresses(self) -> IntervalSet:
        # The internet owns whatever nobody inside owns; for routing we
        # install it as the default route rather than via this set.
        return IntervalSet.empty()


class Middlebox(Node):
    """An operator middlebox backed by a Click element class.

    ``element_class``/``element_args`` are instantiated once per
    verification (symbolically) and once per concrete run.  Two-interface
    elements (StatefulFirewall, ChangeEnforcer) map their element ports
    to topology ports directly; single-port elements placed on-path
    forward from each interface to the other.
    """

    def __init__(
        self,
        name: str,
        element_class: str,
        element_args: Tuple[str, ...] = (),
    ):
        super().__init__(name)
        self.element_class = element_class
        self.element_args = tuple(element_args)

    def make_element(self):
        """Instantiate the backing Click element."""
        from repro.click.element import create_element

        return create_element(self.element_class, self.name,
                              list(self.element_args))


class Platform(Node):
    """An In-Net processing platform.

    Deployed modules are tracked as ``module name -> (address, config)``;
    the platform owns its whole address pool, so routers deliver any
    pool address here and the platform's internal switch demuxes to the
    right module (the OpenFlow rules of Section 4.3).
    """

    def __init__(
        self,
        name: str,
        pool_network: int,
        pool_plen: int,
        capacity: Optional[int] = None,
    ):
        super().__init__(name)
        self.pool_network = pool_network
        self.pool_plen = pool_plen
        #: Maximum concurrently deployed modules (None = unbounded by
        #: policy; the address pool still bounds it physically).
        self.capacity = capacity
        #: Availability: a crashed platform is marked down by the
        #: failover engine so it stops being a placement candidate
        #: (see :mod:`repro.resilience`).
        self.up = True
        #: module name -> (assigned address, ClickConfig).
        self.modules: Dict[str, Tuple[int, object]] = {}
        self._next_offset = 1
        #: Addresses handed out but returned unused (failed/aborted
        #: placements); reused lowest-first before fresh offsets.
        self._released: set = set()
        #: Lifetime allocation accounting.  At control-plane quiesce
        #: (no trial placement in flight) every outstanding address
        #: must be bound to a deployed module, so
        #: ``allocated_total - released_total == len(modules)`` -- the
        #: leak invariant the chaos harness checks after every event.
        self.allocated_total = 0
        self.released_total = 0
        #: The platform switch's OpenFlow-style table; the controller's
        #: steering rules land here (Section 4.3).
        from repro.netmodel.flowtable import FlowTable

        self.flow_table = FlowTable()

    @property
    def has_capacity(self) -> bool:
        """Whether one more module fits under the capacity policy.

        A platform marked failed never has capacity: the controller's
        candidate loop and the migration target check both route
        through here, so a dead box silently drops out of placement.
        """
        if not self.up:
            return False
        return self.capacity is None or len(self.modules) < self.capacity

    def mark_failed(self) -> None:
        """Take the platform out of service (crash / maintenance).

        Callers that hold a :class:`Network` should also
        ``bump_epoch()`` so cached compiled models are invalidated;
        the failover engine does both.
        """
        self.up = False

    def mark_recovered(self) -> None:
        """Return the platform to service after repair."""
        self.up = True

    def outstanding_addresses(self) -> int:
        """Addresses handed out and not yet returned to the pool."""
        return self.allocated_total - self.released_total

    def owned_addresses(self) -> IntervalSet:
        low, high = prefix_range(self.pool_network, self.pool_plen)
        return IntervalSet.from_interval(low, high)

    def allocate_address(self) -> int:
        """Next unused address from the pool (released ones first)."""
        in_use = {addr for addr, _cfg in self.modules.values()}
        while self._released:
            candidate = min(self._released)
            self._released.discard(candidate)
            if candidate not in in_use:
                self.allocated_total += 1
                return candidate
        low, high = prefix_range(self.pool_network, self.pool_plen)
        candidate = low + self._next_offset
        while candidate in in_use:
            candidate += 1
        if candidate > high:
            raise ConfigError(
                "platform %r address pool exhausted" % (self.name,)
            )
        self._next_offset = candidate - low + 1
        self.allocated_total += 1
        return candidate

    def adopt_address(self, address: int) -> None:
        """Register an externally assigned address as allocated.

        Journal replay re-installs modules with the exact addresses the
        original controller handed out; this keeps the allocation
        accounting (and hence the leak invariant) balanced without
        running the allocator.
        """
        low, high = prefix_range(self.pool_network, self.pool_plen)
        if not low <= address <= high:
            raise ConfigError(
                "address %d is not in platform %r's pool"
                % (address, self.name)
            )
        self._released.discard(address)
        self.allocated_total += 1

    def release_address(self, address: int) -> None:
        """Return an allocated-but-unused address to the pool.

        The controller calls this on every non-commit exit of a trial
        placement (rejection, verification failure, next-candidate);
        without it each failed attempt permanently shrinks the pool.
        """
        low, high = prefix_range(self.pool_network, self.pool_plen)
        if not low <= address <= high:
            raise ConfigError(
                "address %d is not in platform %r's pool"
                % (address, self.name)
            )
        in_use = {addr for addr, _cfg in self.modules.values()}
        if address in in_use:
            raise ConfigError(
                "address %d is still bound to a deployed module"
                % (address,)
            )
        self.released_total += 1
        if address == low + self._next_offset - 1:
            # Releasing the most recent allocation rewinds the cursor,
            # so a fully-rejected request leaves the pool byte-identical.
            self._next_offset -= 1
        else:
            self._released.add(address)

    def free_address_count(self) -> int:
        """Addresses :meth:`allocate_address` can still hand out.

        Leaked allocations (handed out, never deployed, never released)
        show up here as missing capacity -- the regression the
        controller's release-on-every-non-commit-exit discipline guards
        against.
        """
        low, high = prefix_range(self.pool_network, self.pool_plen)
        in_use = {addr for addr, _cfg in self.modules.values()}
        cursor = low + self._next_offset
        fresh = max(0, high - cursor + 1)
        fresh -= sum(1 for addr in in_use if addr >= cursor)
        fresh += sum(1 for addr in self._released if addr not in in_use)
        return fresh

    def deploy(
        self,
        module_name: str,
        address: int,
        config,
        proto: Optional[int] = None,
        port: Optional[int] = None,
    ) -> None:
        """Record a deployed module and install its steering rule.

        With ``proto``/``port`` set, only that traffic class is steered
        to the module (the paper's address/protocol/port combination).
        """
        if module_name in self.modules:
            raise ConfigError(
                "module %r already deployed on %r"
                % (module_name, self.name)
            )
        self.modules[module_name] = (address, config)
        from repro.netmodel.flowtable import module_steering_rule

        module_steering_rule(
            self.flow_table, address, module_name,
            proto=proto, port=port,
        )

    def undeploy(self, module_name: str) -> None:
        """Remove a deployed module and its flow rules."""
        self.modules.pop(module_name, None)
        self.flow_table.remove_by_cookie(module_name)

    def module_address(self, module_name: str) -> int:
        """Assigned address of a deployed module."""
        return self.modules[module_name][0]


class Link:
    """A bidirectional link between two node ports."""

    def __init__(
        self,
        a: str,
        a_port: int,
        b: str,
        b_port: int,
        latency_s: float = 0.0,
    ):
        self.a, self.a_port = a, a_port
        self.b, self.b_port = b, b_port
        #: One-way propagation delay (the forwarding plane sums these
        #: along the path into each delivery's timestamp).
        self.latency_s = latency_s

    def __repr__(self) -> str:
        return "Link(%s[%d] <-> %s[%d], %.1f ms)" % (
            self.a, self.a_port, self.b, self.b_port,
            self.latency_s * 1e3,
        )


class Network:
    """The operator's topology snapshot."""

    def __init__(self, name: str = "operator"):
        self.name = name
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        #: Model epoch: bumped by topology changes and by the controller
        #: on every *real* deploy, kill, and migration.  Trial
        #: placements never bump it, which is what lets compiled models
        #: and routing tables be reused across admission candidates.
        self._epoch = 0
        #: Signature of the route inputs the last time
        #: :meth:`compute_routes` actually ran (None = never).
        self._routes_signature = None

    # -- epochs ---------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Current model epoch (see :meth:`bump_epoch`)."""
        return self._epoch

    def bump_epoch(self) -> None:
        """Invalidate cached models derived from this snapshot.

        Called automatically on structural changes and by the
        controller when module placement *commits* (deploy, kill,
        migrate).  Consumers (the controller's compiled-network cache)
        compare epochs to decide whether a cached model is still valid.
        """
        self._epoch += 1

    def topology_signature(self) -> int:
        """Hash of everything :meth:`compute_routes` depends on.

        Links plus per-node address ownership -- deliberately *not*
        platform-internal module state: deploying a module onto a
        platform never changes inter-node routing (the platform owns
        its whole pool prefix), which is exactly the route-recompute
        elision the admission fast path relies on.

        Deliberately *not* memoized on the epoch: callers rely on the
        signature noticing out-of-band surgery on ``links``/``nodes``
        that never called :meth:`bump_epoch`.
        """
        link_part = tuple(sorted(
            (l.a, l.a_port, l.b, l.b_port) for l in self.links
        ))
        owner_part = []
        for name in sorted(self.nodes):
            node = self.nodes[name]
            if isinstance(node, Internet):
                owner_part.append((name, "default"))
            elif isinstance(node, Host):
                owner_part.append((name, node.address, 32))
            elif isinstance(node, ClientSubnet):
                owner_part.append((name, node.network, node.plen))
            elif isinstance(node, Platform):
                owner_part.append(
                    (name, node.pool_network, node.pool_plen)
                )
        return hash((link_part, tuple(owner_part)))

    def model_signature(self) -> int:
        """Hash of everything a compiled symbolic model depends on.

        Topology signature + committed module placement + the explicit
        epoch, so cached :class:`~repro.netmodel.symgraph.CompiledNetwork`
        instances are invalidated both by real state changes and by
        explicit :meth:`bump_epoch` calls.
        """
        placement = []
        for platform in self.platforms():
            placement.append((
                platform.name,
                tuple(sorted(
                    (name, address, id(config))
                    for name, (address, config)
                    in platform.modules.items()
                )),
            ))
        return hash((
            self._epoch,
            self.topology_signature(),
            tuple(placement),
        ))

    # -- node constructors ---------------------------------------------------
    def _add(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ConfigError("node %r added twice" % (node.name,))
        self.nodes[node.name] = node
        self.bump_epoch()
        return node

    def add_router(self, name: str) -> Router:
        """Add an LPM router."""
        return self._add(Router(name))

    def add_host(self, name: str, address: str) -> Host:
        """Add a single-address endpoint."""
        addr, plen = parse_prefix(address)
        if plen != 32:
            raise ConfigError("host address must be /32: %r" % (address,))
        return self._add(Host(name, addr))

    def add_client_subnet(self, name: str, prefix: str) -> ClientSubnet:
        """Add the operator's client subnet."""
        network, plen = parse_prefix(prefix)
        return self._add(ClientSubnet(name, network, plen))

    def add_internet(self, name: str = "internet") -> Internet:
        """Add the internet node (default-route destination)."""
        return self._add(Internet(name))

    def add_middlebox(
        self, name: str, element_class: str, *element_args: str
    ) -> Middlebox:
        """Add an operator middlebox backed by a Click element class."""
        return self._add(Middlebox(name, element_class, element_args))

    def add_platform(
        self,
        name: str,
        pool_prefix: str,
        capacity: Optional[int] = None,
    ) -> Platform:
        """Add a processing platform owning ``pool_prefix`` addresses."""
        network, plen = parse_prefix(pool_prefix)
        return self._add(Platform(name, network, plen, capacity))

    # -- links ----------------------------------------------------------------
    def link(
        self,
        a: str,
        b: str,
        a_port: Optional[int] = None,
        b_port: Optional[int] = None,
        latency_s: float = 0.0,
    ) -> Link:
        """Connect two nodes with a bidirectional link.

        Ports are auto-assigned unless given (two-interface middleboxes
        care: port 0 is the protected side of a StatefulFirewall).
        ``latency_s`` is the one-way propagation delay.
        """
        node_a, node_b = self.node(a), self.node(b)
        if a_port is None:
            a_port = node_a.allocate_port()
        if b_port is None:
            b_port = node_b.allocate_port()
        for node, port in ((node_a, a_port), (node_b, b_port)):
            if port in node.ports:
                raise ConfigError(
                    "port %d of %r already linked" % (port, node.name)
                )
        node_a.ports[a_port] = (b, b_port)
        node_b.ports[b_port] = (a, a_port)
        wire = Link(a, a_port, b, b_port, latency_s=latency_s)
        self.links.append(wire)
        self.bump_epoch()
        return wire

    def link_latency(self, a: str, b: str) -> float:
        """One-way latency of the (first) link between two nodes."""
        for wire in self.links:
            if {wire.a, wire.b} == {a, b}:
                return wire.latency_s
        raise ConfigError("no link between %r and %r" % (a, b))

    def unlink(self, a: str, b: str) -> None:
        """Remove the link between two nodes (failure / maintenance).

        Routes are recomputed; callers should re-verify the snapshot
        (``Controller.verify_snapshot``) afterwards.
        """
        node_a, node_b = self.node(a), self.node(b)
        matching = [
            l for l in self.links
            if {l.a, l.b} == {a, b}
        ]
        if not matching:
            raise ConfigError("no link between %r and %r" % (a, b))
        for link in matching:
            self.links.remove(link)
            for node, port in (
                (self.node(link.a), link.a_port),
                (self.node(link.b), link.b_port),
            ):
                node.ports.pop(port, None)
        self.bump_epoch()
        self.compute_routes()

    # -- queries ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise ConfigError("unknown node %r" % (name,))

    def routers(self) -> List[Router]:
        return [n for n in self.nodes.values() if isinstance(n, Router)]

    def platforms(self) -> List[Platform]:
        return [n for n in self.nodes.values() if isinstance(n, Platform)]

    def client_subnets(self) -> List[ClientSubnet]:
        return [
            n for n in self.nodes.values() if isinstance(n, ClientSubnet)
        ]

    def internet_nodes(self) -> List[Internet]:
        return [n for n in self.nodes.values() if isinstance(n, Internet)]

    def neighbors(self, name: str) -> List[Tuple[int, str, int]]:
        """(local port, peer name, peer port) for every link of a node."""
        node = self.node(name)
        return [
            (port, peer, peer_port)
            for port, (peer, peer_port) in sorted(node.ports.items())
        ]

    # -- routing -----------------------------------------------------------------
    def compute_routes(self, force: bool = False) -> None:
        """Fill every router's table with shortest-path routes.

        For each addressed node a BFS over the link graph yields each
        router's next hop; the route's prefix is the node's owned
        address range (internet nodes get the 0.0.0.0/0 default).

        Recomputation is **elided** when nothing routing depends on has
        changed since the last run: routes are a function of links and
        address ownership only, so trial module placements (which only
        touch platform-internal state) re-use the existing tables.  The
        staleness check hashes links + ownership directly, so even
        out-of-band mutations of ``links``/``ports`` are caught.  Pass
        ``force=True`` to recompute unconditionally (e.g. after editing
        a router table by hand).
        """
        signature = self.topology_signature()
        if not force and signature == self._routes_signature:
            return
        self._routes_signature = signature
        for router in self.routers():
            router.table = RoutingTable()
        destinations: List[Tuple[Node, Tuple[int, int]]] = []
        for node in self.nodes.values():
            if isinstance(node, Internet):
                destinations.append((node, (0, 0)))
            elif isinstance(node, Host):
                destinations.append((node, (node.address, 32)))
            elif isinstance(node, ClientSubnet):
                destinations.append((node, (node.network, node.plen)))
            elif isinstance(node, Platform):
                destinations.append(
                    (node, (node.pool_network, node.pool_plen))
                )
        for destination, (network, plen) in destinations:
            parents = self._bfs_parents(destination.name)
            for router in self.routers():
                hop = parents.get(router.name)
                if hop is None:
                    continue  # destination unreachable from this router
                out_port, _peer = hop
                router.table.add(network, plen, out_port)

    def _bfs_parents(
        self, root: str
    ) -> Dict[str, Tuple[int, str]]:
        """BFS from ``root``; for each node, the (port, peer) leading
        one hop closer to the root."""
        parents: Dict[str, Tuple[int, str]] = {}
        visited = {root}
        frontier = [root]
        while frontier:
            next_frontier: List[str] = []
            for name in frontier:
                for port, peer, peer_port in self.neighbors(name):
                    if peer in visited:
                        continue
                    visited.add(peer)
                    parents[peer] = (peer_port, name)
                    next_frontier.append(peer)
            frontier = next_frontier
        return parents

    def __repr__(self) -> str:
        return "Network(%r, %d nodes, %d links)" % (
            self.name, len(self.nodes), len(self.links),
        )
