"""Client requests (Section 4.1).

A request has two parts: the configuration to instantiate (a Click
configuration built from known elements, or a pre-defined stock module)
and the requirements to be satisfied (``reach`` statements).  The
requester's trust role determines which security rules apply
(Section 2.1):

* ``ROLE_THIRD_PARTY`` -- untrusted customers of the in-network cloud:
  anti-spoofing plus default-off (traffic only to authorized
  destinations),
* ``ROLE_CLIENT`` -- the operator's own residential/mobile customers:
  anti-spoofing only (they may reach any destination, like their normal
  Internet service, so they can deploy explicit proxies),
* ``ROLE_OPERATOR`` -- the operator's own modules: trusted; static
  analysis is only about correctness.

Every role is subject to the "only process traffic destined to you"
rule -- passthrough middleboxes (routers, DPI...) are rejected for
tenants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.click.config import ClickConfig, parse_config
from repro.common.errors import ConfigError
from repro.policy.grammar import ReachRequirement, parse_requirements

ROLE_THIRD_PARTY = "third-party"
ROLE_CLIENT = "client"
ROLE_OPERATOR = "operator"

ROLES = (ROLE_THIRD_PARTY, ROLE_CLIENT, ROLE_OPERATOR)


@dataclass
class ClientRequest:
    """One processing-module deployment request.

    Exactly one of ``config_source`` (Click text) or ``stock``
    (a stock-module name plus its parameters) must be provided.
    """

    client_id: str
    config_source: Optional[str] = None
    stock: Optional[str] = None
    stock_params: Tuple[str, ...] = ()
    #: ``reach`` statements (newline separated or a list).
    requirements: str = ""
    role: str = ROLE_THIRD_PARTY
    #: Addresses the requester owns/registered (dotted quads) --
    #: explicit authorization targets (Section 2.1).
    owned_addresses: Tuple[str, ...] = ()
    module_name: Optional[str] = None
    #: Which traffic class the module listens on: ``"udp 1500"``,
    #: ``"tcp 80"``, or just ``"udp"``.  The controller installs the
    #: steering rule for exactly this address/protocol/port combination
    #: (Section 4.3); None steers everything addressed to the module.
    listen: Optional[str] = None
    #: Per-flow state declared by the client (affects consolidation).
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        if (self.config_source is None) == (self.stock is None):
            raise ConfigError(
                "request needs exactly one of config_source or stock"
            )
        if self.role not in ROLES:
            raise ConfigError("unknown role %r" % (self.role,))

    def parse_click_config(self) -> ClickConfig:
        """The Click configuration to instantiate."""
        if self.config_source is not None:
            return parse_config(self.config_source)
        from repro.core.catalog import stock_module_config

        return stock_module_config(self.stock, *self.stock_params)

    def parse_reach_requirements(self) -> List[ReachRequirement]:
        """The client's reach statements."""
        if not self.requirements:
            return []
        return parse_requirements(self.requirements)

    def parse_listen(self) -> Tuple[Optional[int], Optional[int]]:
        """The (protocol number, destination port) the module listens
        on, either possibly None."""
        if not self.listen:
            return None, None
        from repro.common.fields import PROTO_NUMBERS

        proto: Optional[int] = None
        port: Optional[int] = None
        for token in self.listen.split():
            lowered = token.lower()
            if lowered in PROTO_NUMBERS:
                proto = PROTO_NUMBERS[lowered]
            elif token.isdigit():
                value = int(token)
                if not 0 <= value <= 65535:
                    raise ConfigError(
                        "listen port out of range: %r" % (token,)
                    )
                port = value
            else:
                raise ConfigError(
                    "cannot parse listen spec %r" % (self.listen,)
                )
        return proto, port

    @property
    def is_stock(self) -> bool:
        return self.stock is not None
