"""Parallelizing the controller (Section 4.3, "Scaling the controller").

The paper: "we conjecture it is fairly easy to parallelize the
controller by simply having multiple machines answer the queries.  Care
must be taken, however, to ensure requests of the same user reach the
same controller (to ensure ordering of operations), or to deal with
problems that may arise when different controllers simultaneously
decide to take conflicting actions: e.g. install new processing modules
onto the same platform that does not have enough capacity."

:class:`ControllerPool` implements exactly that design:

* requests are sharded to workers by a stable hash of the client id
  (per-user ordering),
* each round, every worker *verifies* one request against the snapshot
  as of round start (``dry_run``) -- this is the parallel part, and the
  pool's modeled wall-clock charges only the slowest worker per round,
* commits then serialize; a commit discovers a conflict when another
  worker's commit this round consumed the target platform's last
  capacity slot, and the losing request is re-verified next round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.controller import Controller, DeploymentResult
from repro.core.requests import ClientRequest
from repro.netmodel.topology import Network


@dataclass
class PoolStats:
    """Observability for one pool run."""

    rounds: int = 0
    verifications: int = 0
    conflicts: int = 0
    #: Modeled parallel wall-clock: sum over rounds of the slowest
    #: worker's verification time in that round.
    parallel_seconds: float = 0.0
    #: What one controller would have spent doing everything itself.
    serial_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        """Serial / parallel verification time."""
        if self.parallel_seconds <= 0:
            return 1.0
        return self.serial_seconds / self.parallel_seconds


@dataclass
class _Pending:
    ticket: int
    request: ClientRequest
    worker: int
    attempts: int = 0


class ControllerPool:
    """Several controller workers answering queries over one network."""

    def __init__(
        self,
        network: Network,
        n_workers: int = 4,
        operator_requirements: str = "",
        max_attempts: int = 5,
        fast_path: bool = False,
        obs=None,
    ):
        from repro.fedctl.shardmap import ShardMap
        from repro.obs import NULL_OBSERVABILITY

        if n_workers < 1:
            raise ValueError("need at least one worker")
        # The pool's wall-clock model assumes each worker is an
        # independent machine doing its own full verification; the
        # single-controller admission fast path would share one warm
        # cache across "machines" and skew the modeled speedup, so
        # from-scratch verification is the default here.  Pass
        # ``fast_path=True`` to measure a shared-cache deployment.
        self.controller = Controller(
            network, operator_requirements, fast_path=fast_path,
            obs=obs,
        )
        self.n_workers = n_workers
        self.max_attempts = max_attempts
        self.stats = PoolStats()
        # Client -> worker routing rides the same consistent-hash map
        # the federated control plane shards tenants with (the paper's
        # "requests of the same user reach the same controller").
        self._shard_map = ShardMap(
            ["worker-%d" % i for i in range(n_workers)], vnodes=32,
        )
        self._queues: List[List[_Pending]] = [
            [] for _ in range(n_workers)
        ]
        self._tickets = 0
        self.results: Dict[int, DeploymentResult] = {}
        self._obs = obs if obs is not None else NULL_OBSERVABILITY
        metrics = self._obs.metrics
        self._c_rounds = metrics.counter(
            "pool_rounds_total", "Verify/commit rounds run",
        )
        self._c_verifications = metrics.counter(
            "pool_verifications_total",
            "Parallel dry-run verifications performed",
        )
        self._c_conflicts = metrics.counter(
            "pool_conflicts_total",
            "Commit-time capacity conflicts detected",
        )
        self._c_requests = metrics.counter(
            "pool_requests_total",
            "Pool decisions by outcome", labels=("outcome",),
        )
        if self._obs.enabled:
            metrics.register_collector(
                self._collect_gauges, key=("pool", id(self)),
            )

    def _collect_gauges(self) -> None:
        """PoolStats as gauges, sampled at export time."""
        metrics = self._obs.metrics
        gauges = (
            ("pool_parallel_seconds",
             "Modeled parallel wall-clock (slowest worker per round)",
             self.stats.parallel_seconds),
            ("pool_serial_seconds",
             "What one controller would have spent",
             self.stats.serial_seconds),
            ("pool_speedup", "Serial / parallel verification time",
             self.stats.speedup),
            ("pool_pending", "Requests not yet decided",
             float(self.pending())),
            ("pool_workers", "Workers in the pool",
             float(self.n_workers)),
        )
        for name, help_text, value in gauges:
            metrics.gauge(name, help_text).set(value)

    # -- submission ---------------------------------------------------------
    def worker_for(self, client_id: str) -> int:
        """Stable client -> worker assignment (per-user ordering)."""
        shard = self._shard_map.route(client_id)
        return int(shard.rsplit("-", 1)[1])

    def submit(self, request: ClientRequest) -> int:
        """Queue a request; returns a ticket to look the result up."""
        self._tickets += 1
        ticket = self._tickets
        worker = self.worker_for(request.client_id)
        self._queues[worker].append(
            _Pending(ticket=ticket, request=request, worker=worker)
        )
        return ticket

    def pending(self) -> int:
        """Requests not yet decided."""
        return sum(len(q) for q in self._queues)

    # -- processing -----------------------------------------------------------
    def process_all(self) -> Dict[int, DeploymentResult]:
        """Run rounds until every queued request has a result."""
        while self.pending():
            self._round()
        return dict(self.results)

    def _round(self) -> None:
        self.stats.rounds += 1
        self._c_rounds.inc()
        # Phase 1 (parallel): each worker verifies its head-of-queue
        # request against the snapshot as of round start.
        batch: List[Tuple[_Pending, DeploymentResult]] = []
        free_at_start = {
            p.name: (
                None if p.capacity is None
                else p.capacity - len(p.modules)
            )
            for p in self.controller.network.platforms()
        }
        round_worker_seconds: List[float] = []
        for queue in self._queues:
            if not queue:
                continue
            pending = queue.pop(0)
            verdict = self.controller.request(
                pending.request, dry_run=True
            )
            self.stats.verifications += 1
            self._c_verifications.inc()
            seconds = verdict.compile_seconds + verdict.check_seconds
            round_worker_seconds.append(seconds)
            self.stats.serial_seconds += seconds
            batch.append((pending, verdict))
        if round_worker_seconds:
            self.stats.parallel_seconds += max(round_worker_seconds)
        # Phase 2 (serialized): commit in worker order, detecting
        # capacity conflicts against the round-start snapshot.
        committed_on: Dict[str, int] = {}
        for pending, verdict in batch:
            if not verdict.accepted:
                self.results[pending.ticket] = verdict
                self._c_requests.labels("rejected").inc()
                continue
            platform = verdict.platform
            free = free_at_start.get(platform)
            used = committed_on.get(platform, 0)
            if free is not None and used >= free:
                # Another worker's simultaneous decision filled the
                # platform: conflict; retry with a fresh snapshot.
                self.stats.conflicts += 1
                self._c_conflicts.inc()
                pending.attempts += 1
                if pending.attempts >= self.max_attempts:
                    self.results[pending.ticket] = DeploymentResult(
                        accepted=False,
                        reason="gave up after %d capacity conflicts"
                               % pending.attempts,
                    )
                    self._c_requests.labels("gave-up").inc()
                else:
                    self._queues[pending.worker].append(pending)
                continue
            final = self.controller.request(
                pending.request, pinned_platform=platform
            )
            if final.accepted:
                committed_on[platform] = used + 1
            self.results[pending.ticket] = final
            self._c_requests.labels(
                "accepted" if final.accepted else "rejected"
            ).inc()

    # -- queries ------------------------------------------------------------------
    def result(self, ticket: int) -> Optional[DeploymentResult]:
        """The decision for a ticket, if made."""
        return self.results.get(ticket)
