"""Deploying across multiple operators (Sections 7 and 8).

The DoS and CDN use cases instantiate processing "at remote operators":
the content provider holds credentials with several access networks and
asks each one's controller for a module, picking operators by where
their platforms sit ("destinations can instantiate filtering code on
remote platforms, and attract traffic to those platforms by updating
DNS entries").

:class:`Federation` is the client-side library for that: a directory of
operators with their geographic regions, nearest-first deployment with
fallback, and bookkeeping of what runs where.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import DeploymentError
from repro.core.controller import Controller, DeploymentResult
from repro.core.requests import ClientRequest


@dataclass
class OperatorInfo:
    """One operator the client holds credentials with."""

    name: str
    controller: Controller
    #: Representative location of the operator's platforms (lat, lon).
    region: Tuple[float, float]


@dataclass
class FederatedDeployment:
    """Where a module ended up."""

    operator: str
    result: DeploymentResult

    def __bool__(self) -> bool:
        return bool(self.result)


def _distance(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    lat1, lon1 = map(math.radians, a)
    lat2, lon2 = map(math.radians, b)
    x = (lon2 - lon1) * math.cos((lat1 + lat2) / 2)
    y = lat2 - lat1
    return math.hypot(x, y)


class Federation:
    """A client's view over several In-Net operators."""

    def __init__(self):
        self.operators: Dict[str, OperatorInfo] = {}
        #: module id -> operator name.
        self.placements: Dict[str, str] = {}

    def add_operator(
        self,
        name: str,
        controller: Controller,
        region: Tuple[float, float],
    ) -> OperatorInfo:
        """Register an operator the client may deploy with."""
        if name in self.operators:
            raise DeploymentError("operator %r registered twice" % name)
        info = OperatorInfo(name=name, controller=controller,
                            region=region)
        self.operators[name] = info
        return info

    def operators_by_distance(
        self, location: Tuple[float, float]
    ) -> List[OperatorInfo]:
        """Operators sorted nearest-first to a location."""
        return sorted(
            self.operators.values(),
            key=lambda info: _distance(info.region, location),
        )

    def deploy_near(
        self,
        request: ClientRequest,
        location: Tuple[float, float],
    ) -> FederatedDeployment:
        """Deploy with the nearest operator that accepts the request.

        Falls back outward by distance; the first denial reason is
        reported if every operator refuses.
        """
        if not self.operators:
            raise DeploymentError("no operators registered")
        first_denial: Optional[DeploymentResult] = None
        for info in self.operators_by_distance(location):
            try:
                result = info.controller.request(request)
            except Exception as exc:
                # A dead or faulting operator is just "farther away":
                # record the denial and keep walking outward.
                result = DeploymentResult(
                    accepted=False,
                    reason="operator %s unavailable: %s"
                           % (info.name, exc),
                )
            if result.accepted:
                # Track by the controller-assigned id: requests with
                # no explicit module_name used to leak -- deployed but
                # absent from placements, so the federation could
                # never kill or bill-attribute them.
                self.placements[result.module_id] = info.name
                return FederatedDeployment(
                    operator=info.name, result=result
                )
            if first_denial is None:
                first_denial = result
        if first_denial is None:
            first_denial = DeploymentResult(
                accepted=False, reason="no operators accepted",
            )
        return FederatedDeployment(operator="", result=first_denial)

    def kill(self, module_id: str) -> bool:
        """Tear a federated module down wherever it runs.

        Returns False for unknown modules and for placements whose
        operator has since been deregistered; a double kill is a
        no-op (the first call already dropped the placement).
        """
        operator_name = self.placements.pop(module_id, None)
        if operator_name is None:
            return False
        info = self.operators.get(operator_name)
        if info is None:
            return False
        return info.controller.kill(module_id)

    def prune_placements(self) -> List[str]:
        """Drop placements whose module is gone at the operator.

        A module killed directly at its controller (an operator-side
        evacuation, or the tenant talking to the operator out of
        band) leaves a stale placement behind; pruning reconciles the
        federation's view.  Returns the module ids dropped.
        """
        stale = [
            module_id
            for module_id, operator_name in self.placements.items()
            if operator_name not in self.operators
            or module_id not in
            self.operators[operator_name].controller.deployed
        ]
        for module_id in stale:
            del self.placements[module_id]
        return stale

    def deployments(self) -> Dict[str, str]:
        """module id -> operator name, for everything still running."""
        return dict(self.placements)

    def total_invoice(self, client_id: str, now: float) -> float:
        """The client's combined bill across every operator."""
        return sum(
            info.controller.ledger.invoice(client_id, now).total
            for info in self.operators.values()
        )
