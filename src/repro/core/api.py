"""Wire format for the controller API.

Clients install In-Net software locally and submit requests to the
controller over the network (Section 4.3, "Client configuration").
This module is the codec: requests and deployment results serialize to
plain JSON-compatible dictionaries, so any transport (REST, message
queue, a file) can carry them.

The format is versioned; unknown versions are refused rather than
guessed at.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.common.errors import PolicyError
from repro.core.controller import DeploymentResult
from repro.core.requests import ClientRequest

WIRE_VERSION = 1


def request_to_dict(request: ClientRequest) -> Dict[str, Any]:
    """Serialize a request for transport."""
    return {
        "version": WIRE_VERSION,
        "client_id": request.client_id,
        "config_source": request.config_source,
        "stock": request.stock,
        "stock_params": list(request.stock_params),
        "requirements": request.requirements,
        "role": request.role,
        "owned_addresses": list(request.owned_addresses),
        "module_name": request.module_name,
        "listen": request.listen,
    }


def request_from_dict(payload: Dict[str, Any]) -> ClientRequest:
    """Deserialize a request, validating the wire version."""
    if not isinstance(payload, dict):
        raise PolicyError("request payload must be an object")
    version = payload.get("version")
    if version != WIRE_VERSION:
        raise PolicyError(
            "unsupported wire version %r (expected %d)"
            % (version, WIRE_VERSION)
        )
    try:
        return ClientRequest(
            client_id=str(payload["client_id"]),
            config_source=payload.get("config_source"),
            stock=payload.get("stock"),
            stock_params=tuple(payload.get("stock_params") or ()),
            requirements=payload.get("requirements") or "",
            role=payload.get("role", "third-party"),
            owned_addresses=tuple(
                payload.get("owned_addresses") or ()
            ),
            module_name=payload.get("module_name"),
            listen=payload.get("listen"),
        )
    except KeyError as exc:
        raise PolicyError("request payload missing field %s" % exc)


def result_to_dict(result: DeploymentResult) -> Dict[str, Any]:
    """Serialize what the client is told about its request."""
    payload: Dict[str, Any] = {
        "version": WIRE_VERSION,
        "accepted": result.accepted,
        "reason": result.reason,
    }
    if result.accepted:
        payload.update({
            "module_id": result.module_id,
            "platform": result.platform,
            "address": result.address,
            "sandboxed": result.sandboxed,
        })
    return payload


def request_to_json(request: ClientRequest) -> str:
    """Serialize a request to a JSON string."""
    return json.dumps(request_to_dict(request), sort_keys=True)


def request_from_json(text: str) -> ClientRequest:
    """Parse a request from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PolicyError("malformed request JSON: %s" % exc)
    return request_from_dict(payload)


def result_to_json(result: DeploymentResult) -> str:
    """Serialize a deployment result to JSON."""
    return json.dumps(result_to_dict(result), sort_keys=True)
