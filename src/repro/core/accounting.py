"""Tenant accounting (Section 2.1).

"Accountability ensures that users are charged for the resources they
use, discouraging resource exhaustion attacks against platforms."
The ledger meters, per tenant:

* module-hours (a module's wall-clock residency),
* traffic (packets and bytes through the tenant's modules),
* verification work (requests processed, including denied ones --
  symbolic execution is operator CPU too),
* the sandboxing surcharge: enforcer-wrapped modules are billed at a
  multiplier, because the ChangeEnforcer is injected into *the
  client's* configuration (Section 4.4: "this has the benefit of
  billing the user for the sandboxing").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Tariff:
    """Operator price list (arbitrary currency units)."""

    per_module_hour: float = 1.0
    per_gigabyte: float = 0.05
    per_verification: float = 0.01
    #: Module-hour multiplier for sandboxed modules.
    sandbox_multiplier: float = 1.5


@dataclass
class ModuleUsage:
    """Lifetime usage of one deployed module."""

    module_id: str
    client_id: str
    sandboxed: bool
    deployed_at: float
    stopped_at: Optional[float] = None
    packets: int = 0
    bytes: int = 0

    def hours(self, now: float) -> float:
        """Module-hours accrued up to ``now``."""
        end = self.stopped_at if self.stopped_at is not None else now
        return max(0.0, (end - self.deployed_at) / 3600.0)


@dataclass
class Invoice:
    """One client's bill."""

    client_id: str
    module_hours: float = 0.0
    sandboxed_module_hours: float = 0.0
    gigabytes: float = 0.0
    verifications: int = 0
    total: float = 0.0
    lines: List[Tuple[str, float]] = field(default_factory=list)


class Ledger:
    """Meters resource usage and renders invoices."""

    def __init__(self, tariff: Tariff = Tariff()):
        self.tariff = tariff
        self.modules: Dict[str, ModuleUsage] = {}
        self.verifications: Dict[str, int] = {}

    # -- recording -----------------------------------------------------------
    def record_verification(self, client_id: str) -> None:
        """One request verified (accepted or denied)."""
        self.verifications[client_id] = (
            self.verifications.get(client_id, 0) + 1
        )

    def record_deployment(
        self,
        module_id: str,
        client_id: str,
        sandboxed: bool,
        now: float,
    ) -> None:
        """A module started running."""
        self.modules[module_id] = ModuleUsage(
            module_id=module_id,
            client_id=client_id,
            sandboxed=sandboxed,
            deployed_at=now,
        )

    def record_stop(self, module_id: str, now: float) -> None:
        """A module was killed."""
        usage = self.modules.get(module_id)
        if usage is not None and usage.stopped_at is None:
            usage.stopped_at = now

    def record_traffic(
        self, module_id: str, packets: int, byte_count: int
    ) -> None:
        """Traffic processed by a module."""
        usage = self.modules.get(module_id)
        if usage is None:
            return
        usage.packets += packets
        usage.bytes += byte_count

    # -- billing ---------------------------------------------------------------
    def invoice(self, client_id: str, now: float) -> Invoice:
        """The client's bill as of ``now``."""
        bill = Invoice(client_id=client_id)
        tariff = self.tariff
        for usage in self.modules.values():
            if usage.client_id != client_id:
                continue
            hours = usage.hours(now)
            if usage.sandboxed:
                bill.sandboxed_module_hours += hours
                cost = (
                    hours * tariff.per_module_hour
                    * tariff.sandbox_multiplier
                )
                bill.lines.append(
                    ("%s (sandboxed, %.2f h)" % (usage.module_id, hours),
                     cost)
                )
            else:
                bill.module_hours += hours
                cost = hours * tariff.per_module_hour
                bill.lines.append(
                    ("%s (%.2f h)" % (usage.module_id, hours), cost)
                )
            gigabytes = usage.bytes / 1e9
            bill.gigabytes += gigabytes
            if gigabytes:
                bill.lines.append(
                    ("%s traffic (%.3f GB)"
                     % (usage.module_id, gigabytes),
                     gigabytes * tariff.per_gigabyte)
                )
        bill.verifications = self.verifications.get(client_id, 0)
        if bill.verifications:
            bill.lines.append(
                ("verifications (%d)" % bill.verifications,
                 bill.verifications * tariff.per_verification)
            )
        bill.total = sum(cost for _label, cost in bill.lines)
        return bill

    def clients(self) -> List[str]:
        """Every client with recorded activity."""
        names = {u.client_id for u in self.modules.values()}
        names.update(self.verifications)
        return sorted(names)

    def open_module_ids(self) -> List[str]:
        """Modules still accruing module-hours (deployed, not stopped).

        The resilience invariant checker compares this against the
        controller's ``deployed`` map: a killed-but-still-billing or a
        running-but-unbilled module is an accounting leak.
        """
        return sorted(
            module_id
            for module_id, usage in self.modules.items()
            if usage.stopped_at is None
        )
