"""The In-Net security rules, checked by symbolic execution (Section 4.4).

For all tenants the controller verifies anti-spoofing: it injects an
unconstrained symbolic packet into the processing module and checks
that, at every module egress, the source address is either the address
assigned to the module or invariant along the path from ingress
(variable identity).

For untrusted third parties it additionally enforces default-off: the
destination of module-originated traffic must be (a) in the requester's
per-client white-list (explicit authorization) or (b) equal to the
source address of the incoming traffic (implicit authorization, proven
by SYMNET through binding: ``IPdst`` aliases the variable ``IPsrc`` was
bound to at ingress).

Tenants of every role may only process traffic destined to them:
passthrough middleboxes (the egress destination is the *unmodified*
ingress destination) are definite violations for tenants.

Verdicts:

* ``allow``  -- every egress flow provably conforms,
* ``sandbox`` -- the module can generate both allowed and disallowed
  traffic (compliance not checkable at install time, e.g. tunnels whose
  inner destination appears only at decap time, or x86 VMs),
* ``reject`` -- some egress traffic definitely violates the rules.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set

from repro.common import fields as F
from repro.common.errors import VerificationError
from repro.common.intervals import IntervalSet
from repro.core.requests import (
    ROLE_CLIENT,
    ROLE_OPERATOR,
    ROLE_THIRD_PARTY,
)
from repro.symexec.engine import SymbolicEngine, SymFlow, SymGraph
from repro.symexec.models import has_model
from repro.symexec.reachability import domain_at

VERDICT_ALLOW = "allow"
VERDICT_SANDBOX = "sandbox"
VERDICT_REJECT = "reject"

_ONE = IntervalSet.single(1)


@dataclass
class Finding:
    """One per-flow rule evaluation."""

    rule: str          # "spoofing" | "default-off" | "passthrough"
    severity: str      # "violation" | "ambiguous"
    detail: str

    def __str__(self) -> str:
        return "[%s/%s] %s" % (self.rule, self.severity, self.detail)


@dataclass
class SecurityReport:
    """Result of analysing one module configuration."""

    verdict: str
    role: str
    findings: List[Finding] = field(default_factory=list)
    egress_flows: int = 0
    analysis_seconds: float = 0.0

    @property
    def needs_sandbox(self) -> bool:
        return self.verdict == VERDICT_SANDBOX

    @property
    def rejected(self) -> bool:
        return self.verdict == VERDICT_REJECT

    def __str__(self) -> str:
        lines = ["verdict=%s (%d egress flows)"
                 % (self.verdict, self.egress_flows)]
        lines.extend("  " + str(f) for f in self.findings)
        return "\n".join(lines)


def _flag_is_set(flow: SymFlow, snapshot, flag: str) -> bool:
    domain = domain_at(flow, snapshot, flag)
    return domain is not None and domain.is_subset(_ONE)


class SecurityAnalyzer:
    """Checks a module configuration against the security rules."""

    def __init__(self, max_steps: int = 200_000):
        self.max_steps = max_steps

    def analyze(
        self,
        config,
        role: str,
        module_address: Optional[int] = None,
        whitelist: FrozenSet[int] = frozenset(),
    ) -> SecurityReport:
        """Run the security analysis on one Click configuration.

        ``whitelist`` holds the requester's explicitly-authorized
        destination addresses (their registered addresses plus their
        other modules' addresses, Section 2.1).
        """
        started = time.perf_counter()
        if role == ROLE_OPERATOR:
            # Operator modules are trusted: the analysis only informs
            # correctness (reach checks), never blocks deployment.
            return SecurityReport(
                verdict=VERDICT_ALLOW,
                role=role,
                analysis_seconds=time.perf_counter() - started,
            )
        self._require_known_models(config)
        graph = SymGraph.from_click(config)
        engine = SymbolicEngine(graph, max_steps=self.max_steps)
        findings: List[Finding] = []
        egress = 0
        whitelist_set = IntervalSet.from_values(whitelist)
        definite = False
        ambiguous = False
        for source in config.sources():
            flow = SymFlow(engine.fresh_packet())
            ingress_src_uid = flow.packet.var(F.IP_SRC).uid
            ingress_dst_uid = flow.packet.var(F.IP_DST).uid
            exploration = engine.inject(source, 0, flow)
            for out in exploration.delivered:
                egress += 1
                snapshot = out.trace[-1].snapshot
                verdicts = self._check_flow(
                    out,
                    snapshot,
                    role,
                    ingress_src_uid,
                    ingress_dst_uid,
                    module_address,
                    whitelist_set,
                )
                findings.extend(verdicts)
                definite = definite or any(
                    v.severity == "violation" for v in verdicts
                )
                ambiguous = ambiguous or any(
                    v.severity == "ambiguous" for v in verdicts
                )
        if definite:
            verdict = VERDICT_REJECT
        elif ambiguous:
            verdict = VERDICT_SANDBOX
        else:
            verdict = VERDICT_ALLOW
        return SecurityReport(
            verdict=verdict,
            role=role,
            findings=findings,
            egress_flows=egress,
            analysis_seconds=time.perf_counter() - started,
        )

    # -- internals ----------------------------------------------------------
    def _require_known_models(self, config) -> None:
        for name, decl in config.elements.items():
            if not has_model(decl.class_name):
                raise VerificationError(
                    "element %r (%s) has no symbolic model; the request "
                    "cannot be statically checked" % (name, decl.class_name)
                )

    def _check_flow(
        self,
        flow: SymFlow,
        snapshot,
        role: str,
        ingress_src_uid: int,
        ingress_dst_uid: int,
        module_address: Optional[int],
        whitelist: IntervalSet,
    ) -> List[Finding]:
        findings: List[Finding] = []
        sandboxed = _flag_is_set(flow, snapshot, "sandboxed")
        auth_ok = _flag_is_set(flow, snapshot, "auth_ok")
        decapped = _flag_is_set(flow, snapshot, "decapped")
        # -- anti-spoofing (all tenant roles) ----------------------------
        # Allowed egress sources: preserved from ingress, the module's
        # assigned address (which at run time is the ingress destination
        # -- responder-style modules source replies from the address
        # they were contacted on), or decapsulated traffic, which is
        # attributed to the tunnel sender (ingress filtering at the
        # tunnel entry enforces anti-spoofing there).
        src_uid = snapshot.get(F.IP_SRC)
        src_ok = (
            src_uid == ingress_src_uid
            or src_uid == ingress_dst_uid
            or decapped
        )
        if not src_ok and module_address is not None:
            src_domain = domain_at(flow, snapshot, F.IP_SRC)
            src_ok = src_domain is not None and src_domain.is_subset(
                IntervalSet.single(module_address)
            )
        if not src_ok and sandboxed:
            src_ok = True
        if not src_ok:
            src_domain = domain_at(flow, snapshot, F.IP_SRC)
            if src_domain is not None and (
                src_domain.size() > 1
            ):
                findings.append(Finding(
                    "spoofing", "ambiguous",
                    "egress source rewritten to an unconstrained value; "
                    "spoofing cannot be excluded statically",
                ))
            else:
                findings.append(Finding(
                    "spoofing", "violation",
                    "egress source address is neither the module's "
                    "assigned address nor preserved from ingress",
                ))
        # -- only process traffic destined to you (all tenant roles) -----
        dst_uid = snapshot.get(F.IP_DST)
        passthrough = dst_uid == ingress_dst_uid
        implicit_auth = dst_uid == ingress_src_uid
        dst_domain = domain_at(flow, snapshot, F.IP_DST)
        whitelisted = (
            dst_domain is not None
            and not whitelist.is_empty()
            and dst_domain.is_subset(whitelist)
        )
        if passthrough and not (sandboxed or auth_ok):
            findings.append(Finding(
                "passthrough", "violation",
                "egress destination is the unmodified ingress "
                "destination: the module forwards traffic that was "
                "never destined to it",
            ))
        # -- default-off (third parties only) ------------------------------
        if role == ROLE_THIRD_PARTY and not passthrough:
            if not (implicit_auth or whitelisted or auth_ok or sandboxed):
                if dst_domain is not None and dst_domain.size() > 1:
                    findings.append(Finding(
                        "default-off", "ambiguous",
                        "egress destination is decided at run time; the "
                        "module may reach both authorized and "
                        "unauthorized destinations",
                    ))
                else:
                    findings.append(Finding(
                        "default-off", "violation",
                        "egress destination is a fixed address outside "
                        "the requester's white-list",
                    ))
        return findings


def addresses_to_whitelist(addresses) -> FrozenSet[int]:
    """Parse dotted-quad addresses into a white-list set."""
    from repro.common.addr import parse_ip

    return frozenset(
        parse_ip(a) if isinstance(a, str) else int(a) for a in addresses
    )
