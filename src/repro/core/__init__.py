"""The In-Net architecture core (Sections 2 and 4).

This package is the paper's primary contribution:

* :mod:`repro.core.security` -- the security rules of Section 2.1/4.4
  (anti-spoofing + default-off with explicit/implicit authorization)
  checked by symbolic execution, with the three-way verdict
  allow / sandbox / reject,
* :mod:`repro.core.requests` -- client requests: a Click configuration
  (or a stock module) plus reach requirements, submitted under a trust
  role (third-party, operator customer, or the operator itself),
* :mod:`repro.core.catalog` -- canonical configurations for the Table 1
  middlebox functionalities and the stock processing modules,
* :mod:`repro.core.controller` -- the controller that statically
  verifies each request on a network snapshot, picks a compliant
  platform, deploys (wrapping with ChangeEnforcer sandboxes when
  needed), and installs forwarding state.
"""

from repro.core.accounting import Invoice, Ledger, Tariff
from repro.core.cache import (
    CacheStats,
    CachingSecurityAnalyzer,
    LRUCache,
)
from repro.core.api import (
    request_from_json,
    request_to_json,
    result_to_json,
)
from repro.core.catalog import (
    STOCK_MODULES,
    TABLE1_FUNCTIONALITIES,
    catalog_config,
    stock_module_config,
)
from repro.core.cluster import ControllerPool
from repro.core.federation import FederatedDeployment, Federation
from repro.core.controller import (
    Controller,
    DeploymentResult,
    MigrationResult,
)
from repro.core.requests import (
    ROLE_CLIENT,
    ROLE_OPERATOR,
    ROLE_THIRD_PARTY,
    ClientRequest,
)
from repro.core.security import (
    VERDICT_ALLOW,
    VERDICT_REJECT,
    VERDICT_SANDBOX,
    SecurityAnalyzer,
    SecurityReport,
)

__all__ = [
    "Controller",
    "DeploymentResult",
    "MigrationResult",
    "ControllerPool",
    "Federation",
    "FederatedDeployment",
    "Ledger",
    "Tariff",
    "Invoice",
    "request_to_json",
    "request_from_json",
    "result_to_json",
    "ClientRequest",
    "ROLE_THIRD_PARTY",
    "ROLE_CLIENT",
    "ROLE_OPERATOR",
    "SecurityAnalyzer",
    "SecurityReport",
    "CachingSecurityAnalyzer",
    "CacheStats",
    "LRUCache",
    "VERDICT_ALLOW",
    "VERDICT_SANDBOX",
    "VERDICT_REJECT",
    "catalog_config",
    "stock_module_config",
    "TABLE1_FUNCTIONALITIES",
    "STOCK_MODULES",
]
