"""The In-Net controller (Section 4.3).

The controller takes client requests and statically verifies them on a
snapshot of the network.  For each request it:

1. parses the Click configuration (or instantiates a stock module) and
   refuses anything built from unknown elements,
2. iterates through the available platforms; at each candidate it
   *pretends* to install the module (assigning it a platform address),
   recomputes the snapshot, and checks **all** operator requirements and
   the client's own requirements with symbolic execution,
3. runs the security analysis for the requester's trust role
   (anti-spoofing, default-off); `reject` denies the request, `sandbox`
   transparently wraps the module with ChangeEnforcer instances on every
   netfront path (billed to the client, Section 4.4),
4. on success, deploys: the module keeps its assigned address, flow
   rules steering that address to the module are recorded (our stand-in
   for the Openflow rules installed on Open vSwitch), and the client is
   told how to reach its module.

Timing of the two verification stages (model *compilation* = building
the symbolic graph; *checking* = exploration) is recorded per request --
these are the quantities Figure 10 plots.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.click.config import ClickConfig
from repro.common.addr import format_ip
from repro.common.errors import DeploymentError, VerificationError
from repro.core.requests import ClientRequest, ROLE_OPERATOR
from repro.core.security import (
    SecurityAnalyzer,
    SecurityReport,
    VERDICT_REJECT,
    VERDICT_SANDBOX,
    addresses_to_whitelist,
)
from repro.netmodel.symgraph import CompiledNetwork, NetworkCompiler
from repro.netmodel.topology import Network, Platform
from repro.policy.grammar import ReachRequirement, parse_requirements
from repro.symexec.reachability import ReachabilityChecker, ReachResult
from repro.symexec.summaries import (
    UNCHANGED_SCOPE,
    ChangedScope,
    SummaryCache,
    VerificationCache,
)
from repro.symexec.tuning import optimizations_enabled


@dataclass
class DeploymentResult:
    """What the client gets back for a deployment request."""

    accepted: bool
    module_id: Optional[str] = None
    platform: Optional[str] = None
    #: The externally reachable address of the processing module.
    address: Optional[str] = None
    sandboxed: bool = False
    security: Optional[SecurityReport] = None
    reach_results: List[ReachResult] = field(default_factory=list)
    reason: str = ""
    #: Seconds spent building symbolic graphs ("compilation", Fig. 10).
    compile_seconds: float = 0.0
    #: Seconds spent exploring and checking ("checking", Fig. 10).
    check_seconds: float = 0.0

    def __bool__(self) -> bool:
        return self.accepted


@dataclass
class _DeployedModule:
    module_id: str
    client_id: str
    platform: str
    address: int
    config: ClickConfig
    sandboxed: bool
    requirements: List[ReachRequirement] = field(default_factory=list)
    #: Listen steering (None = steer the whole address): kept so a
    #: migration or rollback re-installs the *same* flow-table rule.
    proto: Optional[int] = None
    port: Optional[int] = None


@dataclass
class MigrationResult:
    """Outcome of moving a module to another platform."""

    migrated: bool
    module_id: str
    source: Optional[str] = None
    target: Optional[str] = None
    new_address: Optional[str] = None
    #: Downtime model: suspend + state transfer + resume.
    downtime_seconds: float = 0.0
    reason: str = ""

    def __bool__(self) -> bool:
        return self.migrated


class Controller:
    """The operator's controller: one per network."""

    def __init__(
        self,
        network: Network,
        operator_requirements: str = "",
        ledger=None,
        clock=None,
        fast_path: bool = True,
        obs=None,
        journal=None,
    ):
        from repro.core.accounting import Ledger
        from repro.core.cache import CachingSecurityAnalyzer
        from repro.obs import NULL_OBSERVABILITY
        from repro.resilience.journal import NULL_JOURNAL

        self.network = network
        self.network.compute_routes()
        self.operator_requirements: List[ReachRequirement] = (
            parse_requirements(operator_requirements)
            if operator_requirements
            else []
        )
        #: Admission fast path: verdict caching + incremental
        #: compilation + route-recompute elision.  ``fast_path=False``
        #: recompiles everything from scratch per candidate (the
        #: pre-optimization behavior, kept for equivalence testing).
        self._fast_path = fast_path
        self.analyzer = (
            CachingSecurityAnalyzer() if fast_path else SecurityAnalyzer()
        )
        #: Cached compiled model of the committed snapshot, keyed by
        #: :meth:`Network.model_signature`.
        self._compiled: Optional[CompiledNetwork] = None
        self._compiled_signature: Optional[int] = None
        self.deployed: Dict[str, _DeployedModule] = {}
        #: client id -> addresses the client registered or was assigned
        #: (explicit-authorization white-list, Section 2.1).
        self.client_addresses: Dict[str, Set[int]] = {}
        self._module_counter = itertools.count(1)
        #: Installed forwarding rules: (platform, address) -> module id
        #: (stand-in for the Openflow rules on each platform's switch).
        self.flow_rules: Dict[Tuple[str, int], str] = {}
        #: Resource accounting (Section 2.1).
        self.ledger = ledger if ledger is not None else Ledger()
        #: Write-ahead deployment journal (repro.resilience.journal).
        #: The shared NULL_JOURNAL makes journaling a no-op call for
        #: controllers that do not opt in.
        self.journal = journal if journal is not None else NULL_JOURNAL
        #: Simulated-time source for accounting (defaults to wall time).
        self._clock = clock if clock is not None else time.time
        #: Observability (repro.obs): metrics + admission spans.  The
        #: shared disabled bundle makes every instrumentation site a
        #: no-op call, so the code below never branches on presence.
        self._obs = obs if obs is not None else NULL_OBSERVABILITY
        self._tracer = self._obs.tracer
        metrics = self._obs.metrics
        #: Transfer-function summary cache (per-element programs +
        #: composed segment chains), shared by every engine this
        #: controller creates; None without the fast path.
        self._summaries = SummaryCache() if fast_path else None
        #: Footprint-keyed requirement verdict cache: the incremental
        #: re-verification tier (always constructed; only consulted
        #: when the fast path and the tuning switch are on).
        self._verification = VerificationCache()
        if self._fast_path and self._obs.enabled:
            # Satellite of the obs subsystem: the verdict cache's
            # accounting lives in the shared registry, not in private
            # counters (see repro.core.cache.RegistryCacheStats).
            self.analyzer.instrument(metrics, "verdict")
            self._summaries.instrument(metrics)
        self._h_admission = metrics.histogram(
            "controller_admission_seconds",
            "Wall-clock seconds per admission request",
        )
        self._c_requests = metrics.counter(
            "controller_requests_total",
            "Admission requests by outcome", labels=("outcome",),
        )
        self._c_migrations = metrics.counter(
            "controller_migrations_total",
            "Migration attempts by outcome", labels=("outcome",),
        )
        self._c_kills = metrics.counter(
            "controller_kills_total", "Modules killed",
        )
        self._c_verdicts_reused = metrics.counter(
            "controller_verdicts_reused_total",
            "Requirement verdicts answered from the verification cache",
        )
        self._c_verdicts_reverified = metrics.counter(
            "controller_verdicts_reverified_total",
            "Requirement verdicts re-explored symbolically",
        )
        self._request_outcomes = {"accepted": 0, "rejected": 0}

    # -- public API -----------------------------------------------------------
    def request(
        self,
        request: ClientRequest,
        pinned_platform: Optional[str] = None,
        dry_run: bool = False,
    ) -> DeploymentResult:
        """Process one deployment request end to end.

        ``pinned_platform`` restricts placement to one platform (used
        by the controller pool to commit a previously verified
        placement).  ``dry_run`` verifies and reports the would-be
        placement without committing anything -- the verification phase
        of a parallel controller deployment (Section 4.3).
        """
        started = time.perf_counter()
        with self._tracer.span(
            "admit",
            client_id=request.client_id,
            module=request.module_name or "",
            dry_run=dry_run,
        ) as span:
            result = self._admit(request, pinned_platform, dry_run)
            span.set("accepted", result.accepted)
            if not result.accepted:
                span.set("reason", result.reason)
        self._h_admission.observe(time.perf_counter() - started)
        outcome = "accepted" if result.accepted else "rejected"
        self._request_outcomes[outcome] += 1
        self._c_requests.labels(outcome).inc()
        return result

    def _admit(
        self,
        request: ClientRequest,
        pinned_platform: Optional[str],
        dry_run: bool,
    ) -> DeploymentResult:
        compile_seconds = 0.0
        check_seconds = 0.0
        try:
            config = request.parse_click_config()
            config.validate()
        except Exception as exc:
            return DeploymentResult(accepted=False,
                                    reason="bad configuration: %s" % exc)
        try:
            requirements = request.parse_reach_requirements()
        except Exception as exc:
            return DeploymentResult(accepted=False,
                                    reason="bad requirements: %s" % exc)
        module_id = request.module_name or "%s-mod%d" % (
            request.client_id, next(self._module_counter)
        )
        if module_id in self.deployed:
            return DeploymentResult(
                accepted=False,
                reason="module name %r already in use" % (module_id,),
            )
        whitelist = self._whitelist_for(request)
        self.ledger.record_verification(request.client_id)
        all_platforms = self.network.platforms()
        if not all_platforms:
            return DeploymentResult(accepted=False,
                                    reason="no platforms available")
        platforms = [p for p in all_platforms if p.has_capacity]
        if pinned_platform is not None:
            platforms = [
                p for p in platforms if p.name == pinned_platform
            ]
            if not platforms:
                return DeploymentResult(
                    accepted=False,
                    reason="pinned platform %r unavailable or at "
                           "capacity" % (pinned_platform,),
                )
        if not platforms:
            return DeploymentResult(
                accepted=False,
                reason="every platform is at capacity",
            )
        last_failure = "no platform satisfies the requirements"
        compiled_base: Optional[CompiledNetwork] = None
        if self._fast_path:
            # Compile the operator network once per model epoch; the
            # candidate loop grafts each trial module onto this shared
            # model instead of rebuilding every node.
            try:
                started = time.perf_counter()
                with self._tracer.span("compile", incremental=True):
                    compiled_base = self._ensure_compiled()
                compile_seconds += time.perf_counter() - started
            except VerificationError as exc:
                return DeploymentResult(
                    accepted=False,
                    reason="verification failed: %s" % exc,
                    compile_seconds=compile_seconds,
                )
        for platform in platforms:
            try:
                address = platform.allocate_address()
            except Exception as exc:
                last_failure = "platform %s: %s" % (platform.name, exc)
                continue
            # Security analysis depends on the assigned address (the
            # module may legitimately source traffic from it); the
            # caching analyzer's address-independent pre-pass makes the
            # common `allow` case a single probe for all candidates.
            try:
                with self._tracer.span(
                    "security", platform=platform.name,
                ):
                    security = self.analyzer.analyze(
                        config,
                        request.role,
                        module_address=address,
                        whitelist=whitelist,
                    )
            except VerificationError as exc:
                platform.release_address(address)
                return DeploymentResult(
                    accepted=False,
                    reason="static checking impossible: %s" % exc,
                )
            if security.verdict == VERDICT_REJECT:
                platform.release_address(address)
                return DeploymentResult(
                    accepted=False,
                    security=security,
                    reason="security rules violated:\n%s" % security,
                )
            deploy_config = config
            sandboxed = False
            if security.verdict == VERDICT_SANDBOX:
                deploy_config = wrap_with_enforcer(
                    config, address, whitelist
                )
                sandboxed = True
            # Trial placement: pretend the module runs on this platform.
            try:
                listen_proto, listen_port = request.parse_listen()
            except Exception as exc:
                platform.release_address(address)
                return DeploymentResult(
                    accepted=False, reason="bad listen spec: %s" % exc,
                )
            platform.deploy(
                module_id, address, deploy_config,
                proto=listen_proto, port=listen_port,
            )
            # A trial placement never alters inter-node links, so the
            # epoch-aware compute_routes() elides the recompute.
            self.network.compute_routes()
            # What this trial changes: exactly one platform segment and
            # one address.  Verdicts with disjoint footprints stay
            # valid (and reusable); verdicts touching the trial are
            # re-explored and never stored.
            trial_scope = ChangedScope(
                frozenset((platform.name,)), frozenset((address,))
            )
            try:
                if compiled_base is not None:
                    started = time.perf_counter()
                    graft = compiled_base.with_trial_module(
                        platform.name, module_id, address, deploy_config,
                    )
                    with self._tracer.span(
                        "graft", platform=platform.name,
                    ):
                        compiled = graft.__enter__()
                    compile_seconds += time.perf_counter() - started
                    try:
                        started = time.perf_counter()
                        with self._tracer.span(
                            "check", platform=platform.name,
                        ):
                            results = self._verify_all(
                                compiled, requirements, module_id,
                                module_config=deploy_config,
                                changed=trial_scope,
                            )
                        check_seconds += time.perf_counter() - started
                    finally:
                        graft.__exit__(None, None, None)
                else:
                    started = time.perf_counter()
                    with self._tracer.span(
                        "compile", incremental=False,
                        platform=platform.name,
                    ):
                        compiled = NetworkCompiler(self.network).compile()
                    compile_seconds += time.perf_counter() - started
                    started = time.perf_counter()
                    with self._tracer.span(
                        "check", platform=platform.name,
                    ):
                        results = self._verify_all(
                            compiled, requirements, module_id,
                            module_config=deploy_config,
                            changed=trial_scope,
                        )
                    check_seconds += time.perf_counter() - started
            except VerificationError as exc:
                # The trial placement must never leak on a failed
                # verification (bad node reference, unmodelled
                # element in an operator box, ...).
                platform.undeploy(module_id)
                platform.release_address(address)
                self.network.compute_routes()
                return DeploymentResult(
                    accepted=False,
                    reason="verification failed: %s" % exc,
                    compile_seconds=compile_seconds,
                    check_seconds=check_seconds,
                )
            if all(results):
                if dry_run:
                    # Undo the trial placement; report the decision.
                    platform.undeploy(module_id)
                    platform.release_address(address)
                    self.network.compute_routes()
                else:
                    self._commit(request, module_id, platform, address,
                                 deploy_config, sandboxed, requirements,
                                 proto=listen_proto, port=listen_port)
                return DeploymentResult(
                    accepted=True,
                    module_id=module_id,
                    platform=platform.name,
                    address=format_ip(address),
                    sandboxed=sandboxed,
                    security=security,
                    reach_results=results,
                    compile_seconds=compile_seconds,
                    check_seconds=check_seconds,
                )
            failed = [r for r in results if not r]
            last_failure = "; ".join(
                "%s: %s" % (r.requirement, r.reason) for r in failed
            )
            platform.undeploy(module_id)
            platform.release_address(address)
            self.network.compute_routes()
        return DeploymentResult(
            accepted=False,
            reason=last_failure,
            compile_seconds=compile_seconds,
            check_seconds=check_seconds,
        )

    def kill(self, module_id: str) -> bool:
        """Stop and remove a deployed module (the client's kill call).

        Idempotent (a second kill returns False) and safe even when
        the hosting platform node has since been removed from the
        topology: all controller-side bookkeeping -- record, flow
        rule, the client's authorization entry, billing -- is torn
        down either way, and the module's address goes back to the
        platform's pool so the pool never shrinks across a
        deploy/kill cycle.
        """
        record = self.deployed.get(module_id)
        if record is None:
            return False
        from repro.resilience.journal import (
            OP_KILL, PHASE_COMMIT, PHASE_INTENT,
        )

        self.journal.append(
            OP_KILL, PHASE_INTENT,
            module_id=module_id, client_id=record.client_id,
            platform=record.platform, address=record.address,
            timestamp=self._clock(),
        )
        del self.deployed[module_id]
        try:
            platform = self.network.node(record.platform)
        except Exception:
            platform = None
        if isinstance(platform, Platform):
            platform.undeploy(module_id)
            platform.release_address(record.address)
        self.flow_rules.pop((record.platform, record.address), None)
        owned = self.client_addresses.get(record.client_id)
        if owned is not None:
            owned.discard(record.address)
        self.network.bump_epoch()
        self.network.compute_routes()
        self.ledger.record_stop(module_id, self._clock())
        self._c_kills.inc()
        self.journal.append(
            OP_KILL, PHASE_COMMIT,
            module_id=module_id, client_id=record.client_id,
            platform=record.platform, address=record.address,
            timestamp=self._clock(),
        )
        return True

    def migrate(
        self, module_id: str, target_platform: str
    ) -> MigrationResult:
        """Move a deployed module to another platform.

        Processing should follow the user (Section 2): the module is
        trial-placed on the target, the client's original requirements
        are re-verified there, and only then is the source instance
        torn down.  The module gets a fresh address from the target's
        pool (the client is notified, exactly as on first deployment).
        Downtime follows the suspend -> transfer -> resume model.
        """
        result = self._migrate(module_id, target_platform)
        self._c_migrations.labels(
            "migrated" if result.migrated else "failed"
        ).inc()
        return result

    def _migrate(
        self, module_id: str, target_platform: str
    ) -> MigrationResult:
        record = self.deployed.get(module_id)
        if record is None:
            return MigrationResult(
                migrated=False, module_id=module_id,
                reason="unknown module",
            )
        if record.platform == target_platform:
            return MigrationResult(
                migrated=False, module_id=module_id,
                reason="module already on %s" % target_platform,
            )
        try:
            target = self.network.node(target_platform)
        except Exception:
            return MigrationResult(
                migrated=False, module_id=module_id,
                reason="unknown platform %r" % (target_platform,),
            )
        if not isinstance(target, Platform):
            return MigrationResult(
                migrated=False, module_id=module_id,
                reason="%r is not a platform" % (target_platform,),
            )
        if not target.has_capacity:
            return MigrationResult(
                migrated=False, module_id=module_id,
                reason="target platform is at capacity",
            )
        from repro.resilience.journal import (
            OP_MIGRATE, PHASE_COMMIT, PHASE_INTENT,
        )

        source = self.network.node(record.platform)
        new_address = target.allocate_address()
        self.journal.append(
            OP_MIGRATE, PHASE_INTENT,
            module_id=module_id, client_id=record.client_id,
            platform=target_platform, address=new_address,
            source=record.platform, source_address=record.address,
            proto=record.proto, port=record.port,
            timestamp=self._clock(),
        )
        # Trial placement on the target while the source still runs.
        # *Every* non-commit exit below must leave the world exactly
        # as it was: source record, flow rules, client addresses
        # untouched, the target's trial address back in the pool.
        source.undeploy(module_id)
        try:
            target.deploy(
                module_id, new_address, record.config,
                proto=record.proto, port=record.port,
            )
            self.network.compute_routes()
            compiled = self._ensure_compiled()
            results = self._verify_all(
                compiled, record.requirements, module_id,
                module_config=record.config,
            )
        except Exception:
            self._rollback_migration(
                source, target, record, module_id, new_address
            )
            raise
        if not all(results):
            # Roll back: the module stays where it was.
            self._rollback_migration(
                source, target, record, module_id, new_address
            )
            failed = [r for r in results if not r]
            return MigrationResult(
                migrated=False, module_id=module_id,
                source=record.platform, target=target_platform,
                reason="; ".join(
                    "%s: %s" % (r.requirement, r.reason) for r in failed
                ),
            )
        # Commit: swap flow rules and client-owned addresses, and
        # return the source-side address to its pool -- nothing refers
        # to it any more.
        self.flow_rules.pop((record.platform, record.address), None)
        self.flow_rules[(target_platform, new_address)] = module_id
        owned = self.client_addresses.setdefault(record.client_id, set())
        owned.discard(record.address)
        owned.add(new_address)
        old_platform = record.platform
        old_address = record.address
        source.release_address(old_address)
        record.platform = target_platform
        record.address = new_address
        self.network.bump_epoch()
        self.journal.append(
            OP_MIGRATE, PHASE_COMMIT,
            module_id=module_id, client_id=record.client_id,
            platform=target_platform, address=new_address,
            source=old_platform, source_address=old_address,
            proto=record.proto, port=record.port,
            timestamp=self._clock(),
        )
        downtime = _migration_downtime(record.config)
        return MigrationResult(
            migrated=True,
            module_id=module_id,
            source=old_platform,
            target=target_platform,
            new_address=format_ip(new_address),
            downtime_seconds=downtime,
        )

    def _rollback_migration(
        self,
        source: Platform,
        target: Platform,
        record: _DeployedModule,
        module_id: str,
        new_address: int,
    ) -> None:
        """Undo a trial migration placement, restoring the source
        exactly (including the original listen steering)."""
        if module_id in target.modules:
            target.undeploy(module_id)
        target.release_address(new_address)
        if module_id not in source.modules:
            source.deploy(
                module_id, record.address, record.config,
                proto=record.proto, port=record.port,
            )
        self.network.compute_routes()

    def export_module(self, module_id: str) -> "_DeployedModule":
        """A detached copy of a deployed module's control-plane record.

        The hand-off unit for cross-controller moves (federation
        hand-back and live resharding): everything another controller
        needs to re-admit the module on *its* network -- config, owner,
        sandbox flag, stored requirements, listen steering -- without
        sharing mutable state with this controller.
        """
        record = self.deployed.get(module_id)
        if record is None:
            raise DeploymentError("unknown module %r" % (module_id,))
        return _DeployedModule(
            module_id=record.module_id,
            client_id=record.client_id,
            platform=record.platform,
            address=record.address,
            config=record.config,
            sandboxed=record.sandboxed,
            requirements=list(record.requirements),
            proto=record.proto,
            port=record.port,
        )

    def adopt_module(
        self,
        record: "_DeployedModule",
        pinned_platform: Optional[str] = None,
        origin: str = "",
    ) -> MigrationResult:
        """Admit a module exported from *another* controller.

        The cross-network half of :meth:`migrate`, with the same
        trial-place / re-verify / exact-rollback discipline: the module
        is placed on a platform of **this** network with a fresh
        address from its pool, the stored client requirements are
        re-verified against this network's compiled model, and only a
        fully verified placement commits (journal intent precedes the
        trial placement, so a crash mid-adoption leaves a pending
        intent that :meth:`recover` reconciles away).  The caller (the
        federated reshard path) tears the source copy down only after
        this returns success -- the module is never in limbo.

        ``origin`` is recorded as journal provenance (audit trail for
        cross-shard moves).  The module keeps its id, owner, config,
        sandbox status, and listen steering; only platform and address
        change, exactly as in an in-network migration.
        """
        from repro.resilience.journal import (
            OP_DEPLOY, PHASE_COMMIT, PHASE_INTENT,
        )

        if record.module_id in self.deployed:
            return MigrationResult(
                migrated=False, module_id=record.module_id,
                source=record.platform,
                reason="module name %r already in use here"
                       % (record.module_id,),
            )
        platforms = [
            p for p in self.network.platforms() if p.has_capacity
        ]
        if pinned_platform is not None:
            platforms = [
                p for p in platforms if p.name == pinned_platform
            ]
        if not platforms:
            return MigrationResult(
                migrated=False, module_id=record.module_id,
                source=record.platform,
                reason="no platform with capacity for the adopted "
                       "module",
            )
        last_failure = "no platform satisfies the requirements"
        for target in platforms:
            try:
                new_address = target.allocate_address()
            except Exception as exc:
                last_failure = "platform %s: %s" % (target.name, exc)
                continue
            journal_fields = dict(
                module_id=record.module_id, client_id=record.client_id,
                platform=target.name, address=new_address,
                sandboxed=record.sandboxed,
                proto=record.proto, port=record.port,
                timestamp=self._clock(), config=record.config,
                requirements=tuple(record.requirements),
                origin=origin,
            )
            self.journal.append(
                OP_DEPLOY, PHASE_INTENT, **journal_fields
            )
            target.deploy(
                record.module_id, new_address, record.config,
                proto=record.proto, port=record.port,
            )
            self.network.compute_routes()
            try:
                compiled = self._ensure_compiled()
                results = self._verify_all(
                    compiled, record.requirements, record.module_id,
                    module_config=record.config,
                )
            except Exception as exc:
                target.undeploy(record.module_id)
                target.release_address(new_address)
                self.network.compute_routes()
                return MigrationResult(
                    migrated=False, module_id=record.module_id,
                    source=record.platform, target=target.name,
                    reason="verification failed: %s" % (exc,),
                )
            if not all(results):
                target.undeploy(record.module_id)
                target.release_address(new_address)
                self.network.compute_routes()
                failed = [r for r in results if not r]
                last_failure = "; ".join(
                    "%s: %s" % (r.requirement, r.reason)
                    for r in failed
                )
                continue
            self.deployed[record.module_id] = _DeployedModule(
                module_id=record.module_id,
                client_id=record.client_id,
                platform=target.name,
                address=new_address,
                config=record.config,
                sandboxed=record.sandboxed,
                requirements=list(record.requirements),
                proto=record.proto,
                port=record.port,
            )
            self.ledger.record_deployment(
                record.module_id, record.client_id, record.sandboxed,
                self._clock(),
            )
            self.flow_rules[(target.name, new_address)] = \
                record.module_id
            self.client_addresses.setdefault(
                record.client_id, set()
            ).add(new_address)
            self.network.bump_epoch()
            self.journal.append(
                OP_DEPLOY, PHASE_COMMIT, **journal_fields
            )
            self._c_migrations.labels("migrated").inc()
            return MigrationResult(
                migrated=True,
                module_id=record.module_id,
                source=record.platform,
                target=target.name,
                new_address=format_ip(new_address),
                downtime_seconds=_migration_downtime(record.config),
            )
        self._c_migrations.labels("failed").inc()
        return MigrationResult(
            migrated=False, module_id=record.module_id,
            source=record.platform, reason=last_failure,
        )

    def register_client_address(self, client_id: str, address: str) -> None:
        """Record an address owned by a client (explicit authorization)."""
        parsed = next(iter(addresses_to_whitelist([address])))
        self.client_addresses.setdefault(client_id, set()).add(parsed)
        from repro.resilience.journal import OP_REGISTER, PHASE_COMMIT

        self.journal.append(
            OP_REGISTER, PHASE_COMMIT,
            client_id=client_id, address=parsed,
            timestamp=self._clock(),
        )

    @classmethod
    def recover(
        cls,
        network: Network,
        journal,
        operator_requirements: str = "",
        ledger=None,
        clock=None,
        fast_path: bool = True,
        obs=None,
    ) -> "Controller":
        """Rebuild a controller from its write-ahead journal.

        The replacement for a crashed controller: committed deploys,
        kills, and migrations are folded into the effective deployment
        state, which is re-installed (``deployed``, flow rules, client
        authorization sets, ledger).  The platforms are then
        *reconciled* against that state -- a trial placement orphaned
        by a crash between intent and commit is undeployed and its
        address released, and a committed module a platform lost is
        re-deployed at its original address.  The result converges to
        the pre-crash control-plane state (the chaos harness asserts
        digest equality).
        """
        controller = cls(
            network,
            operator_requirements=operator_requirements,
            ledger=ledger,
            clock=clock,
            fast_path=fast_path,
            obs=obs,
            journal=journal,
        )
        live = journal.live_state()
        # Reconcile platform-side placements: anything a platform runs
        # that the journal does not consider live is an orphan of an
        # interrupted operation.
        for platform in network.platforms():
            for module_id in list(platform.modules):
                record = live.get(module_id)
                if record is None or record.platform != platform.name:
                    address, _config = platform.modules[module_id]
                    platform.undeploy(module_id)
                    platform.release_address(address)
        # Re-install the committed state.
        for module_id in sorted(live):
            record = live[module_id]
            platform = network.node(record.platform)
            if module_id not in platform.modules:
                platform.adopt_address(record.address)
                platform.deploy(
                    module_id, record.address, record.config,
                    proto=record.proto, port=record.port,
                )
            controller.deployed[module_id] = _DeployedModule(
                module_id=module_id,
                client_id=record.client_id,
                platform=record.platform,
                address=record.address,
                config=record.config,
                sandboxed=record.sandboxed,
                requirements=list(record.requirements),
                proto=record.proto,
                port=record.port,
            )
            controller.flow_rules[
                (record.platform, record.address)
            ] = module_id
            controller.client_addresses.setdefault(
                record.client_id, set()
            ).add(record.address)
            billed = controller.ledger.modules.get(module_id)
            if billed is None or billed.stopped_at is not None:
                controller.ledger.record_deployment(
                    module_id, record.client_id, record.sandboxed,
                    record.timestamp,
                )
        for client_id, addresses in journal.registered_addresses().items():
            controller.client_addresses.setdefault(
                client_id, set()
            ).update(addresses)
        # Auto-generated module ids must not collide with pre-crash
        # ones (including modules that were killed since).
        controller._module_counter = itertools.count(
            journal.deploys_seen() + 1
        )
        network.bump_epoch()
        network.compute_routes()
        return controller

    def set_operator_requirements(self, text: str) -> None:
        """Replace the operator policy (a policy edit).

        Cached verdicts for requirements still present in the new
        policy are kept -- the next :meth:`verify_snapshot` re-explores
        only requirements that are new or whose footprint segments
        changed.  Entries for dropped operator rules are pruned (their
        module-owned ``$module`` instantiations expire lazily through
        token validation).
        """
        self.operator_requirements = (
            parse_requirements(text) if text else []
        )
        self._verification.prune_operator(frozenset(
            str(req) for req in self.operator_requirements
        ))

    def verify_snapshot(self) -> List[ReachResult]:
        """Re-check the whole snapshot after a network change.

        Section 4.3: "The policy is enforced by static verification
        performed by the controller at each modification of the state
        of the network."  Checks every operator requirement *and* every
        deployed module's stored client requirements; callers inspect
        the failed results to find what a topology change broke.
        """
        compiled = self._ensure_compiled()
        # Nothing is being mutated, so every footprint-valid cached
        # verdict is reusable and every fresh verdict is storable: a
        # verify_snapshot after a policy edit re-explores only the new
        # requirements (plus any whose segment tokens were bumped).
        results = self._verify_all(
            compiled, [], None, changed=UNCHANGED_SCOPE
        )
        for record in self.deployed.values():
            results.extend(self._verify_all(
                compiled, record.requirements, record.module_id,
                module_config=record.config, changed=UNCHANGED_SCOPE,
            ))
        return results

    def evacuate(self, platform_name: str) -> List[MigrationResult]:
        """Move every module off a platform (maintenance / failure).

        Each module is migrated to the first other platform where its
        stored requirements re-verify; modules with nowhere to go are
        reported as failed migrations and left in place (on a dead
        platform the operator would kill them instead).
        """
        victims = [
            module_id
            for module_id, record in self.deployed.items()
            if record.platform == platform_name
        ]
        outcomes: List[MigrationResult] = []
        for module_id in victims:
            moved = None
            for platform in self.network.platforms():
                if platform.name == platform_name:
                    continue
                if not platform.has_capacity:
                    continue
                try:
                    attempt = self.migrate(module_id, platform.name)
                except Exception as exc:
                    # One candidate blowing up must not strand the
                    # rest of the evacuation (_migrate already rolled
                    # the trial placement back).
                    attempt = MigrationResult(
                        migrated=False, module_id=module_id,
                        source=platform_name, target=platform.name,
                        reason="migration error: %s" % (exc,),
                    )
                if attempt:
                    moved = attempt
                    break
                moved = attempt
            if moved is None:
                moved = MigrationResult(
                    migrated=False, module_id=module_id,
                    source=platform_name,
                    reason="no alternative platform available",
                )
            outcomes.append(moved)
        return outcomes

    def stats(self) -> dict:
        """Controller-level counters for operators and tests.

        Always available (observability enabled or not): request
        outcomes, verdict-cache accounting when the fast path is on,
        and current deployment state.
        """
        out = {
            "requests": dict(self._request_outcomes),
            "deployed_modules": len(self.deployed),
            "flow_rules": len(self.flow_rules),
            "model_epoch_cached": self._compiled is not None,
        }
        cache_stats = getattr(self.analyzer, "stats", None)
        if cache_stats is not None:
            out["verdict_cache"] = cache_stats.to_dict()
        from repro.symexec import tuning as symexec_tuning

        out["symexec"] = symexec_tuning.stats()
        if self._summaries is not None:
            out["symexec_summaries"] = self._summaries.stats()
        out["verification_cache"] = self._verification.stats()
        return out

    # -- internals ----------------------------------------------------------------
    def _ensure_compiled(self) -> CompiledNetwork:
        """The compiled model of the current snapshot, cached per epoch.

        Validity is keyed on :meth:`Network.model_signature`, which
        covers the explicit epoch (bumped by real deploys, kills, and
        migrations), the link/address-ownership structure, and the
        committed module placement -- so even out-of-band topology
        surgery invalidates the cache.
        """
        signature = self.network.model_signature()
        if (
            self._compiled is None
            or signature != self._compiled_signature
        ):
            self.network.compute_routes()
            self._compiled = NetworkCompiler(self.network).compile()
            self._compiled_signature = signature
        return self._compiled

    def invalidate_model_cache(self) -> None:
        """Drop the cached compiled model (explicit invalidation API),
        plus every derived cache: summary tables and verdicts."""
        self._compiled = None
        self._compiled_signature = None
        self._verification.flush()
        if self._summaries is not None:
            self._summaries.invalidate()

    def _whitelist_for(self, request: ClientRequest) -> FrozenSet[int]:
        owned = addresses_to_whitelist(request.owned_addresses)
        known = self.client_addresses.get(request.client_id, set())
        return frozenset(owned | known)

    def _verify_all(
        self,
        compiled: CompiledNetwork,
        client_requirements: List[ReachRequirement],
        module_id: Optional[str],
        module_config: Optional[ClickConfig] = None,
        changed: Optional[ChangedScope] = None,
    ) -> List[ReachResult]:
        """Check every requirement, reusing footprint-valid verdicts.

        ``changed`` describes what the caller is mutating (the trial
        platform and address during admission, nothing during a
        snapshot re-verification).  When given -- and the fast path and
        tuning switch are on -- each requirement first consults the
        verification cache: a verdict whose reachability footprint
        avoided every changed segment, and whose per-segment version
        tokens still validate, is returned without re-exploring.
        ``changed=None`` (migration/adoption trial paths) disables the
        cache entirely for this call.
        """
        checker = ReachabilityChecker(compiled.resolver)
        results: List[ReachResult] = []
        # The engine inherits the controller's observability bundle, so
        # its explore spans nest under the admission span tree and the
        # symexec_* counters land in the shared registry.
        engine = compiled.engine(obs=self._obs, summaries=self._summaries)
        use_cache = (
            self._fast_path
            and changed is not None
            and optimizations_enabled()
        )
        topo_signature = (
            self.network.topology_signature() if use_cache else None
        )
        cache = self._verification
        reused = 0
        explored = 0
        # Requirement ownership keys the verdict cache: operator rules
        # are owner "" (shared across admissions), client rules and
        # $module-instantiated operator rules belong to the module
        # (their verdicts depend on where it sits).  Trial modules --
        # not yet in ``deployed`` -- are never cached: their placement
        # is rolled back when the candidate loop moves on.
        pending = [(req, "") for req in self.operator_requirements]
        pending.extend(
            (req, module_id or "") for req in client_requirements
        )
        with self._tracer.span(
            "verify", incremental=use_cache
        ) as span:
            for requirement, owner in pending:
                instantiated = _instantiate_rule(
                    requirement, module_id, module_config
                )
                if instantiated is None:
                    continue  # $module rule with no module in flight
                if instantiated is not requirement:
                    owner = module_id or ""
                cacheable = use_cache and (
                    owner == "" or owner in self.deployed
                )
                key = (owner, str(instantiated))
                if cacheable:
                    cached = cache.lookup(
                        key, self.network, topo_signature
                    )
                    if cached is not None:
                        results.append(cached)
                        reused += 1
                        continue
                origin = instantiated.origin
                exploration = compiled.explore_from(
                    origin.node, origin.flow, engine=engine
                )
                result = checker.check(instantiated, exploration)
                results.append(result)
                explored += 1
                if cacheable:
                    cache.store(
                        key, result, exploration, compiled,
                        self.network, instantiated, changed,
                        topo_signature,
                    )
            span.set("reused", reused)
            span.set("explored", explored)
        self._c_verdicts_reused.inc(reused)
        self._c_verdicts_reverified.inc(explored)
        return results

    def _commit(
        self,
        request: ClientRequest,
        module_id: str,
        platform: Platform,
        address: int,
        config: ClickConfig,
        sandboxed: bool,
        requirements: Optional[List[ReachRequirement]] = None,
        proto: Optional[int] = None,
        port: Optional[int] = None,
    ) -> None:
        from repro.resilience.journal import (
            OP_DEPLOY, PHASE_COMMIT, PHASE_INTENT,
        )

        journal_fields = dict(
            module_id=module_id, client_id=request.client_id,
            platform=platform.name, address=address,
            sandboxed=sandboxed, proto=proto, port=port,
            timestamp=self._clock(), config=config,
            requirements=tuple(requirements or ()),
        )
        self.journal.append(OP_DEPLOY, PHASE_INTENT, **journal_fields)
        self.deployed[module_id] = _DeployedModule(
            module_id=module_id,
            client_id=request.client_id,
            platform=platform.name,
            address=address,
            config=config,
            sandboxed=sandboxed,
            requirements=list(requirements or []),
            proto=proto,
            port=port,
        )
        self.ledger.record_deployment(
            module_id, request.client_id, sandboxed, self._clock()
        )
        self.flow_rules[(platform.name, address)] = module_id
        # The module's address becomes part of the client's explicit-
        # authorization set, disseminated to all platforms (Section 2.1).
        self.client_addresses.setdefault(request.client_id, set()).add(
            address
        )
        # A real deploy starts a new model epoch: cached compiled
        # networks must pick up the new permanent module.
        self.network.bump_epoch()
        self.journal.append(OP_DEPLOY, PHASE_COMMIT, **journal_fields)


def _instantiate_rule(
    requirement: ReachRequirement,
    module_id: Optional[str],
    module_config: Optional[ClickConfig],
) -> Optional[ReachRequirement]:
    """Substitute the ``$module`` placeholder in an operator rule.

    Section 2.2: some operator policies are about *the tenant's own
    traffic* ("if a client's VM talks HTTP it must sit behind the HTTP
    middlebox").  Such rules use ``$module`` as origin; the controller
    instantiates them per trial placement so the module's egress is
    where symbolic traffic is injected.  Returns None when there is no
    module in flight to substitute.
    """
    from dataclasses import replace

    from repro.policy.grammar import (
        Hop,
        KIND_ELEMENT,
        KIND_NAME,
        MODULE_PLACEHOLDER,
        NodeRef,
    )

    origin = requirement.origin
    uses_placeholder = (
        origin.node.kind == KIND_NAME
        and origin.node.name == MODULE_PLACEHOLDER
    )
    if not uses_placeholder:
        return requirement
    if module_id is None or module_config is None:
        return None
    sources = module_config.sources()
    if not sources:
        return None
    # Inject at the module's entry: the symbolic traffic then passes
    # through the module's own elements, so what can leave the module
    # is exactly what its filters and rewriters allow.
    new_origin = Hop(
        node=NodeRef(
            KIND_ELEMENT, name=module_id, element=sources[0], port=0
        ),
        flow=origin.flow,
        const_fields=origin.const_fields,
    )
    return replace(
        requirement, hops=(new_origin,) + requirement.hops[1:]
    )


#: Migration transfer model: suspended ClickOS image ~8 MB over an
#: operator backbone path at ~1 Gb/s effective.
_VM_IMAGE_BYTES = 8 * 1024 * 1024
_TRANSFER_BPS = 1e9
_SUSPEND_S = 0.05
_RESUME_S = 0.06


def _migration_downtime(config: ClickConfig) -> float:
    """Downtime of suspend -> transfer -> resume for one module."""
    transfer = _VM_IMAGE_BYTES * 8.0 / _TRANSFER_BPS
    return _SUSPEND_S + transfer + _RESUME_S


def wrap_with_enforcer(
    config: ClickConfig, module_address: int, whitelist: FrozenSet[int]
) -> ClickConfig:
    """Wrap a configuration with ChangeEnforcer sandboxes (Section 4.4).

    An enforcer instance is injected on every path from a FromNetfront
    element into the module and on every path from the module to a
    ToNetfront element.  The enforcer is part of the client's
    configuration, so the client is billed for it.
    """
    from repro.click.config import Edge

    wrapped = ClickConfig()
    wrapped.elements = dict(config.elements)
    wrapped._anon_counter = config._anon_counter
    sources = set(config.sources())
    sinks = set(config.sinks())
    args = ["addr %s" % format_ip(module_address)]
    args.extend("whitelist %s" % format_ip(a) for a in sorted(whitelist))
    ingress_edges = [e for e in config.edges if e.src in sources]
    egress_edges = [e for e in config.edges if e.dst in sinks]
    # The common single-path module gets ONE enforcer spanning both
    # directions, so implicit authorizations granted on ingress are
    # visible when policing egress.  Configurations with several entry
    # or exit edges get a dedicated instance per edge: stricter (each
    # egress enforcer then only honors its own observations plus the
    # white-list), but still safe.
    shared = len(ingress_edges) == 1 and len(egress_edges) == 1
    if shared:
        wrapped.declare("enforcer", "ChangeEnforcer", tuple(args))
    enforcer_count = itertools.count(1)
    for edge in config.edges:
        if edge.src in sources:
            name = "enforcer" if shared else (
                "enforcer_in_%d" % next(enforcer_count)
            )
            if not shared:
                wrapped.declare(name, "ChangeEnforcer", tuple(args))
            wrapped.edges.append(Edge(edge.src, edge.src_port, name, 0))
            wrapped.edges.append(Edge(name, 0, edge.dst, edge.dst_port))
        elif edge.dst in sinks:
            name = "enforcer" if shared else (
                "enforcer_out_%d" % next(enforcer_count)
            )
            if not shared:
                wrapped.declare(name, "ChangeEnforcer", tuple(args))
            wrapped.edges.append(Edge(edge.src, edge.src_port, name, 1))
            wrapped.edges.append(Edge(name, 1, edge.dst, edge.dst_port))
        else:
            wrapped.edges.append(edge)
    return wrapped
