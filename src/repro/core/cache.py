"""Admission fast path: verdict caching for the controller (Section 4.3).

The controller re-runs the security analysis for every candidate
platform of every request, yet the analysis depends only on the module's
*structure* (its canonical fingerprint), the requester's trust role and
white-list, and -- sometimes -- the address the candidate platform
assigned.  Popular stock modules are requested over and over with
identical configurations, so the paper's amortization applies: verify
once, reuse the verdict.

Two layers make the per-candidate cost collapse to one cache probe:

* an **address-independent pre-pass**: the analysis is first run with no
  module address at all.  Supplying an address only ever *removes*
  spoofing findings (it widens the set of acceptable egress sources), so
  an ``allow`` verdict without an address is an ``allow`` for every
  address -- one cached report covers all candidate platforms and all
  future identical requests;
* a per-address **LRU verdict cache** keyed by
  ``(config fingerprint, role, whitelist, address)`` for configurations
  whose verdict genuinely depends on the assigned address.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Optional

from repro.core.requests import ROLE_OPERATOR
from repro.core.security import (
    SecurityAnalyzer,
    SecurityReport,
    VERDICT_ALLOW,
)


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def record_hit(self) -> None:
        self.hits += 1

    def record_miss(self) -> None:
        self.misses += 1

    def record_eviction(self) -> None:
        self.evictions += 1

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class RegistryCacheStats:
    """:class:`CacheStats` backed by ``repro.obs`` registry counters.

    Same read interface (``hits``/``misses``/``evictions``/``probes``/
    ``hit_rate``), but every increment lands in the shared
    :class:`~repro.obs.MetricsRegistry` under
    ``cache_{hits,misses,evictions}_total{cache=<name>}`` -- the cache
    no longer keeps private counters once instrumented.
    """

    __slots__ = ("_hits", "_misses", "_evictions")

    def __init__(self, metrics, name: str):
        self._hits = metrics.counter(
            "cache_hits_total", "Cache probes that hit",
            labels=("cache",),
        ).labels(name)
        self._misses = metrics.counter(
            "cache_misses_total", "Cache probes that missed",
            labels=("cache",),
        ).labels(name)
        self._evictions = metrics.counter(
            "cache_evictions_total", "Entries evicted past capacity",
            labels=("cache",),
        ).labels(name)

    def record_hit(self) -> None:
        self._hits.inc()

    def record_miss(self) -> None:
        self._misses.inc()

    def record_eviction(self) -> None:
        self._evictions.inc()

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """A small least-recently-used map with hit/miss accounting."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.stats = CacheStats()

    def instrument(self, metrics, name: str) -> None:
        """Move accounting into a metrics registry (carrying over any
        counts already accumulated on the private counters)."""
        stats = RegistryCacheStats(metrics, name)
        for _ in range(self.stats.hits):
            stats.record_hit()
        for _ in range(self.stats.misses):
            stats.record_miss()
        for _ in range(self.stats.evictions):
            stats.record_eviction()
        self.stats = stats

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable):
        """The cached value, or None; refreshes recency and counters."""
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.record_miss()
            return None
        self._entries.move_to_end(key)
        self.stats.record_hit()
        return value

    def put(self, key: Hashable, value) -> None:
        """Insert/refresh a value, evicting the oldest past capacity."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.record_eviction()

    def clear(self) -> None:
        self._entries.clear()


class CachingSecurityAnalyzer:
    """A :class:`SecurityAnalyzer` front-end with verdict memoization.

    Drop-in for the controller's ``analyzer`` attribute: ``analyze``
    has the same signature and returns reports identical (verdict,
    findings, egress flow count) to an uncached run.
    """

    def __init__(
        self,
        analyzer: Optional[SecurityAnalyzer] = None,
        capacity: int = 256,
    ):
        self.analyzer = analyzer if analyzer is not None else (
            SecurityAnalyzer()
        )
        self.cache = LRUCache(capacity)

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def instrument(self, metrics, name: str = "verdict") -> None:
        """Expose this cache's accounting through a metrics registry."""
        self.cache.instrument(metrics, name)

    def analyze(
        self,
        config,
        role: str,
        module_address: Optional[int] = None,
        whitelist: FrozenSet[int] = frozenset(),
    ) -> SecurityReport:
        if role == ROLE_OPERATOR:
            # Trusted and address-free: the analyzer short-circuits
            # anyway, caching would only add bookkeeping.
            return self.analyzer.analyze(
                config, role,
                module_address=module_address,
                whitelist=whitelist,
            )
        fingerprint = config.fingerprint()
        whitelist = frozenset(whitelist)
        # Address-independent pre-pass: an `allow` with no address
        # assigned is an `allow` for every address (the address only
        # widens the set of acceptable egress sources).
        base_key = (fingerprint, role, whitelist, None)
        base = self.cache.get(base_key)
        if base is None:
            base = self.analyzer.analyze(
                config, role, module_address=None, whitelist=whitelist,
            )
            self.cache.put(base_key, base)
        if base.verdict == VERDICT_ALLOW or module_address is None:
            return base
        key = (fingerprint, role, whitelist, module_address)
        report = self.cache.get(key)
        if report is None:
            report = self.analyzer.analyze(
                config, role,
                module_address=module_address,
                whitelist=whitelist,
            )
            self.cache.put(key, report)
        return report

    def clear(self) -> None:
        self.cache.clear()
