"""Canonical middlebox configurations (Table 1) and stock modules.

Section 7.1 evaluates static checking accuracy over a range of
middleboxes "implemented using existing Click elements or by deploying
In-Net stock processing modules".  This catalog reproduces that set:
each entry builds the canonical Click configuration for one Table 1
functionality, parameterized by the addresses involved, so both the
safety-matrix benchmark and the tests can instantiate them.

Stock modules (Section 4.1) are the controller-offered appliances: a
reverse HTTP proxy and an explicit proxy (squid-based in the paper), a
geolocation DNS server, and the arbitrary x86 VM.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, Tuple

from repro.click.config import ClickConfig, parse_config
from repro.common.errors import ConfigError


@lru_cache(maxsize=128)
def _parse_cached(source: str) -> ClickConfig:
    """Parse-once template for catalog/stock sources.

    Popular stock modules are requested over and over with identical
    source text; re-tokenizing the same string per instantiation is
    pure waste.  Callers get a :meth:`ClickConfig.copy` of the cached
    template so later mutation (e.g. sandbox wrapping) cannot corrupt
    the shared parse.
    """
    return parse_config(source)


def parse_catalog_source(source: str) -> ClickConfig:
    """Memoized parse returning an independent copy."""
    return _parse_cached(source).copy()

# Default addresses used by the canonical configurations; the Table 1
# benchmark overrides them per scenario.
DEFAULT_MODULE_ADDR = "192.0.2.10"
DEFAULT_CLIENT_ADDR = "172.16.15.133"
DEFAULT_ORIGIN_ADDR = "198.51.100.1"
DEFAULT_PROXY_ADDR = "192.0.2.20"
DEFAULT_MULTICAST = ("172.16.15.133", "172.16.15.134")
DEFAULT_REPLICAS = ("198.51.100.1", "198.51.100.2", "198.51.100.3")


def _ip_router(**kw) -> str:
    return """
        src :: FromNetfront();
        out :: ToNetfront();
        src -> CheckIPHeader() -> DecIPTTL() -> out;
    """


def _dpi(**kw) -> str:
    return """
        src :: FromNetfront();
        matched :: ToNetfront();
        clean :: ToNetfront();
        inspect :: DPI(attack-signature);
        src -> inspect;
        inspect[0] -> matched;
        inspect[1] -> clean;
    """


def _nat(module_addr: str = DEFAULT_MODULE_ADDR, **kw) -> str:
    # Classic masquerading NAT: source rewritten to the NAT's address
    # with an allocated port; the destination is untouched (passthrough).
    return """
        src :: FromNetfront();
        out :: ToNetfront();
        src -> IPRewriter(pattern %s 1024-65535 - - 0 0) -> out;
    """ % (module_addr,)


def _transparent_proxy(proxy_addr: str = DEFAULT_PROXY_ADDR, **kw) -> str:
    return """
        src :: FromNetfront();
        out :: ToNetfront();
        src -> TransparentProxy(%s, 3128) -> out;
    """ % (proxy_addr,)


def _flow_meter(client_addr: str = DEFAULT_CLIENT_ADDR, **kw) -> str:
    return """
        src :: FromNetfront();
        out :: ToNetfront();
        src -> FlowMeter()
            -> IPRewriter(pattern - - %s - 0 0) -> out;
    """ % (client_addr,)


def _rate_limiter(client_addr: str = DEFAULT_CLIENT_ADDR, **kw) -> str:
    return """
        src :: FromNetfront();
        out :: ToNetfront();
        src -> RateLimiter(1000, 2000)
            -> IPRewriter(pattern - - %s - 0 0) -> out;
    """ % (client_addr,)


def _firewall(client_addr: str = DEFAULT_CLIENT_ADDR, **kw) -> str:
    # A personalized inbound firewall: filter, then forward to the
    # requester's registered address (the MAWI use case of Section 6).
    return """
        src :: FromNetfront();
        out :: ToNetfront();
        src -> IPFilter(allow tcp, allow udp)
            -> IPRewriter(pattern - - %s - 0 0) -> out;
    """ % (client_addr,)


def _tunnel(**kw) -> str:
    # Tunnel exit: the inner destination only appears at decap time.
    return """
        src :: FromNetfront();
        out :: ToNetfront();
        src -> IPDecap() -> out;
    """


def _multicast(destinations: Tuple[str, ...] = DEFAULT_MULTICAST,
               **kw) -> str:
    return """
        src :: FromNetfront();
        out :: ToNetfront();
        src -> Multicast(%s) -> out;
    """ % (", ".join(destinations),)


def _dns_server(replicas: Tuple[str, ...] = DEFAULT_REPLICAS, **kw) -> str:
    return """
        src :: FromNetfront();
        out :: ToNetfront();
        src -> GeoDNSServer(%s) -> out;
    """ % (", ".join(replicas),)


def _reverse_proxy(origin_addr: str = DEFAULT_ORIGIN_ADDR,
                   origin_port="80", **kw) -> str:
    return """
        from_clients :: FromNetfront();
        from_origin :: FromNetfront();
        to_origin :: ToNetfront();
        to_clients :: ToNetfront();
        rp :: ReverseProxy(%s, %s);
        from_clients -> rp;
        from_origin -> [1]rp;
        rp[0] -> to_clients;
        rp[1] -> to_origin;
    """ % (origin_addr, origin_port)


def _explicit_proxy(module_addr: str = DEFAULT_MODULE_ADDR, **kw) -> str:
    return """
        src :: FromNetfront();
        out :: ToNetfront();
        src -> ExplicitProxy(%s) -> out;
    """ % (module_addr,)


def _x86_vm(image: str = "generic", **kw) -> str:
    return """
        src :: FromNetfront();
        out :: ToNetfront();
        src -> X86VM(%s) -> out;
    """ % (image,)


_CATALOG: Dict[str, Callable[..., str]] = {
    "ip_router": _ip_router,
    "dpi": _dpi,
    "nat": _nat,
    "transparent_proxy": _transparent_proxy,
    "flow_meter": _flow_meter,
    "rate_limiter": _rate_limiter,
    "firewall": _firewall,
    "tunnel": _tunnel,
    "multicast": _multicast,
    "dns_server": _dns_server,
    "reverse_proxy": _reverse_proxy,
    "x86_vm": _x86_vm,
}

#: The twelve Table 1 rows, in the paper's order.
TABLE1_FUNCTIONALITIES = (
    "ip_router",
    "dpi",
    "nat",
    "transparent_proxy",
    "flow_meter",
    "rate_limiter",
    "firewall",
    "tunnel",
    "multicast",
    "dns_server",
    "reverse_proxy",
    "x86_vm",
)

#: Stock modules the prototype controller offers (Section 4.1).
STOCK_MODULES: Dict[str, Callable[..., str]] = {
    "reverse-proxy": _reverse_proxy,
    "explicit-proxy": _explicit_proxy,
    "geo-dns": _dns_server,
    "x86-vm": _x86_vm,
}


def catalog_config(name: str, **params) -> ClickConfig:
    """Build the canonical configuration for a Table 1 functionality."""
    try:
        builder = _CATALOG[name]
    except KeyError:
        raise ConfigError("unknown catalog functionality %r" % (name,))
    return parse_catalog_source(builder(**params))


def catalog_source(name: str, **params) -> str:
    """The canonical configuration as Click source text."""
    try:
        builder = _CATALOG[name]
    except KeyError:
        raise ConfigError("unknown catalog functionality %r" % (name,))
    return builder(**params)


def stock_module_config(name: str, *params: str) -> ClickConfig:
    """Build a stock processing module's configuration."""
    try:
        builder = STOCK_MODULES[name]
    except KeyError:
        raise ConfigError("unknown stock module %r" % (name,))
    return parse_catalog_source(builder(*params))
