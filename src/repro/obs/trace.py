"""Nested tracing spans with wall-clock and simulated-clock timestamps.

A :class:`Tracer` produces :class:`Span` objects used as context
managers::

    with tracer.span("admit", client_id="mobile1") as span:
        with tracer.span("compile"):
            ...
        span.set("accepted", True)

Spans nest by runtime containment: a span opened while another is
active becomes its child, so the admission path produces one ``admit``
root with ``compile`` / ``security`` / ``graft`` / ``check`` children.
Each span records wall-clock start/end (``time.perf_counter``) and,
when the tracer was given a ``sim_clock`` callable, the simulated time
as well -- the platform experiments live on a simulated clock, and
figures are plotted against it.

A tracer built with ``enabled=False`` hands out one shared no-op span,
so instrumented code pays a single method call per span and never
branches on the enabled flag.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class _NullSpan:
    """Shared no-op span handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, key, value):
        pass


NULL_SPAN = _NullSpan()


class Span:
    """One timed, attributed, possibly nested unit of work."""

    __slots__ = (
        "name", "attrs", "children",
        "start_wall", "end_wall", "start_sim", "end_sim",
        "error", "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.children: List["Span"] = []
        self.start_wall: Optional[float] = None
        self.end_wall: Optional[float] = None
        self.start_sim: Optional[float] = None
        self.end_sim: Optional[float] = None
        self.error: Optional[str] = None
        self._tracer = tracer

    # -- context manager ---------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.error = "%s: %s" % (type(exc).__name__, exc)
        self._tracer._exit(self)
        return False

    # -- attributes --------------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute on the span."""
        self.attrs[key] = value

    # -- derived -----------------------------------------------------------
    @property
    def duration(self) -> float:
        """Wall-clock seconds between enter and exit (0 while open)."""
        if self.start_wall is None or self.end_wall is None:
            return 0.0
        return self.end_wall - self.start_wall

    @property
    def sim_duration(self) -> Optional[float]:
        """Simulated seconds spanned, when a sim clock was configured."""
        if self.start_sim is None or self.end_sim is None:
            return None
        return self.end_sim - self.start_sim

    def to_dict(self) -> dict:
        """A stable-keyed, JSON-serializable view of the span tree."""
        out = {
            "name": self.name,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
            "duration_seconds": self.duration,
            "children": [child.to_dict() for child in self.children],
        }
        if self.sim_duration is not None:
            out["sim_start"] = self.start_sim
            out["sim_duration_seconds"] = self.sim_duration
        if self.error is not None:
            out["error"] = self.error
        return out

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for a descendant span by name."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:
        return "Span(%s, %.6fs, %d children)" % (
            self.name, self.duration, len(self.children),
        )


class Tracer:
    """Builds nested spans; finished roots accumulate in :attr:`roots`.

    ``sim_clock`` is any zero-argument callable returning the current
    simulated time (``lambda: loop.now``, ``lambda: runtime.now``); it
    may also be (re)assigned after construction, before spans open.
    """

    def __init__(
        self,
        enabled: bool = True,
        wall_clock: Callable[[], float] = time.perf_counter,
        sim_clock: Optional[Callable[[], float]] = None,
    ):
        self.enabled = enabled
        self.wall_clock = wall_clock
        self.sim_clock = sim_clock
        #: Finished top-level spans, oldest first.
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attrs: Any):
        """A new span; use as a context manager."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    @property
    def active(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def clear(self) -> None:
        """Drop finished roots (open spans are unaffected)."""
        self.roots = []

    def snapshot(self) -> List[dict]:
        """Finished root spans as stable-keyed dictionaries."""
        return [span.to_dict() for span in self.roots]

    # -- span callbacks ----------------------------------------------------
    def _enter(self, span: Span) -> None:
        span.start_wall = self.wall_clock()
        if self.sim_clock is not None:
            span.start_sim = self.sim_clock()
        self._stack.append(span)

    def _exit(self, span: Span) -> None:
        span.end_wall = self.wall_clock()
        if self.sim_clock is not None:
            span.end_sim = self.sim_clock()
        # Tolerate out-of-order exits (a caller leaking a span) by
        # popping back to the exiting span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
