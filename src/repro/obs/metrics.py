"""Metric primitives and the registry (the ``repro.obs`` data model).

Three metric kinds, deliberately mirroring the Prometheus vocabulary so
the text exporter in :mod:`repro.obs.export` is a direct serialization:

* :class:`Counter` -- a monotonically increasing count (packets seen,
  cache hits, VMs booted),
* :class:`Gauge`   -- a value that goes up and down (queue depth,
  resident VMs, per-platform density),
* :class:`Histogram` -- fixed-bucket distribution of observations
  (admission latency, boot time, egress latency).

Metrics are created through a :class:`MetricsRegistry`.  Creation is
idempotent: asking twice for the same name returns the same family, so
independent components (several runtimes, several platforms) can share
one registry without coordination.

**Disabled mode.**  A registry built with ``enabled=False`` hands out a
single shared :data:`NULL_METRIC` whose mutators are empty methods.  The
hot path of instrumented code therefore costs one attribute lookup and
one no-op call -- no branches, no allocation -- and code never needs
``if metrics is not None`` guards.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_METRIC",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets, in seconds (latency-shaped workloads).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class _NullMetric:
    """Shared sink for disabled registries: every operation is a no-op.

    ``labels(...)`` returns the same instance, so pre-binding code like
    ``registry.counter(...).labels(name)`` works identically whether the
    registry is enabled or not.
    """

    __slots__ = ()

    def inc(self, amount=1):
        pass

    def dec(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    def labels(self, *values):
        return self

    @property
    def value(self):
        return 0


#: The one instance every disabled registry hands out.
NULL_METRIC = _NullMetric()


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def snapshot_value(self):
        return self.value


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def dec(self, amount=1):
        self.value -= amount

    def snapshot_value(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram of float observations.

    ``counts[i]`` holds observations that fell in
    ``(bounds[i-1], bounds[i]]``; the final slot is the overflow
    (``+Inf``) bucket.  :meth:`cumulative` produces the Prometheus-style
    running totals.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value):
        # bisect_left keeps bounds inclusive (Prometheus ``le``): an
        # observation equal to a bound lands in that bound's bucket.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def observe_count(self, value, n):
        """Record ``n`` identical observations with one bucket search.

        Deferred-accounting instrumentation (see
        ``repro.click.runtime``) batches repeated values this way.
        """
        self.counts[bisect_left(self.bounds, value)] += n
        self.sum += value * n
        self.count += n

    def cumulative(self) -> List[Tuple[float, int]]:
        """``[(upper_bound, running_count), ...]``, ending at +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    def snapshot_value(self):
        return {
            "buckets": {
                _format_bound(bound): total
                for bound, total in self.cumulative()
            },
            "count": self.count,
            "sum": self.sum,
        }


def _format_bound(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    text = repr(bound)
    return text


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric plus its labelled children.

    An unlabelled family still has exactly one child (at the empty label
    tuple); :class:`MetricsRegistry` returns that child directly so the
    common case reads ``registry.counter("x").inc()``.
    """

    __slots__ = ("name", "kind", "help", "labelnames", "children", "_args")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Tuple[str, ...] = (),
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.children: Dict[Tuple[str, ...], object] = {}
        self._args = (buckets,) if kind == "histogram" else ()

    def labels(self, *values) -> object:
        """The child metric for one label-value tuple (created lazily)."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                "metric %r takes %d label(s) %r, got %r"
                % (self.name, len(self.labelnames), self.labelnames, values)
            )
        key = tuple(str(v) for v in values)
        child = self.children.get(key)
        if child is None:
            if self.kind == "histogram":
                buckets = self._args[0]
                child = Histogram(
                    buckets if buckets is not None else DEFAULT_BUCKETS
                )
            else:
                child = _KINDS[self.kind]()
            self.children[key] = child
        return child

    def samples(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        """``(label_values, child)`` pairs in insertion order."""
        return self.children.items()


class MetricsRegistry:
    """Creates, owns, and snapshots metric families.

    >>> reg = MetricsRegistry()
    >>> reg.counter("requests_total", "Requests seen").inc()
    >>> reg.counter("requests_total").value
    1
    >>> MetricsRegistry(enabled=False).counter("x") is NULL_METRIC
    True
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families: "Dict[str, MetricFamily]" = {}
        self._collectors: List[Callable[[], None]] = []
        self._keyed_collectors: Dict[object, Callable[[], None]] = {}

    # -- creation ----------------------------------------------------------
    def counter(self, name, help="", labels=()):
        return self._get_or_create(name, "counter", help, labels)

    def gauge(self, name, help="", labels=()):
        return self._get_or_create(name, "gauge", help, labels)

    def histogram(self, name, help="", labels=(), buckets=None):
        return self._get_or_create(
            name, "histogram", help, labels, buckets=buckets
        )

    def _get_or_create(self, name, kind, help, labels, buckets=None):
        if not self.enabled:
            return NULL_METRIC
        labels = tuple(labels)
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(
                name, kind, help=help, labelnames=labels,
                buckets=tuple(buckets) if buckets is not None else None,
            )
            self._families[name] = family
        elif family.kind != kind or family.labelnames != labels:
            raise ValueError(
                "metric %r re-registered as %s%r; it is a %s%r"
                % (name, kind, labels, family.kind, family.labelnames)
            )
        if not labels:
            return family.labels()
        return family

    # -- merging -----------------------------------------------------------
    def merge(self, *others: "MetricsRegistry") -> "MetricsRegistry":
        """Fold other registries' metrics into this one; returns self.

        The merge semantics are what a sharded dataplane needs to
        combine per-worker registries into one coherent view
        (:mod:`repro.click.sharding`):

        * **counters** sum,
        * **histograms** sum bucket-by-bucket (bucket bounds must
          match, otherwise ``ValueError``), plus ``sum`` and ``count``,
        * **gauges** take the other registry's value (last write wins,
          in merge argument order),
        * **keyed collectors** union (the other registry's collector
          replaces any of this registry's under the same key), so a
          merged view keeps sampling live gauges; unkeyed collectors
          are appended.

        Each other registry's collector pass runs first, so sampled
        gauges are current as of the merge.  A family whose name is
        already registered here with a different kind or label set
        raises ``ValueError`` (same rule as re-registration).
        Disabled registries merge as empty; merging *into* a disabled
        registry is a no-op.
        """
        if not self.enabled:
            return self
        for other in others:
            if other is self or not other.enabled:
                continue
            for family in other.families():
                buckets = (
                    family._args[0] if family.kind == "histogram" else None
                )
                mine = self._families.get(family.name)
                if mine is None:
                    mine = MetricFamily(
                        family.name, family.kind, help=family.help,
                        labelnames=family.labelnames, buckets=buckets,
                    )
                    self._families[family.name] = mine
                elif (mine.kind != family.kind
                        or mine.labelnames != family.labelnames):
                    raise ValueError(
                        "cannot merge metric %r: %s%r into %s%r"
                        % (family.name, family.kind, family.labelnames,
                           mine.kind, mine.labelnames)
                    )
                for label_values, child in family.samples():
                    target = mine.labels(*label_values)
                    if family.kind == "counter":
                        target.value += child.value
                    elif family.kind == "gauge":
                        target.value = child.value
                    else:
                        if target.bounds != child.bounds:
                            raise ValueError(
                                "cannot merge histogram %r: bucket "
                                "bounds differ" % (family.name,)
                            )
                        for index, count in enumerate(child.counts):
                            target.counts[index] += count
                        target.sum += child.sum
                        target.count += child.count
            self._collectors.extend(other._collectors)
            self._keyed_collectors.update(other._keyed_collectors)
        return self

    # -- transport ---------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle support: ship values, drop collector callbacks.

        Collectors are closures over live objects (runtimes, platforms)
        and cannot cross a process boundary; running one last collector
        pass first means sampled gauges are current as of pickling.
        Worker processes in the sharded dataplane rely on this to send
        their registries back for merging.
        """
        if self.enabled:
            self.families()
        return {"enabled": self.enabled, "_families": self._families,
                "_collectors": [], "_keyed_collectors": {}}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- collection --------------------------------------------------------
    def register_collector(
        self, collector: Callable[[], None], key: object = None,
    ) -> None:
        """Register a callback run before every snapshot/export.

        Collectors pull state that is cheaper to sample than to track
        (queue depths, resident-VM counts) into gauges at read time.
        A non-None ``key`` makes registration idempotent: a later
        collector with the same key replaces the earlier one (used when
        a component is re-provisioned against the same registry).
        """
        if not self.enabled:
            return
        if key is not None:
            self._keyed_collectors[key] = collector
        else:
            self._collectors.append(collector)

    def families(self) -> List[MetricFamily]:
        """All families, name-sorted, after running collectors."""
        for collector in self._collectors:
            collector()
        for collector in self._keyed_collectors.values():
            collector()
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name`` (no collector pass)."""
        return self._families.get(name)

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict:
        """A stable-keyed, JSON-serializable view of every metric."""
        out: Dict[str, dict] = {}
        for family in self.families():
            values = {
                _label_key(family.labelnames, label_values):
                    child.snapshot_value()
                for label_values, child in family.samples()
            }
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "values": {k: values[k] for k in sorted(values)},
            }
        return out


def _label_key(labelnames: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    return ",".join(
        "%s=%s" % (n, v) for n, v in zip(labelnames, values)
    )
