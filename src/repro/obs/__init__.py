"""Unified observability: metrics, tracing, and exporters.

SymNet-style static analysis (:mod:`repro.symexec`) tells the operator
what a configuration *may* do before it is admitted; this package tells
them what the system *is* doing afterwards.  It has three parts:

* :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms, with a disabled mode whose hot
  path is a no-op attribute check,
* :mod:`repro.obs.trace` -- a :class:`Tracer` producing nested
  context-manager spans with wall-clock and simulated-clock timestamps,
* :mod:`repro.obs.export` -- Prometheus text, stable-keyed JSON
  snapshot, and aligned-table exporters.

The instrumented layers (the Click runtime, the controller admission
path, the platform simulator) all accept one :class:`Observability`
bundle::

    from repro.obs import Observability

    obs = Observability()
    controller = Controller(network, obs=obs)
    runtime = Runtime(config, obs=obs)
    print(obs.render_table())

Passing no bundle (the default everywhere) keeps the pre-observability
fast paths byte-for-byte identical; passing a disabled bundle costs one
no-op call per instrumentation site.  See ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NULL_METRIC,
)
from repro.obs.trace import NULL_SPAN, Span, Tracer
from repro.obs import export as _export

__all__ = [
    "Observability",
    "NULL_OBSERVABILITY",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "NULL_METRIC",
    "NULL_SPAN",
    "DEFAULT_BUCKETS",
]


class Observability:
    """One metrics registry plus one tracer, passed around as a unit."""

    __slots__ = ("metrics", "tracer", "enabled")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        enabled: bool = True,
    ):
        self.enabled = enabled
        self.metrics = (
            metrics if metrics is not None
            else MetricsRegistry(enabled=enabled)
        )
        self.tracer = (
            tracer if tracer is not None else Tracer(enabled=enabled)
        )

    # -- export shortcuts --------------------------------------------------
    def snapshot(self) -> dict:
        """Stable-keyed dict of all metrics and finished span trees."""
        return _export.snapshot(self.metrics, self.tracer)

    def snapshot_json(self, indent: Optional[int] = None) -> str:
        return _export.snapshot_json(
            self.metrics, self.tracer, indent=indent
        )

    def to_prometheus(self) -> str:
        return _export.to_prometheus(self.metrics)

    def render_table(self, title: str = "observability snapshot") -> str:
        return _export.render_table(
            self.metrics, self.tracer, title=title
        )


#: Shared disabled bundle: every metric is :data:`NULL_METRIC`, every
#: span is :data:`NULL_SPAN`.  Instrumented classes fall back to this
#: when given ``obs=None`` so their code never branches on presence.
NULL_OBSERVABILITY = Observability(enabled=False)
