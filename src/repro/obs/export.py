"""Exporters: Prometheus text, JSON snapshot, human-readable table.

Three views over one :class:`~repro.obs.metrics.MetricsRegistry` (plus,
for the JSON snapshot, an optional :class:`~repro.obs.trace.Tracer`):

* :func:`to_prometheus` -- the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` samples,
  histogram ``_bucket``/``_sum``/``_count`` expansion),
* :func:`snapshot` / :func:`snapshot_json` -- a stable-keyed dictionary
  of every metric and every finished span tree,
* :func:`render_table` -- an aligned text table following the
  ``benchmarks/_report.py`` conventions (``=== title ===`` banner,
  space-aligned columns).

:func:`parse_prometheus` is a minimal parser for the text format, used
by the round-trip tests and by anything that wants to scrape a dump.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry, _format_bound
from repro.obs.trace import Tracer

__all__ = [
    "to_prometheus",
    "parse_prometheus",
    "snapshot",
    "snapshot_json",
    "render_table",
]


# -- Prometheus text format -----------------------------------------------
def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )

def _labels_text(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        '%s="%s"' % (n, _escape_label_value(v))
        for n, v in zip(names, values)
    )
    return "{%s}" % inner


def _format_value(value) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value == int(value) \
            and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Serialize every metric in the Prometheus text format."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append("# HELP %s %s" % (family.name, family.help))
        lines.append("# TYPE %s %s" % (family.name, family.kind))
        for label_values, child in family.samples():
            labels = _labels_text(family.labelnames, label_values)
            if isinstance(child, Histogram):
                for bound, total in child.cumulative():
                    bucket_labels = _labels_text(
                        tuple(family.labelnames) + ("le",),
                        tuple(label_values) + (_format_bound(bound),),
                    )
                    lines.append(
                        "%s_bucket%s %s"
                        % (family.name, bucket_labels, total)
                    )
                lines.append(
                    "%s_sum%s %s"
                    % (family.name, labels, _format_value(child.sum))
                )
                lines.append(
                    "%s_count%s %s" % (family.name, labels, child.count)
                )
            else:
                lines.append(
                    "%s%s %s"
                    % (family.name, labels, _format_value(child.value))
                )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse Prometheus text into ``{metric: {labelstr: value}}``.

    The label string is the raw ``{...}`` segment (empty for unlabelled
    samples).  Comment and blank lines are skipped.  This is the subset
    of the format :func:`to_prometheus` emits -- enough for round-trip
    tests and ad-hoc scraping, not a general scraper.
    """
    out: Dict[str, Dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError("unparseable sample line: %r" % (line,))
        if "{" in name_part:
            name, _, rest = name_part.partition("{")
            labels = "{" + rest
        else:
            name, labels = name_part, ""
        value = float(value_part)
        out.setdefault(name, {})[labels] = value
    return out


# -- JSON snapshot ---------------------------------------------------------
def snapshot(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> dict:
    """One stable-keyed dictionary of metrics and finished spans."""
    out: dict = {}
    if registry is not None:
        out["metrics"] = registry.snapshot()
    if tracer is not None:
        out["spans"] = tracer.snapshot()
    return out


def snapshot_json(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    indent: Optional[int] = None,
) -> str:
    """:func:`snapshot` serialized with sorted keys (stable output)."""
    return json.dumps(
        snapshot(registry, tracer), sort_keys=True, indent=indent,
        default=str,
    )


# -- human-readable table --------------------------------------------------
def _aligned(headers: Sequence[str],
             rows: Iterable[Sequence[object]]) -> List[str]:
    """Space-aligned rows, `benchmarks/_report.py` style."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join("%-*s" % (w, h) for w, h in zip(widths, headers))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append(
            "  ".join("%-*s" % (w, c) for w, c in zip(widths, row))
        )
    return lines


def render_table(
    registry: MetricsRegistry,
    tracer: Optional[Tracer] = None,
    title: str = "observability snapshot",
) -> str:
    """Render every metric (and span roots) as aligned text tables."""
    rows: List[Tuple[str, str, str, str]] = []
    for family in registry.families():
        for label_values, child in family.samples():
            labels = ",".join(
                "%s=%s" % (n, v)
                for n, v in zip(family.labelnames, label_values)
            )
            if isinstance(child, Histogram):
                mean = child.sum / child.count if child.count else 0.0
                value = "n=%d mean=%.6g sum=%.6g" % (
                    child.count, mean, child.sum,
                )
            else:
                value = _format_value(child.value)
            rows.append((family.name, labels, family.kind, value))
    lines = ["=== %s ===" % title]
    lines.extend(
        _aligned(("metric", "labels", "kind", "value"), rows)
    )
    if tracer is not None and tracer.roots:
        lines.append("")
        lines.append("=== spans ===")
        for root in tracer.roots:
            lines.extend(_span_lines(root, 0))
    return "\n".join(lines)


def _span_lines(span, depth: int) -> List[str]:
    attrs = " ".join(
        "%s=%s" % (k, span.attrs[k]) for k in sorted(span.attrs)
    )
    line = "%s%s %.6fs%s" % (
        "  " * depth, span.name, span.duration,
        (" [%s]" % attrs) if attrs else "",
    )
    lines = [line]
    for child in span.children:
        lines.extend(_span_lines(child, depth + 1))
    return lines
