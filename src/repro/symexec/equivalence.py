"""Checking that two configurations are symbolically equivalent.

Section 3 of the paper decides whether hosting a content provider's
server inside the operator's network is safe by running symbolic
execution on both placements: "Running symbolic execution on the
platform setup yields exactly the same symbolic packet, implying the
two configurations are equivalent."

Equivalence here means: the multisets of delivered symbolic flows
match, where each flow is reduced to a placement-independent
*signature*:

* per header field, either an **aliasing class** ("this field ends
  bound to the variable that entered as ``ip_src``") or a **fresh
  class** (rewritten; fresh variables that are mutually aliased share
  a class index) together with its final domain,
* node names do not participate (the two placements route through
  different boxes by construction).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common import fields as F
from repro.symexec.engine import Exploration, SymFlow
from repro.symexec.reachability import domain_at

#: Fields compared by default (annotations are placement artifacts).
DEFAULT_FIELDS = F.HEADER_FIELDS


def canonical_flow(flow: SymFlow) -> Tuple:
    """A process-independent, hashable rendering of one flow.

    Variable uids come from a process-global counter, so two runs of
    the *same* exploration (e.g. seed mode vs. the fast path in a
    differential test) bind different absolute uids.  This renames
    every uid in first-seen order -- scanning the trace snapshots hop
    by hop, then the write log -- which is stable across runs because
    both modes explore paths in the same order.  Two flows with equal
    canonical forms have byte-for-byte identical traces, write logs,
    final domains, and liveness up to uid renaming.
    """
    rename: Dict[int, int] = {}

    def canon(uid: Optional[int]) -> Optional[int]:
        if uid is None:
            return None
        if uid not in rename:
            rename[uid] = len(rename)
        return rename[uid]

    trace = tuple(
        (
            entry.node,
            entry.port,
            tuple(
                (name, canon(uid))
                for name, uid in entry.snapshot.items()
            ),
        )
        for entry in flow.trace
    )
    writes = tuple(
        (w.at, w.node, w.field, canon(w.old_uid), canon(w.new_uid))
        for w in flow.writes
    )
    domains = tuple(sorted(
        (canon(uid), value.intervals)
        for uid, value in flow.domains.items()
    ))
    return (trace, writes, domains, flow.alive)


def flow_signature(
    flow: SymFlow,
    fields: Tuple[str, ...] = DEFAULT_FIELDS,
) -> Tuple:
    """A placement-independent summary of one delivered flow."""
    ingress = flow.trace[0].snapshot
    egress = flow.trace[-1].snapshot
    ingress_by_uid = {}
    for name in fields:
        uid = ingress.get(name)
        if uid is not None and uid not in ingress_by_uid:
            ingress_by_uid[uid] = name
    fresh_classes: Dict[int, int] = {}
    parts: List[Tuple] = []
    for name in fields:
        uid = egress.get(name)
        if uid is None:
            parts.append((name, "absent"))
            continue
        domain = domain_at(flow, egress, name)
        domain_key = domain.intervals if domain is not None else None
        origin = ingress_by_uid.get(uid)
        if origin is not None:
            parts.append((name, "alias", origin, domain_key))
        else:
            class_index = fresh_classes.setdefault(
                uid, len(fresh_classes)
            )
            parts.append((name, "fresh", class_index, domain_key))
    return tuple(parts)


@dataclass
class EquivalenceResult:
    """Outcome of comparing two explorations."""

    equivalent: bool
    #: Signatures present in A but not B (with multiplicities).
    only_in_a: List[Tuple] = field(default_factory=list)
    only_in_b: List[Tuple] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.equivalent


def explorations_equivalent(
    a: Exploration,
    b: Exploration,
    fields: Tuple[str, ...] = DEFAULT_FIELDS,
) -> EquivalenceResult:
    """Compare the delivered flows of two explorations."""
    sig_a = Counter(flow_signature(f, fields) for f in a.delivered)
    sig_b = Counter(flow_signature(f, fields) for f in b.delivered)
    if sig_a == sig_b:
        return EquivalenceResult(equivalent=True)
    only_a = list((sig_a - sig_b).elements())
    only_b = list((sig_b - sig_a).elements())
    return EquivalenceResult(
        equivalent=False, only_in_a=only_a, only_in_b=only_b
    )


def configs_equivalent(
    source_a: str,
    source_b: str,
    fields: Tuple[str, ...] = DEFAULT_FIELDS,
    inject_a: Optional[str] = None,
    inject_b: Optional[str] = None,
) -> EquivalenceResult:
    """Compare two Click configurations end to end.

    Each is explored from its (single) FromNetfront source with an
    unconstrained symbolic packet; the delivered symbolic packets must
    match up to placement.
    """
    from repro.click import parse_config
    from repro.symexec.engine import SymbolicEngine, SymGraph

    explorations = []
    for source, inject in ((source_a, inject_a), (source_b, inject_b)):
        config = parse_config(source)
        engine = SymbolicEngine(SymGraph.from_click(config))
        entry = inject or config.sources()[0]
        explorations.append(engine.inject(entry))
    return explorations_equivalent(*explorations, fields=fields)
