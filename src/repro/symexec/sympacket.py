"""Symbolic packets and symbolic variables.

A symbolic packet represents a *set* of packets: each header field maps
to a :class:`SymVar`.  A variable is *free* when its domain is its whole
universe and *bound* otherwise; binding a field to another field's
variable (``p[ip_dst] = p[ip_src]``) makes both map to the same
:class:`SymVar` object, which is how the engine later proves facts like
"the response destination equals the request source" (Section 4.4) --
variable identity is the aliasing proof.

Domains are per-flow (two branches constrain the same variable
differently), so they live in the flow's constraint store, not on the
variable itself; the variable only knows its universe.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional

from repro.common import fields as F
from repro.common.intervals import IntervalSet
from repro.symexec.tuning import OPT

#: Universe of each canonical field (mirrors the policy language).
FIELD_UNIVERSES: Dict[str, IntervalSet] = {
    F.IP_SRC: IntervalSet.from_interval(0, (1 << 32) - 1),
    F.IP_DST: IntervalSet.from_interval(0, (1 << 32) - 1),
    F.IP_PROTO: IntervalSet.from_interval(0, 255),
    F.IP_TTL: IntervalSet.from_interval(0, 255),
    F.IP_TOS: IntervalSet.from_interval(0, 255),
    F.TP_SRC: IntervalSet.from_interval(0, 65535),
    F.TP_DST: IntervalSet.from_interval(0, 65535),
    F.TCP_FLAGS: IntervalSet.from_interval(0, 255),
    # The payload is opaque: we only track identity (was it rewritten?),
    # so it gets a token universe.
    F.PAYLOAD: IntervalSet.from_interval(0, (1 << 62) - 1),
}

#: Universe used for annotation-style fields (firewall tag, paint...).
DEFAULT_UNIVERSE = IntervalSet.from_interval(0, (1 << 32) - 1)


class SymVar:
    """A symbolic variable with a fixed universe.

    Identity (the object itself) is meaningful: two fields bound to the
    same ``SymVar`` are provably equal.
    """

    __slots__ = ("uid", "label", "universe")

    _ids = itertools.count(1)

    def __init__(self, label: str, universe: Optional[IntervalSet] = None):
        self.uid = next(SymVar._ids)
        self.label = label
        self.universe = universe if universe is not None else DEFAULT_UNIVERSE

    def __repr__(self) -> str:
        return "SymVar(%s#%d)" % (self.label, self.uid)


class VarFactory:
    """Creates fresh variables with readable, per-run labels."""

    def __init__(self, prefix: str = "v"):
        self.prefix = prefix
        self._counter = itertools.count(1)

    def fresh(
        self, hint: str, universe: Optional[IntervalSet] = None
    ) -> SymVar:
        """A brand-new variable (free until constrained)."""
        return SymVar(
            "%s%d_%s" % (self.prefix, next(self._counter), hint), universe
        )

    def fresh_for_field(self, field: str) -> SymVar:
        """A fresh variable with the universe canonical for ``field``."""
        return self.fresh(field, FIELD_UNIVERSES.get(field))


class SymPacket:
    """Mapping from field names to symbolic variables.

    Instances are mutated by element models via :meth:`bind`; flows copy
    them before branching (:meth:`copy` is shallow over variables, which
    are immutable).

    With the fast path on (:data:`repro.symexec.tuning.OPT`), copies
    share the binding dict copy-on-write -- a fork only pays for the
    dict when one side later rebinds a field -- and :meth:`snapshot`
    caches its field->uid dict until the next binding change.
    """

    __slots__ = ("vars", "encap_stack", "_shared", "_snapshot")

    def __init__(self, variables: Optional[Dict[str, SymVar]] = None):
        self.vars: Dict[str, SymVar] = dict(variables or {})
        self.encap_stack: List[Dict[str, SymVar]] = []
        #: True while ``vars`` may be shared with a copy (materialize
        #: before mutating).
        self._shared = False
        #: Cached :meth:`snapshot` dict (None = recompute).
        self._snapshot: Optional[Dict[str, int]] = None

    @classmethod
    def fresh(
        cls,
        factory: VarFactory,
        fields: Iterable[str] = F.HEADER_FIELDS,
    ) -> "SymPacket":
        """A fully-unconstrained symbolic packet over ``fields``."""
        return cls(
            {field: factory.fresh_for_field(field) for field in fields}
        )

    def var(self, field: str) -> Optional[SymVar]:
        """The variable currently bound to ``field`` (None if absent)."""
        return self.vars.get(field)

    def bind(self, field: str, variable: SymVar) -> None:
        """Bind ``field`` to ``variable`` (aliasing when shared)."""
        if self._shared:
            self.vars = dict(self.vars)
            self._shared = False
            OPT.cow_copies += 1
        self.vars[field] = variable
        self._snapshot = None

    def fields(self) -> List[str]:
        """All fields carried by this packet."""
        return list(self.vars)

    def copy(self) -> "SymPacket":
        clone = SymPacket.__new__(SymPacket)
        if OPT.enabled:
            # Copy-on-write: share the binding dict (and the cached
            # snapshot, which only depends on it) until a bind().
            clone.vars = self.vars
            clone._shared = True
            self._shared = True
            clone._snapshot = self._snapshot
        else:
            clone.vars = dict(self.vars)
            clone._shared = False
            clone._snapshot = None
        clone.encap_stack = [dict(layer) for layer in self.encap_stack]
        return clone

    # -- tunneling ---------------------------------------------------------
    def encapsulate(self, outer: Dict[str, SymVar]) -> None:
        """Push current bindings, then install the outer header's."""
        self.encap_stack.append(dict(self.vars))
        if self._shared:
            self.vars = dict(self.vars)
            self._shared = False
            OPT.cow_copies += 1
        for field, variable in outer.items():
            self.vars[field] = variable
        self._snapshot = None

    def decapsulate(self) -> bool:
        """Restore the saved inner header; False when nothing to pop."""
        if not self.encap_stack:
            return False
        # Popped layers are private copies (pushed and cloned as fresh
        # dicts), so ownership transfers to this packet.
        self.vars = self.encap_stack.pop()
        self._shared = False
        self._snapshot = None
        return True

    @property
    def encap_depth(self) -> int:
        """Number of encapsulation layers currently tracked."""
        return len(self.encap_stack)

    def snapshot(self) -> Dict[str, int]:
        """field -> variable uid, used for invariant checking.

        With the fast path on the dict is cached (and shared between
        trace entries taken under the same bindings); treat it as
        read-only.  Seed mode rebuilds it per call, as before.
        """
        if not OPT.enabled:
            return {field: var.uid for field, var in self.vars.items()}
        snap = self._snapshot
        if snap is None:
            snap = {field: var.uid for field, var in self.vars.items()}
            self._snapshot = snap
        return snap

    def __repr__(self) -> str:
        inner = ", ".join(
            "%s=%s" % (f, v.label) for f, v in sorted(self.vars.items())
        )
        return "SymPacket(%s)" % inner
