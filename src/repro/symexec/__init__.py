"""SYMNET-style symbolic execution for networks (Section 3).

The paper treats the network as a distributed program and the packets it
carries as that program's variables.  This package implements the static
analysis that idea requires:

* :mod:`repro.symexec.sympacket` -- symbolic packets whose header fields
  are free or bound symbolic variables with interval domains,
* :mod:`repro.symexec.models` -- loop-free abstract models of every
  Click element (state pushed into the flow, no dynamic allocation --
  the three properties Section 4.3 credits for SYMNET's scalability),
* :mod:`repro.symexec.engine` -- the exploration engine that injects a
  symbolic packet at a node and tracks every flow over every path,
  splitting on branches and recording constraint/modification history,
* :mod:`repro.symexec.reachability` -- evaluation of the paper's
  ``reach`` requirements (including ``const`` invariants) against the
  exploration output,
* :mod:`repro.symexec.summaries` -- SymNet-style compositional
  summaries: per-element transfer functions, composed segment chains,
  and footprint-keyed verdict reuse for incremental re-verification.
"""

from repro.symexec.engine import (
    Exploration,
    SymbolicEngine,
    SymFlow,
    SymGraph,
    TraceEntry,
)
from repro.symexec.equivalence import (
    EquivalenceResult,
    canonical_flow,
    configs_equivalent,
    explorations_equivalent,
    flow_signature,
)
from repro.symexec.models import (
    model_for,
    models_registry,
    summarizer_for,
    summarizers_registry,
)
from repro.symexec.reachability import (
    InvariantViolation,
    ReachabilityChecker,
    ReachResult,
)
from repro.symexec.summaries import (
    UNCHANGED_SCOPE,
    ChangedScope,
    SegmentSummary,
    SummaryCache,
    VerificationCache,
)
from repro.symexec.sympacket import SymPacket, SymVar, VarFactory
from repro.symexec.tuning import (
    counters,
    optimizations_enabled,
    reset_counters,
    seed_mode,
    set_optimizations,
    stats,
)

__all__ = [
    "SymVar",
    "SymPacket",
    "VarFactory",
    "SymFlow",
    "SymGraph",
    "SymbolicEngine",
    "Exploration",
    "TraceEntry",
    "model_for",
    "EquivalenceResult",
    "canonical_flow",
    "configs_equivalent",
    "explorations_equivalent",
    "flow_signature",
    "models_registry",
    "summarizer_for",
    "summarizers_registry",
    "SummaryCache",
    "SegmentSummary",
    "VerificationCache",
    "ChangedScope",
    "UNCHANGED_SCOPE",
    "ReachabilityChecker",
    "ReachResult",
    "InvariantViolation",
    "counters",
    "optimizations_enabled",
    "reset_counters",
    "seed_mode",
    "set_optimizations",
    "stats",
]
