"""Compositional symbolic summaries and incremental re-verification.

SymNet scales network verification by *summarizing* middlebox behavior
as symbolic transfer functions instead of re-interpreting each element
on every traversal.  This module brings that idea to the repro in two
cooperating layers:

**Layer 1 -- transfer-function programs + segment composition**
(:class:`SummaryCache`).  Every element class gets a *summarizer* that
compiles one element instance into a transfer function: a closure with
the element's parsed configuration (filter rules, rewrite patterns,
constants) pre-bound, byte-for-byte equivalent to the registered model
but with zero per-call payload derivation.  Programs are cached keyed
on ``(class name, argument tuple)``, so the hundredth graft of the same
tenant config reuses the first graft's programs.  Maximal single-wired
chains of summarizable nodes -- a module's internal pipeline is the
canonical case -- are *composed* into :class:`SegmentSummary` hop
tables the engine replays without touching its worklist or the graph's
edge dict.  Composition preserves the seed engine's DFS order exactly:
each hop continues with the model's **last** output (the one the seed's
LIFO worklist would pop next) and spills earlier branches back to the
worklist at their precomputed successor.

**Layer 2 -- footprint-keyed verdict reuse** (:class:`VerificationCache`).
Every verified requirement records its *reachability footprint*: the set
of topology segments its exploration visited (module-internal vertices
map to their hosting platform).  A cached verdict is reusable while

* the topology signature is unchanged (links + address ownership),
* every routing/flow table in the footprint still has the version
  counter (PR 5's ``RoutingTable._version`` / ``FlowTable._version``)
  recorded at store time, and
* no module address moved in or out of any address range the
  requirement references.

Admitting a config into a large network then costs O(changed segments):
a trial graft at platform P bumps only P's tokens, so every requirement
whose footprint avoids P is answered from cache, and a policy edit
re-verifies only requirements that are new or whose footprint was
invalidated.  ``docs/symexec-summaries.md`` walks the algebra and the
invalidation rules; ``benchmarks/symexec_speedup_check.py
--incremental`` gates the speedup in CI.

Both layers are **exact**: they change what a verdict costs, never what
it is.  ``tests/symexec/test_summary_differential.py`` proves verdicts,
traces and write logs equal to the seed engine byte for byte, and
:func:`repro.symexec.tuning.seed_mode` bypasses both layers (the engine
and the controller re-check ``OPT.enabled`` on every use).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, NamedTuple, Optional, Tuple

from repro.common import fields as F
from repro.common.intervals import IntervalSet
from repro.symexec.engine import SymGraph
from repro.symexec.models import (
    ensure_field,
    model_for,
    register_summary,
    sequential_rules,
    set_const,
    set_fresh,
    summarizer_for,
)

__all__ = [
    "ChangedScope",
    "SegmentSummary",
    "SummaryCache",
    "UNCHANGED_SCOPE",
    "VerificationCache",
    "exploration_footprint",
    "requirement_address_ranges",
]


# ---------------------------------------------------------------------------
# Element transfer functions (the per-element summaries)
# ---------------------------------------------------------------------------
#
# A summarizer maps one configured element instance to a *program*: a
# callable with the model signature ``(ctx, node, port, flow) ->
# [(out_port, flow)]`` whose behavior is identical to the registered
# model.  Two families:
#
# * **specialized** summarizers pre-bind everything the model would
#   re-derive from the element payload per call (rule lists, rewrite
#   patterns, constants);
# * **passthrough** summarizers return the registered model itself --
#   used for elements with no payload-derived state (identity plumbing,
#   graph-dependent forks), where the model already *is* its own
#   transfer function.  Passthrough elements still matter: they make
#   their node segment-composable.


def _passthrough(class_name: str):
    model = model_for(class_name)

    def summarize(element):
        return model

    return summarize


for _cls in (
    # Identity plumbing: time, counting and queueing are not modelled.
    "FromNetfront", "FromDevice", "ToNetfront", "ToDevice",
    "CheckIPHeader", "Queue", "Unqueue", "TimedUnqueue", "RatedUnqueue",
    "BandwidthShaper", "Counter", "FlowMeter",
    # No payload-derived state (drops, graph-dependent forks, swaps).
    "Discard", "Idle", "Tee", "PaintSwitch", "DecIPTTL", "IPDecap",
    "DPI", "HTTPOptimizer", "WebCache", "GeoDNSServer", "X86VM",
    "RateLimiter", "RoundRobinSwitch", "Meter", "ICMPPingResponder",
):
    register_summary(_cls)(_passthrough(_cls))


@register_summary("Paint")
def _sum_paint(element):
    color = element.color

    def program(ctx, node, port, flow):
        ensure_field(ctx, flow, "paint")
        set_const(ctx, flow, "paint", color, node)
        return [(0, flow)]

    return program


@register_summary("IPFilter")
def _sum_ipfilter(element):
    rules = [(i, spec) for i, (_allowed, spec) in enumerate(element.rules)]
    allowed_flags = [allowed for allowed, _spec in element.rules]

    def program(ctx, node, port, flow):
        matched, _unmatched = sequential_rules(flow, rules)
        results = []
        for rule_index, fork in matched:
            if allowed_flags[rule_index]:
                results.append((0, fork))
        return results

    return program


def _sum_classifier(element):
    rules = list(enumerate(element.patterns))

    def program(ctx, node, port, flow):
        matched, _unmatched = sequential_rules(flow, rules)
        return [(pattern_index, fork) for pattern_index, fork in matched]

    return program


register_summary("IPClassifier")(_sum_classifier)
register_summary("Classifier")(_sum_classifier)


@register_summary("IPRewriter")
def _sum_iprewriter(element):
    inputs = list(element.inputs)

    def program(ctx, node, port, flow):
        if port >= len(inputs):
            return []
        pattern = inputs[port]
        if pattern is None:  # `drop` input
            return []
        if pattern.src_addr is not None:
            set_const(ctx, flow, F.IP_SRC, pattern.src_addr, node)
        if pattern.src_port is not None:
            low, high = pattern.src_port
            set_fresh(ctx, flow, F.TP_SRC, node,
                      IntervalSet.from_interval(low, high))
        if pattern.dst_addr is not None:
            set_const(ctx, flow, F.IP_DST, pattern.dst_addr, node)
        if pattern.dst_port is not None:
            low, high = pattern.dst_port
            set_fresh(ctx, flow, F.TP_DST, node,
                      IntervalSet.from_interval(low, high))
        return [(pattern.fwd_output, flow)]

    return program


def _sum_const_setter(field: str, attr: str):
    def summarize(element):
        value = getattr(element, attr)

        def program(ctx, node, port, flow):
            set_const(ctx, flow, field, value, node)
            return [(0, flow)]

        return program

    return summarize


register_summary("SetIPAddress")(_sum_const_setter(F.IP_DST, "address"))
register_summary("SetIPSrc")(_sum_const_setter(F.IP_SRC, "address"))
register_summary("SetTPDst")(_sum_const_setter(F.TP_DST, "port_value"))
register_summary("SetTPSrc")(_sum_const_setter(F.TP_SRC, "port_value"))
register_summary("SetIPTTL")(_sum_const_setter(F.IP_TTL, "ttl"))
register_summary("SetIPTOS")(_sum_const_setter(F.IP_TOS, "tos"))

_ONE = IntervalSet.single(1)
_FULL_ADDR = IntervalSet.from_interval(0, (1 << 32) - 1)
_NON_HTTP_PORTS = IntervalSet.from_interval(0, 65535).subtract(
    IntervalSet.single(80)
)


@register_summary("StatefulFirewall")
def _sum_statefulfirewall(element):
    from repro.symexec.models import flows_matching

    allow_spec = element.allow_spec
    outbound = element.OUTBOUND
    inbound = element.INBOUND

    def program(ctx, node, port, flow):
        if port == outbound:
            results = []
            for fork in flows_matching(flow, allow_spec):
                ensure_field(ctx, fork, "firewall_tag")
                set_const(ctx, fork, "firewall_tag", 1, node)
                results.append((outbound, fork))
            return results
        ensure_field(ctx, flow, "firewall_tag")
        if not flow.constrain_field("firewall_tag", _ONE):
            return []
        return [(inbound, flow)]

    return program


@register_summary("IngressFilter")
def _sum_ingressfilter(element):
    inbound = element.INBOUND
    allowed_sources = _FULL_ADDR.subtract(element.protected)

    def program(ctx, node, port, flow):
        if port == inbound:
            if not flow.constrain_field(F.IP_SRC, allowed_sources):
                return []
        return [(port, flow)]

    return program


@register_summary("ChangeEnforcer")
def _sum_changeenforcer(element):
    to_module = element.TO_MODULE
    from_module = element.FROM_MODULE

    def program(ctx, node, port, flow):
        ensure_field(ctx, flow, "sandboxed")
        if port == to_module:
            return [(to_module, flow)]
        set_const(ctx, flow, "sandboxed", 1, node)
        return [(from_module, flow)]

    return program


@register_summary("IPEncap")
def _sum_ipencap(element):
    from repro.symexec.models import _encap_with_writes

    outer = {
        F.IP_PROTO: element.proto,
        F.IP_SRC: element.src,
        F.IP_DST: element.dst,
    }

    def program(ctx, node, port, flow):
        _encap_with_writes(ctx, node, flow, outer)
        return [(0, flow)]

    return program


@register_summary("UDPIPEncap")
def _sum_udpipencap(element):
    from repro.symexec.models import _encap_with_writes

    outer = {
        F.IP_PROTO: F.UDP,
        F.IP_SRC: element.src,
        F.TP_SRC: element.sport,
        F.IP_DST: element.dst,
        F.TP_DST: element.dport,
    }

    def program(ctx, node, port, flow):
        _encap_with_writes(ctx, node, flow, outer)
        return [(0, flow)]

    return program


@register_summary("TransparentProxy")
def _sum_transparentproxy(element):
    proxy_addr = element.proxy_addr
    proxy_port = element.proxy_port
    http = IntervalSet.single(80)

    def program(ctx, node, port, flow):
        results = []
        redirected = flow.fork()
        if redirected.constrain_field(F.TP_DST, http):
            set_const(ctx, redirected, F.IP_DST, proxy_addr, node)
            set_const(ctx, redirected, F.TP_DST, proxy_port, node)
            results.append((0, redirected))
        passthrough = flow
        if passthrough.constrain_field(F.TP_DST, _NON_HTTP_PORTS):
            results.append((0, passthrough))
        return results

    return program


@register_summary("Multicast")
def _sum_multicast(element):
    destinations = list(element.destinations)
    last = len(destinations) - 1

    def program(ctx, node, port, flow):
        results = []
        for index, dest in enumerate(destinations):
            fork = flow if index == last else flow.fork()
            set_const(ctx, fork, F.IP_DST, dest, node)
            results.append((0, fork))
        return results

    return program


@register_summary("EchoResponder")
def _sum_echoresponder(element):
    udp_only = IntervalSet.single(F.UDP)
    rewrites_payload = element.response_payload is not None

    def program(ctx, node, port, flow):
        if not flow.constrain_field(F.IP_PROTO, udp_only):
            return []
        src = flow.packet.var(F.IP_SRC)
        dst = flow.packet.var(F.IP_DST)
        flow.write_field(F.IP_SRC, dst, node)
        flow.write_field(F.IP_DST, src, node)
        sport = flow.packet.var(F.TP_SRC)
        dport = flow.packet.var(F.TP_DST)
        flow.write_field(F.TP_SRC, dport, node)
        flow.write_field(F.TP_DST, sport, node)
        if rewrites_payload:
            set_fresh(ctx, flow, F.PAYLOAD, node)
        return [(0, flow)]

    return program


@register_summary("ReverseProxy")
def _sum_reverseproxy(element):
    client_side = element.CLIENT_SIDE
    origin_side = element.ORIGIN_SIDE
    origin_addr = element.origin_addr
    origin_port = element.origin_port

    def program(ctx, node, port, flow):
        if port == client_side:
            ingress_dst = flow.packet.var(F.IP_DST)
            flow.write_field(F.IP_SRC, ingress_dst, node)
            set_const(ctx, flow, F.IP_DST, origin_addr, node)
            set_const(ctx, flow, F.TP_DST, origin_port, node)
            return [(origin_side, flow)]
        ingress_dst = flow.packet.var(F.IP_DST)
        flow.write_field(F.IP_SRC, ingress_dst, node)
        set_fresh(ctx, flow, F.IP_DST, node)
        ensure_field(ctx, flow, "auth_ok")
        set_const(ctx, flow, "auth_ok", 1, node)
        return [(client_side, flow)]

    return program


@register_summary("LoadBalancer")
def _sum_loadbalancer(element):
    backends = list(element.backends)
    last = len(backends) - 1

    def program(ctx, node, port, flow):
        results = []
        for index, backend in enumerate(backends):
            fork = flow if index == last else flow.fork()
            set_const(ctx, fork, F.IP_DST, backend, node)
            results.append((0, fork))
        return results

    return program


@register_summary("ExplicitProxy")
def _sum_explicitproxy(element):
    proxy_addr = element.proxy_addr

    def program(ctx, node, port, flow):
        set_const(ctx, flow, F.IP_SRC, proxy_addr, node)
        set_fresh(ctx, flow, F.IP_DST, node)
        return [(0, flow)]

    return program


@register_summary("Switch")
def _sum_switch(element):
    out_port = element.port

    def program(ctx, node, port, flow):
        if out_port < 0:
            return []
        return [(out_port, flow)]

    return program


# ---------------------------------------------------------------------------
# Segment summaries (chain composition)
# ---------------------------------------------------------------------------

class SegmentHop(NamedTuple):
    """One precompiled hop of a segment summary."""

    node: str
    port: int
    #: Transfer function for this hop (None on sink hops).
    program: Optional[Callable]
    is_sink: bool
    #: The node's single wired output port (None when none are wired);
    #: model outputs on any other port dangle, exactly as in the graph.
    wired_port: Optional[int]
    #: Where the wired output leads.
    succ_node: Optional[str]
    succ_port: Optional[int]


class SegmentSummary(NamedTuple):
    """A maximal single-wired chain of summarizable nodes.

    The engine replays ``hops`` for one flow at a time: per hop it runs
    the usual arrival bookkeeping, applies the transfer function, spills
    every output but the last back to its worklist (preserving the seed
    engine's LIFO order bit for bit) and carries the last output to the
    next hop without touching the worklist or the edge dict.
    """

    entry: Tuple[str, int]
    hops: Tuple[SegmentHop, ...]


class _GraphTables(NamedTuple):
    """Compiled summary tables for one graph version."""

    graph: SymGraph
    version: int
    #: node -> transfer-function program (summarizable nodes only).
    programs: Dict[str, Callable]
    #: (node, in_port) -> hop tuple starting there (chain suffixes
    #: included, so mid-chain re-entries compose too).
    segments: Dict[Tuple[str, int], Tuple[SegmentHop, ...]]


class SummaryCache:
    """Per-controller cache of transfer functions and segment tables.

    Element programs are cached across graphs keyed on ``(class name,
    args)`` -- grafting the same tenant config a second time compiles
    nothing.  The per-graph tables (programs by node + composed
    segments) are validated against :attr:`SymGraph.version`, which
    every structural mutation bumps; a graft therefore invalidates and
    rebuilds them (cheaply, from the element cache) while an unchanged
    graph revalidates in O(1).
    """

    def __init__(self):
        #: (kind, class_name, args[, two_sided]) -> program.
        self._element_cache: Dict[tuple, Callable] = {}
        self._tables: Optional[_GraphTables] = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.element_hits = 0
        self.element_misses = 0
        self.segments_composed = 0
        self.hops_composed = 0
        self.nodes_summarized = 0
        self._c_hits = None
        self._c_misses = None
        self._c_invalidations = None
        self._c_composes = None

    # -- observability ------------------------------------------------------
    def instrument(self, metrics) -> None:
        """Mirror the cache counters into a metrics registry."""
        self._c_hits = metrics.counter(
            "symexec_summary_hits_total",
            "Summary-table revalidations served from cache",
        )
        self._c_misses = metrics.counter(
            "symexec_summary_misses_total",
            "Summary-table builds for a new graph",
        )
        self._c_invalidations = metrics.counter(
            "symexec_summary_invalidations_total",
            "Summary-table rebuilds after a graph mutation",
        )
        self._c_composes = metrics.counter(
            "symexec_summary_composes_total",
            "Segment summaries composed (multi-hop chains)",
        )

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for ``Controller.stats()`` and tests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "element_hits": self.element_hits,
            "element_misses": self.element_misses,
            "segments_composed": self.segments_composed,
            "hops_composed": self.hops_composed,
            "nodes_summarized": self.nodes_summarized,
        }

    def invalidate(self) -> None:
        """Drop everything (explicit invalidation, e.g. after in-place
        surgery on element instances the cache cannot observe)."""
        self._element_cache.clear()
        self._tables = None

    # -- table lookup --------------------------------------------------------
    def tables_for(self, graph: SymGraph) -> _GraphTables:
        """Valid summary tables for ``graph`` (rebuilding if stale)."""
        tables = self._tables
        version = graph.version
        if tables is not None and tables.graph is graph:
            if tables.version == version:
                self.hits += 1
                if self._c_hits is not None:
                    self._c_hits.inc()
                return tables
            self.invalidations += 1
            if self._c_invalidations is not None:
                self._c_invalidations.inc()
        else:
            self.misses += 1
            if self._c_misses is not None:
                self._c_misses.inc()
        tables = self._build_tables(graph, version)
        self._tables = tables
        return tables

    # -- compilation ---------------------------------------------------------
    def _element_program(self, element) -> Optional[Callable]:
        class_name = getattr(element, "class_name", None)
        if class_name is None:
            return None
        summarize = summarizer_for(class_name)
        if summarize is None:
            return None
        key = ("el", class_name, tuple(element.args))
        program = self._element_cache.get(key)
        if program is not None:
            self.element_hits += 1
            return program
        self.element_misses += 1
        program = summarize(element)
        if program is not None:
            self._element_cache[key] = program
        return program

    def _middlebox_program(self, element) -> Optional[Callable]:
        """Wrap an element summary with the middlebox iface mapping."""
        class_name = getattr(element, "class_name", None)
        if class_name is None:
            return None
        two_sided = element.n_inputs == 2
        key = ("mb", class_name, tuple(element.args), two_sided)
        program = self._element_cache.get(key)
        if program is not None:
            self.element_hits += 1
            return program
        inner = self._element_program(element)
        if inner is None:
            return None

        def program(ctx, node, port, flow):
            element_port = port if two_sided else 0
            outputs = inner(ctx, node, element_port, flow)
            results = []
            for out_port, out_flow in outputs:
                if two_sided:
                    iface = 1 - out_port if out_port in (0, 1) else out_port
                else:
                    iface = 1 - port if port in (0, 1) else 0
                results.append((iface, out_flow))
            return results

        self._element_cache[key] = program
        return program

    def _build_tables(self, graph: SymGraph, version: int) -> _GraphTables:
        programs: Dict[str, Callable] = {}
        for node, model in graph.models.items():
            payload = graph.payloads.get(node)
            kind = getattr(model, "summary_kind", None)
            if kind == "middlebox":
                program = self._middlebox_program(payload)
            else:
                class_name = getattr(payload, "class_name", None)
                if class_name is None:
                    continue
                summarize = summarizer_for(class_name)
                if summarize is None:
                    continue
                # Only summarize nodes still running the registered
                # model; custom payloads/models keep the generic path.
                try:
                    registered = model_for(class_name)
                except Exception:
                    continue
                if registered is not model:
                    continue
                program = self._element_program(payload)
            if program is not None:
                programs[node] = program
        self.nodes_summarized += len(programs)

        # Wired outputs per node; chains need exactly one.
        out_edges: Dict[str, List[Tuple[int, Tuple[str, int]]]] = {}
        for (src, src_port), dst in graph.edges.items():
            out_edges.setdefault(src, []).append((src_port, dst))

        sinks = graph.sinks
        segments: Dict[Tuple[str, int], Tuple[SegmentHop, ...]] = {}
        for dst in graph.edges.values():
            entry = dst
            if entry in segments:
                continue
            hops: List[SegmentHop] = []
            node, port = entry
            seen = set()
            while (node, port) not in seen:
                seen.add((node, port))
                if sinks.get(node):
                    hops.append(SegmentHop(
                        node, port, None, True, None, None, None
                    ))
                    break
                program = programs.get(node)
                if program is None:
                    break
                wired = out_edges.get(node, ())
                if len(wired) == 1:
                    wired_port, (succ_node, succ_port) = wired[0]
                    hops.append(SegmentHop(
                        node, port, program, False,
                        wired_port, succ_node, succ_port,
                    ))
                    node, port = succ_node, succ_port
                    continue
                if not wired:
                    # Every output dangles: terminal hop, all drops.
                    hops.append(SegmentHop(
                        node, port, program, False, None, None, None
                    ))
                break
            if hops:
                segments[entry] = tuple(hops)
                if len(hops) > 1:
                    self.segments_composed += 1
                    self.hops_composed += len(hops)
                    if self._c_composes is not None:
                        self._c_composes.inc()
        return _GraphTables(graph, version, programs, segments)


# ---------------------------------------------------------------------------
# Footprints + verdict reuse
# ---------------------------------------------------------------------------

class ChangedScope(NamedTuple):
    """What an admission step is about to change.

    ``segments`` are topology node names (a trial graft touches exactly
    its hosting platform); ``addresses`` are addresses being assigned.
    Verdicts whose footprint intersects the scope, or whose requirement
    references an address range covering an assigned address, are never
    *stored* during the step -- their tokens would snapshot trial state.
    """

    segments: FrozenSet[str]
    addresses: FrozenSet[int]


#: The scope of a read-only re-verification (``verify_snapshot``).
UNCHANGED_SCOPE = ChangedScope(frozenset(), frozenset())


def exploration_footprint(exploration, compiled) -> FrozenSet[str]:
    """Topology segments an exploration visited.

    Module-internal vertices (``module/element``) map to the hosting
    platform: whatever invalidates the module (deploy, kill, steering
    change) bumps that platform's tokens, so platform granularity is
    exactly the invalidation granularity.
    """
    segments = set()
    for node, _port in exploration.arrivals:
        if "/" in node:
            module = node.split("/", 1)[0]
            info = compiled.modules.get(module)
            segments.add(info[0] if info is not None else module)
        else:
            segments.add(node)
    return frozenset(segments)


def requirement_address_ranges(requirement) -> Tuple[IntervalSet, ...]:
    """The address ranges a requirement's hops reference.

    Address-referencing hops match *module entry elements* whose
    assigned address falls in the range
    (:meth:`CompiledNetwork._address_matcher`), so a cached verdict is
    sensitive to module addresses moving in or out of these ranges even
    when the owning platform is outside the footprint.
    """
    from repro.common.addr import prefix_range
    from repro.policy.grammar import KIND_ADDRESS

    ranges = []
    for hop in requirement.hops:
        ref = hop.node
        if ref.kind == KIND_ADDRESS and ref.prefix is not None:
            low, high = prefix_range(*ref.prefix)
            ranges.append(IntervalSet.from_interval(low, high))
    return tuple(ranges)


def _modules_in_ranges(network, ranges) -> Tuple[FrozenSet, ...]:
    """Per range: the (module, address) pairs currently inside it."""
    if not ranges:
        return ()
    pairs = [
        (name, address)
        for platform in network.platforms()
        for name, (address, _config) in platform.modules.items()
    ]
    return tuple(
        frozenset(p for p in pairs if p[1] in wanted)
        for wanted in ranges
    )


class _VerdictEntry(NamedTuple):
    result: object            # the cached ReachResult
    footprint: FrozenSet[str]
    topo_signature: int
    #: segment name -> (table object, version) for routers/platforms in
    #: the footprint.  Holding the table object itself (not ``id()``)
    #: makes identity checks immune to allocator reuse AND catches
    #: wholesale table replacement (a fresh table restarts its version
    #: counter, which a bare version compare would false-match).
    tokens: Dict[str, Tuple[object, int]]
    ranges: Tuple[IntervalSet, ...]
    range_modules: Tuple[FrozenSet, ...]


class VerificationCache:
    """Footprint-keyed requirement verdict cache.

    Keys are ``(owner module or "", str(requirement))``; entries
    validate against the live network on every lookup (topology
    signature, per-segment version tokens, address-range membership) so
    there is no explicit invalidation protocol to get wrong -- a stale
    entry can never validate.
    """

    def __init__(self):
        self._entries: Dict[tuple, _VerdictEntry] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.stores = 0
        self.store_skips = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "stores": self.stores,
            "store_skips": self.store_skips,
        }

    def flush(self) -> None:
        """Drop every cached verdict."""
        self._entries.clear()

    def prune_operator(self, valid_keys: FrozenSet[str]) -> None:
        """Drop operator-owned entries not in the current policy."""
        stale = [
            key for key in self._entries
            if key[0] == "" and key[1] not in valid_keys
        ]
        for key in stale:
            del self._entries[key]

    # -- validation ----------------------------------------------------------
    @staticmethod
    def _segment_token(node) -> Optional[Tuple[object, int]]:
        table = getattr(node, "table", None)
        if table is not None and hasattr(table, "_version"):
            return (table, table._version)
        table = getattr(node, "flow_table", None)
        if table is not None and hasattr(table, "_version"):
            return (table, table._version)
        return None

    def _valid(self, entry: _VerdictEntry, network, topo_signature) -> bool:
        if entry.topo_signature != topo_signature:
            return False
        nodes = network.nodes
        for name, (table, version) in entry.tokens.items():
            node = nodes.get(name)
            if node is None:
                return False
            current = self._segment_token(node)
            if (
                current is None
                or current[0] is not table
                or current[1] != version
            ):
                return False
        if entry.ranges:
            if _modules_in_ranges(network, entry.ranges) \
                    != entry.range_modules:
                return False
        return True

    # -- lookup / store -----------------------------------------------------
    def lookup(self, key, network, topo_signature):
        """The cached ReachResult, or None (miss or invalidated)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if not self._valid(entry, network, topo_signature):
            del self._entries[key]
            self.invalidations += 1
            return None
        self.hits += 1
        return entry.result

    def store(
        self,
        key,
        result,
        exploration,
        compiled,
        network,
        requirement,
        changed: Optional[ChangedScope],
        topo_signature: int,
    ) -> bool:
        """Cache a fresh verdict unless the changed scope taints it.

        A verdict explored *during* a trial graft may only be cached
        when its footprint avoids the grafted platform and its address
        ranges avoid the trial address -- otherwise its tokens would
        snapshot state that is rolled back on exit.
        """
        footprint = exploration_footprint(exploration, compiled)
        ranges = requirement_address_ranges(requirement)
        if changed is not None:
            if not footprint.isdisjoint(changed.segments):
                self.store_skips += 1
                return False
            if changed.addresses and any(
                address in wanted
                for wanted in ranges
                for address in changed.addresses
            ):
                self.store_skips += 1
                return False
        tokens: Dict[str, Tuple[object, int]] = {}
        nodes = network.nodes
        for name in footprint:
            node = nodes.get(name)
            if node is None:
                continue
            token = self._segment_token(node)
            if token is not None:
                tokens[name] = token
        self._entries[key] = _VerdictEntry(
            result, footprint, topo_signature, tokens,
            ranges, _modules_in_ranges(network, ranges),
        )
        self.stores += 1
        return True
