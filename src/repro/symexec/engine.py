"""The symbolic exploration engine.

The engine injects a symbolic packet at a node of a :class:`SymGraph`
and tracks the flow through the network, splitting it whenever subflows
can take different paths, and checking all flows over all possible paths
(Section 4.3).  For each flow it records:

* the constraint store (per-variable interval domains),
* a **trace** of every (node, input port) the flow arrived at, with a
  field -> variable snapshot per entry,
* a **write log** of every header-field redefinition and which node
  performed it -- the "history of modifications" the controller uses to
  check ``const`` invariants and anti-spoofing.

Unsatisfiable branches are pruned immediately, so the number of live
flows stays proportional to real forwarding alternatives.
"""

from __future__ import annotations

from typing import (
    Callable, Dict, List, NamedTuple, Optional, Tuple,
)

from repro.common.errors import VerificationError
from repro.common.intervals import IntervalSet
from repro.policy.flowspec import Clause, FlowSpec
from repro.symexec.sympacket import SymPacket, SymVar, VarFactory
from repro.symexec.tuning import OPT


class TraceEntry(NamedTuple):
    """One arrival of a flow at a node input port."""

    node: str
    port: int
    #: field -> variable uid at arrival time.
    snapshot: Dict[str, int]


class WriteRecord(NamedTuple):
    """One redefinition of a header field by a node's model."""

    #: Index in the trace of the node that performed the write.
    at: int
    node: str
    field: str
    old_uid: Optional[int]
    new_uid: int


class SymFlow:
    """One symbolic flow: packet bindings + constraints + history.

    The domains dict and the trace/write logs are plain builtins, but
    with the fast path on :meth:`fork` shares them between both flows
    and raises the ``_domains_shared`` / ``_history_shared`` flags;
    every mutator checks its flag and copies first (copy-on-write).
    Readers never pay anything -- they see ordinary dicts and lists.
    """

    __slots__ = (
        "packet", "domains", "trace", "writes", "alive",
        "_domains_shared", "_history_shared",
    )

    def __init__(self, packet: SymPacket):
        self.packet = packet
        #: var uid -> current domain (missing = the var's universe).
        self.domains: Dict[int, IntervalSet] = {}
        self.trace: List[TraceEntry] = []
        self.writes: List[WriteRecord] = []
        self.alive = True
        self._domains_shared = False
        self._history_shared = False

    # -- constraints --------------------------------------------------------
    def domain(self, variable: SymVar) -> IntervalSet:
        """Current domain of ``variable`` under this flow."""
        return self.domains.get(variable.uid, variable.universe)

    def field_domain(self, field: str) -> IntervalSet:
        """Current domain of the variable bound to ``field``."""
        variable = self.packet.var(field)
        if variable is None:
            raise VerificationError("field %r not tracked" % (field,))
        return self.domain(variable)

    def constrain(self, variable: SymVar, allowed: IntervalSet) -> bool:
        """Intersect a variable's domain; False when it becomes empty."""
        domains = self.domains
        uid = variable.uid
        current = domains.get(uid)
        if current is None:
            narrowed = variable.universe.intersect(allowed)
        else:
            narrowed = current.intersect(allowed)
        # With interned results, a vacuous narrowing returns the stored
        # object itself; skipping the store then avoids a pointless
        # copy-on-write materialization.  (Never skipped in seed mode:
        # uncached intersect always allocates.)
        if narrowed is not current:
            if self._domains_shared:
                domains = self.domains = dict(domains)
                self._domains_shared = False
                OPT.cow_copies += 1
            domains[uid] = narrowed
        if narrowed.is_empty():
            self.alive = False
            return False
        return True

    def constrain_field(self, field: str, allowed: IntervalSet) -> bool:
        """Constrain the variable currently bound to ``field``."""
        variable = self.packet.var(field)
        if variable is None:
            raise VerificationError("field %r not tracked" % (field,))
        return self.constrain(variable, allowed)

    def constrain_clause(self, clause: Clause) -> bool:
        """Apply every per-field constraint of a flow-spec clause."""
        for field, allowed in clause.constraints.items():
            if not self.constrain_field(field, allowed):
                return False
        return True

    # -- writes --------------------------------------------------------------
    def _own_history(self) -> None:
        """Materialize private trace/write logs (undo COW sharing)."""
        self.trace = list(self.trace)
        self.writes = list(self.writes)
        self._history_shared = False
        OPT.cow_copies += 1

    def record_write(self, record: "WriteRecord") -> None:
        """Append to the write log (copy-on-write safe)."""
        if self._history_shared:
            self._own_history()
        self.writes.append(record)

    def write_field(
        self, field: str, variable: SymVar, node: Optional[str] = None
    ) -> None:
        """Bind ``field`` to ``variable`` and log the redefinition."""
        old = self.packet.var(field)
        if self._history_shared:
            self._own_history()
        self.writes.append(
            WriteRecord(
                at=len(self.trace) - 1,
                node=node or (self.trace[-1].node if self.trace else "?"),
                field=field,
                old_uid=old.uid if old is not None else None,
                new_uid=variable.uid,
            )
        )
        self.packet.bind(field, variable)

    def written_between(self, start: int, end: int, field: str) -> bool:
        """Whether ``field`` was redefined by nodes trace[start:end]."""
        return any(
            w.field == field and start <= w.at < end for w in self.writes
        )

    def writers_of(self, field: str) -> List[str]:
        """Names of every node that redefined ``field`` on this path."""
        return [w.node for w in self.writes if w.field == field]

    # -- lifecycle ---------------------------------------------------------------
    def fork(self) -> "SymFlow":
        """An observably independent copy of this flow.

        Seed mode copies everything eagerly.  With the fast path on,
        the fork is O(1): both flows keep referencing the same domains
        dict and trace/write lists, and both raise their shared flags,
        so whichever side mutates a structure first copies it then
        (the common fork-then-die case never copies anything).  Either
        way, mutations on one side are never visible on the other.
        """
        OPT.forks += 1
        if not OPT.enabled:
            clone = SymFlow(self.packet.copy())
            clone.domains = dict(self.domains)
            clone.trace = list(self.trace)
            clone.writes = list(self.writes)
            clone.alive = self.alive
            return clone
        clone = SymFlow.__new__(SymFlow)
        clone.packet = self.packet.copy()
        clone.domains = self.domains
        clone.trace = self.trace
        clone.writes = self.writes
        clone.alive = self.alive
        self._domains_shared = clone._domains_shared = True
        self._history_shared = clone._history_shared = True
        return clone

    def matches_spec(self, spec: FlowSpec) -> bool:
        """Whether this flow can *only* carry packets satisfying ``spec``.

        True when the flow's current domains fit entirely inside some
        clause of the spec -- i.e. the spec is guaranteed, not merely
        possible.  (Requirement checking wants guarantees: "there exists
        at least one flow that conforms to the verified constraints".)
        """
        for clause in spec.clauses:
            if all(
                self.field_domain(field).is_subset(allowed)
                for field, allowed in clause.constraints.items()
                if self.packet.var(field) is not None
            ):
                return True
        return False

    def intersects_spec(self, spec: FlowSpec) -> bool:
        """Whether some concrete packet of this flow satisfies ``spec``."""
        for clause in spec.clauses:
            if all(
                self.field_domain(field).overlaps(allowed)
                for field, allowed in clause.constraints.items()
                if self.packet.var(field) is not None
            ):
                return True
        return False

    def __repr__(self) -> str:
        return "SymFlow(%d hops, %d writes, alive=%s)" % (
            len(self.trace),
            len(self.writes),
            self.alive,
        )


# ---------------------------------------------------------------------------
# Graph
# ---------------------------------------------------------------------------

#: A node model: (context, node_name, in_port, flow) -> [(out_port, flow)].
NodeModel = Callable[["ModelContext", str, int, SymFlow],
                     List[Tuple[int, SymFlow]]]


class SymGraph:
    """A graph of symbolic node models.

    Nodes are registered with a model callable; edges connect
    ``(node, out_port)`` to ``(node, in_port)``.  Sink nodes terminate
    flows (their arrivals are still recorded).
    """

    def __init__(self):
        self.models: Dict[str, NodeModel] = {}
        self.sinks: Dict[str, bool] = {}
        self.edges: Dict[Tuple[str, int], Tuple[str, int]] = {}
        #: Opaque per-node payloads models may consult (element instance,
        #: routing table, ...).
        self.payloads: Dict[str, object] = {}
        #: Structural version: bumped by every node/edge mutation so
        #: derived tables (segment summaries) can validate in O(1).
        self.version = 0

    def add_node(
        self,
        name: str,
        model: NodeModel,
        payload: object = None,
        is_sink: bool = False,
    ) -> None:
        """Register a node; raises on duplicates."""
        if name in self.models:
            raise VerificationError("graph node %r added twice" % (name,))
        self.models[name] = model
        self.payloads[name] = payload
        self.sinks[name] = is_sink
        self.version += 1

    def connect(
        self, src: str, src_port: int, dst: str, dst_port: int
    ) -> None:
        """Wire ``src[src_port] -> [dst_port]dst``."""
        for name in (src, dst):
            if name not in self.models:
                raise VerificationError("edge references unknown %r" % name)
        self.edges[(src, src_port)] = (dst, dst_port)
        self.version += 1

    def remove_node(self, name: str) -> None:
        """Unregister a node and every edge touching it.

        Incremental network compilation uses this to ungraft a trial
        module's branch; unknown names are ignored so teardown is
        idempotent.
        """
        self.models.pop(name, None)
        self.sinks.pop(name, None)
        self.payloads.pop(name, None)
        stale = [
            key for key, dst in self.edges.items()
            if key[0] == name or dst[0] == name
        ]
        for key in stale:
            del self.edges[key]
        self.version += 1

    def successor(
        self, node: str, port: int
    ) -> Optional[Tuple[str, int]]:
        """Where output ``port`` of ``node`` leads (None = dangling)."""
        return self.edges.get((node, port))

    def connected_outputs(self, node: str) -> List[int]:
        """The wired output ports of ``node``."""
        return sorted(p for (n, p) in self.edges if n == node)

    @classmethod
    def from_click(
        cls, config, namespace: str = "", payload_filter=None
    ) -> "SymGraph":
        """Build a graph from a :class:`~repro.click.config.ClickConfig`.

        Each element is instantiated (so its arguments are parsed once)
        and paired with its registered symbolic model.  ``namespace``
        prefixes node names (``module/element``) so multiple modules can
        share one graph.
        """
        from repro.click.element import create_element
        from repro.symexec.models import model_for

        graph = cls()
        prefix = namespace + "/" if namespace else ""
        for name, decl in config.elements.items():
            element = create_element(decl.class_name, name, decl.args)
            if payload_filter is not None:
                element = payload_filter(element)
            graph.add_node(
                prefix + name,
                model_for(decl.class_name),
                payload=element,
                is_sink=getattr(element, "is_sink", False),
            )
        for edge in config.edges:
            graph.connect(
                prefix + edge.src, edge.src_port,
                prefix + edge.dst, edge.dst_port,
            )
        return graph


class ModelContext:
    """What element models may consult while executing."""

    def __init__(self, graph: SymGraph, factory: VarFactory):
        self.graph = graph
        self.factory = factory


class Exploration:
    """The result of one symbolic injection."""

    def __init__(self):
        #: (node, in_port) -> flows as they arrived there.
        self.arrivals: Dict[Tuple[str, int], List[SymFlow]] = {}
        #: Flows that reached a sink node.
        self.delivered: List[SymFlow] = []
        #: Flows that died (dropped by a model or dangling port).
        self.dropped: List[SymFlow] = []
        #: Total model evaluations (the linear cost the paper measures).
        self.steps = 0
        #: Fast-path accounting (deltas of the tuning counters over this
        #: exploration): flow forks, branches pruned before forking,
        #: element-model memo hits, and copy-on-write materializations.
        self.forks = 0
        self.pruned = 0
        self.memo_hits = 0
        self.cow_copies = 0

    def flows_at(self, node: str, port: Optional[int] = None
                 ) -> List[SymFlow]:
        """Flows that arrived at ``node`` (optionally a specific port).

        Arrival snapshots are frozen into each flow's trace; the flow
        objects returned are the *final* flow states whose traces pass
        through the node.
        """
        out: List[SymFlow] = []
        for (name, in_port), flows in self.arrivals.items():
            if name == node and (port is None or in_port == port):
                out.extend(flows)
        return out

    def all_flows(self) -> List[SymFlow]:
        """Every completed flow (delivered or dropped)."""
        return self.delivered + self.dropped


class SymbolicEngine:
    """Runs symbolic exploration over a :class:`SymGraph`."""

    def __init__(
        self,
        graph: SymGraph,
        factory: Optional[VarFactory] = None,
        max_steps: int = 200_000,
        max_hops: int = 4_096,
        obs=None,
        summaries=None,
    ):
        from repro.obs import NULL_OBSERVABILITY

        self.graph = graph
        self.factory = factory or VarFactory()
        self.max_steps = max_steps
        self.max_hops = max_hops
        self.context = ModelContext(graph, self.factory)
        #: Optional :class:`repro.symexec.summaries.SummaryCache`.  When
        #: set (and the fast path is on), exploration dispatches through
        #: compiled transfer functions and replays composed segment
        #: summaries instead of interpreting each element model.
        self.summaries = summaries
        #: Observability bundle; defaults to the shared no-op bundle so
        #: the hot loop never branches on presence.
        self.obs = obs if obs is not None else NULL_OBSERVABILITY
        metrics = self.obs.metrics
        self._c_explorations = metrics.counter(
            "symexec_explorations_total", "Symbolic explorations run"
        )
        self._c_steps = metrics.counter(
            "symexec_steps_total", "Symbolic model evaluations"
        )
        self._c_forks = metrics.counter(
            "symexec_forks_total", "Symbolic flow forks"
        )
        self._c_prunes = metrics.counter(
            "symexec_prunes_total",
            "Infeasible branches pruned before forking",
        )
        self._c_memo = metrics.counter(
            "symexec_memo_hits_total", "Element-model memoization hits"
        )
        self._c_cow = metrics.counter(
            "symexec_cow_copies_total",
            "Copy-on-write materializations of forked flow state",
        )

    def fresh_packet(self) -> SymPacket:
        """A fully-unconstrained symbolic packet."""
        return SymPacket.fresh(self.factory)

    def inject(
        self,
        node: str,
        port: int = 0,
        flow: Optional[SymFlow] = None,
    ) -> Exploration:
        """Inject a flow at ``node`` and explore every path.

        With no ``flow``, an unconstrained symbolic packet is used
        (the spoofing check of Section 4.4 does exactly this).
        """
        if node not in self.graph.models:
            raise VerificationError("inject at unknown node %r" % (node,))
        if flow is None:
            flow = SymFlow(self.fresh_packet())
        result = Exploration()
        worklist: List[Tuple[str, int, SymFlow]] = [(node, port, flow)]
        return self._explore_tracked(worklist, result, node)

    def inject_departure(
        self, node: str, flow: Optional[SymFlow] = None
    ) -> Exploration:
        """Inject a flow *departing* ``node`` (used for endpoint origins).

        The node itself is recorded as trace position 0 with port -1 (it
        is where the traffic originates, not a hop it traverses), then
        the flow is forked onto every connected output of the node.
        """
        if node not in self.graph.models:
            raise VerificationError("inject at unknown node %r" % (node,))
        if flow is None:
            flow = SymFlow(self.fresh_packet())
        if flow._history_shared:
            flow._own_history()
        flow.trace.append(TraceEntry(node, -1, flow.packet.snapshot()))
        result = Exploration()
        result.arrivals.setdefault((node, -1), []).append(flow)
        outputs = self.graph.connected_outputs(node)
        worklist: List[Tuple[str, int, SymFlow]] = []
        for index, out_port in enumerate(outputs):
            nxt = self.graph.successor(node, out_port)
            branch = flow if index == len(outputs) - 1 else flow.fork()
            worklist.append((nxt[0], nxt[1], branch))
        if not worklist:
            result.dropped.append(flow)
        return self._explore_tracked(worklist, result, node)

    def _explore_tracked(
        self,
        worklist: List[Tuple[str, int, SymFlow]],
        result: Exploration,
        origin: str,
    ) -> Exploration:
        """Run :meth:`_explore` under an ``explore`` span, attributing
        the tuning-counter deltas to this exploration."""
        forks0 = OPT.forks
        prunes0 = OPT.prunes
        memo0 = OPT.memo_hits
        cow0 = OPT.cow_copies
        with self.obs.tracer.span("explore", node=origin) as span:
            self._explore(worklist, result)
            result.forks += OPT.forks - forks0
            result.pruned += OPT.prunes - prunes0
            result.memo_hits += OPT.memo_hits - memo0
            result.cow_copies += OPT.cow_copies - cow0
            span.set("steps", result.steps)
            span.set("forks", result.forks)
            span.set("pruned", result.pruned)
            span.set("memo_hits", result.memo_hits)
            span.set("delivered", len(result.delivered))
            span.set("dropped", len(result.dropped))
        self._c_explorations.inc()
        self._c_steps.inc(result.steps)
        self._c_forks.inc(result.forks)
        self._c_prunes.inc(result.pruned)
        self._c_memo.inc(result.memo_hits)
        self._c_cow.inc(result.cow_copies)
        return result

    def _explore(
        self,
        worklist: List[Tuple[str, int, SymFlow]],
        result: Exploration,
    ) -> Exploration:
        # The worklist loop runs once per model evaluation in *both*
        # modes (pruning never changes the step count), so everything
        # here is hoisted into locals: each lookup saved is saved for
        # every step of every exploration.
        graph = self.graph
        models = graph.models
        sinks = graph.sinks
        edges_get = graph.edges.get
        context = self.context
        max_hops = self.max_hops
        max_steps = self.max_steps
        arrivals_setdefault = result.arrivals.setdefault
        delivered_append = result.delivered.append
        dropped_append = result.dropped.append
        worklist_pop = worklist.pop
        worklist_append = worklist.append
        entry_cls = TraceEntry
        steps = result.steps
        # Summary dispatch tables.  Compiled transfer functions replace
        # model lookups one for one, and composed segment chains are
        # replayed inline below -- both are byte-for-byte equivalent to
        # the generic path, so gating on OPT keeps seed mode exact.
        summaries = self.summaries
        if summaries is not None and OPT.enabled:
            tables = summaries.tables_for(graph)
            segment_get = tables.segments.get
            program_get = tables.programs.get
        else:
            segment_get = None
            program_get = None
        try:
            while worklist:
                current_node, in_port, current = worklist_pop()
                if not current.alive:
                    dropped_append(current)
                    continue
                if segment_get is not None:
                    hops = segment_get((current_node, in_port))
                    if hops is not None:
                        # Replay the composed segment for this one flow.
                        # Per hop this runs the exact per-step protocol
                        # of the generic loop; forks on the chain's one
                        # wired output spill back to the worklist (all
                        # but the last, which the seed's LIFO pop would
                        # process next and which we carry instead), and
                        # outputs on any other port dangle and drop.
                        index = 0
                        n_hops = len(hops)
                        while index < n_hops:
                            hop = hops[index]
                            if len(current.trace) >= max_hops:
                                raise VerificationError(
                                    "flow exceeded %d hops (loop in the"
                                    " model graph?)" % max_hops
                                )
                            steps += 1
                            if steps > max_steps:
                                raise VerificationError(
                                    "exploration exceeded %d steps"
                                    % max_steps
                                )
                            if current._history_shared:
                                current._own_history()
                            packet = current.packet
                            snap = packet._snapshot
                            if snap is None:
                                snap = packet.snapshot()
                            current.trace.append(
                                entry_cls(hop.node, hop.port, snap)
                            )
                            arrivals_setdefault(
                                (hop.node, hop.port), []
                            ).append(current)
                            if hop.is_sink:
                                delivered_append(current)
                                break
                            outputs = hop.program(
                                context, hop.node, hop.port, current
                            )
                            if not outputs:
                                dropped_append(current)
                                break
                            wired = hop.wired_port
                            carry = None
                            for out_port, out_flow in outputs:
                                if not out_flow.alive \
                                        or out_port != wired:
                                    dropped_append(out_flow)
                                    continue
                                if carry is not None:
                                    worklist_append((
                                        hop.succ_node, hop.succ_port,
                                        carry,
                                    ))
                                carry = out_flow
                            if carry is None:
                                break
                            current = carry
                            index += 1
                            if index == n_hops:
                                worklist_append((
                                    hop.succ_node, hop.succ_port,
                                    current,
                                ))
                        continue
                if len(current.trace) >= max_hops:
                    raise VerificationError(
                        "flow exceeded %d hops (loop in the model"
                        " graph?)" % max_hops
                    )
                steps += 1
                if steps > max_steps:
                    raise VerificationError(
                        "exploration exceeded %d steps" % max_steps
                    )
                if current._history_shared:
                    current._own_history()
                packet = current.packet
                snap = packet._snapshot
                if snap is None:  # always taken in seed mode
                    snap = packet.snapshot()
                current.trace.append(
                    entry_cls(current_node, in_port, snap)
                )
                arrivals_setdefault(
                    (current_node, in_port), []
                ).append(current)
                if sinks[current_node]:
                    delivered_append(current)
                    continue
                if program_get is not None:
                    model = program_get(current_node)
                    if model is None:
                        model = models[current_node]
                else:
                    model = models[current_node]
                outputs = model(context, current_node, in_port, current)
                if not outputs:
                    dropped_append(current)
                    continue
                for out_port, out_flow in outputs:
                    if not out_flow.alive:
                        dropped_append(out_flow)
                        continue
                    nxt = edges_get((current_node, out_port))
                    if nxt is None:
                        dropped_append(out_flow)
                        continue
                    worklist_append((nxt[0], nxt[1], out_flow))
        finally:
            result.steps = steps
        return result
