"""Checking ``reach`` requirements against symbolic explorations.

The controller runs a SYMNET reachability check for each requirement
(Section 4.3): it injects a symbolic packet built from the origin hop's
flow definition, explores, and then verifies that at least one symbolic
flow

* visits every hop's node, in order,
* satisfies each hop's flow specification *at that node* (evaluated on
  the variables bound there, under the flow's final path condition --
  constraints only narrow along a path, so this is sound), and
* keeps every ``const`` field unredefined on the hop arriving at the
  node that declares it.

Node references are resolved to graph nodes by a caller-supplied
resolver, because only the network model knows which graph vertices are
"client" subnets, the "internet", or a module's Click element ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Dict, List, Optional

from repro.common.intervals import IntervalSet
from repro.policy.flowspec import FlowSpec
from repro.policy.grammar import Hop, NodeRef, ReachRequirement
from repro.symexec.engine import Exploration, SymFlow, TraceEntry
from repro.symexec.sympacket import DEFAULT_UNIVERSE, FIELD_UNIVERSES

#: Resolves a requirement NodeRef to a predicate over trace entries.
NodeResolver = Callable[[NodeRef], Callable[[TraceEntry], bool]]


@dataclass
class InvariantViolation:
    """A const-field invariant that failed for a candidate flow."""

    hop_index: int
    field: str
    writers: List[str]


@dataclass
class ReachResult:
    """Outcome of checking one requirement."""

    requirement: ReachRequirement
    satisfied: bool
    #: Flows that satisfy the whole requirement.
    witnesses: List[SymFlow] = dataclass_field(default_factory=list)
    #: Human-readable explanation when unsatisfied.
    reason: str = ""
    #: Invariant violations observed on otherwise-matching flows.
    violations: List[InvariantViolation] = dataclass_field(
        default_factory=list
    )

    def __bool__(self) -> bool:
        return self.satisfied


def default_resolver(ref: NodeRef) -> Callable[[TraceEntry], bool]:
    """Resolver for bare Click-module graphs (no topology).

    Matches element references (``module:element:port`` becomes graph
    node ``module/element`` or just ``element``) and plain names.
    """
    from repro.policy.grammar import KIND_ELEMENT, KIND_NAME

    if ref.kind == KIND_ELEMENT:
        wanted = ("%s/%s" % (ref.name, ref.element), ref.element)

        def match_element(entry: TraceEntry) -> bool:
            return entry.node in wanted and entry.port == ref.port

        return match_element
    if ref.kind == KIND_NAME:
        def match_name(entry: TraceEntry) -> bool:
            return entry.node == ref.name

        return match_name
    raise ValueError(
        "default resolver cannot resolve %r nodes; use the network "
        "model's resolver" % (ref.kind,)
    )


def _field_universe(field_name: str) -> IntervalSet:
    return FIELD_UNIVERSES.get(field_name, DEFAULT_UNIVERSE)


def domain_at(
    flow: SymFlow, snapshot: Dict[str, int], field_name: str
) -> Optional[IntervalSet]:
    """Domain of ``field_name``'s variable as bound at a trace entry,
    under the flow's final path condition.  None if untracked there.

    ``flow.domains`` may be a copy-on-write mapping (forked flows share
    storage); only ``get``-style reads are valid here.
    """
    uid = snapshot.get(field_name)
    if uid is None:
        return None
    return flow.domains.get(uid, _field_universe(field_name))


def spec_may_be_satisfied_at(
    flow: SymFlow, entry: TraceEntry, spec: FlowSpec
) -> bool:
    """Whether some concrete packet of the flow satisfies ``spec`` at
    the given trace entry (overlap semantics)."""
    for clause in spec.clauses:
        ok = True
        for field_name, allowed in clause.constraints.items():
            domain = domain_at(flow, entry.snapshot, field_name)
            if domain is None or not domain.overlaps(allowed):
                ok = False
                break
        if ok:
            return True
    return False


def spec_satisfied_at(
    flow: SymFlow, entry: TraceEntry, spec: FlowSpec
) -> bool:
    """Whether the flow *guarantees* ``spec`` at the given trace entry.

    A clause is guaranteed when every constrained field's domain at the
    entry is a subset of the clause's allowed set.
    """
    for clause in spec.clauses:
        ok = True
        for field_name, allowed in clause.constraints.items():
            domain = domain_at(flow, entry.snapshot, field_name)
            if domain is None or not domain.is_subset(allowed):
                ok = False
                break
        if ok:
            return True
    return False


class ReachabilityChecker:
    """Evaluates :class:`ReachRequirement` objects over explorations."""

    def __init__(self, resolver: NodeResolver = default_resolver):
        self.resolver = resolver

    def check(
        self, requirement: ReachRequirement, exploration: Exploration
    ) -> ReachResult:
        """Check ``requirement`` against an exploration whose injection
        already realized the origin hop (node + flow constraint)."""
        result = ReachResult(requirement=requirement, satisfied=False)
        hops = requirement.hops
        matchers = [self.resolver(h.node) for h in hops[1:]]
        if getattr(requirement, "mode", "reach") == "always":
            return self._check_always(
                requirement, exploration, matchers
            )
        candidates = 0
        for flow in exploration.all_flows():
            positions = self._match_positions(flow, hops[1:], matchers, 1)
            if positions is None:
                continue
            candidates += 1
            violation = self._check_invariants(flow, hops, positions)
            if violation is not None:
                result.violations.append(violation)
                continue
            result.witnesses.append(flow)
        if not requirement.expect_reachable:
            # `isolate`: satisfied exactly when nothing gets through.
            if result.witnesses:
                result.satisfied = False
                result.reason = (
                    "isolation violated: %d symbolic flow(s) reach %s"
                    % (len(result.witnesses), hops[-1].node)
                )
            else:
                result.satisfied = True
                result.reason = ""
            return result
        if result.witnesses:
            result.satisfied = True
        elif result.violations:
            result.reason = (
                "flows reach the target but const invariants fail: %s"
                % ", ".join(
                    "%s (written by %s)" % (v.field, "/".join(v.writers))
                    for v in result.violations
                )
            )
        elif candidates:
            result.reason = "internal error: candidates without verdict"
        else:
            result.reason = (
                "no symbolic flow reaches %s with the required "
                "constraints" % (hops[-1].node,)
            )
        return result

    # -- internals --------------------------------------------------------
    def _check_always(
        self,
        requirement: ReachRequirement,
        exploration: Exploration,
        matchers,
    ) -> ReachResult:
        """Universal waypointing: every flow that reaches the target
        must have traversed all waypoints, in order, beforehand."""
        result = ReachResult(requirement=requirement, satisfied=True)
        hops = requirement.hops
        target_hop = hops[-1]
        target_matcher = matchers[-1]
        waypoint_hops = hops[1:-1]
        waypoint_matchers = matchers[:-1]
        for flow in exploration.all_flows():
            for index in range(1, len(flow.trace)):
                entry = flow.trace[index]
                if not target_matcher(entry):
                    continue
                # Universal mode is conservative: a flow that *may*
                # carry target-matching packets counts (overlap, not
                # subset), so nothing sneaks past the waypoint.
                if target_hop.flow is not None and not (
                    spec_may_be_satisfied_at(flow, entry,
                                             target_hop.flow)
                ):
                    continue
                if not self._waypoints_before(
                    flow, waypoint_hops, waypoint_matchers, index
                ):
                    result.satisfied = False
                    result.witnesses.append(flow)
                    break
        if not result.satisfied:
            result.reason = (
                "%d flow(s) reach %s without traversing %s"
                % (
                    len(result.witnesses),
                    target_hop.node,
                    " -> ".join(str(h.node) for h in waypoint_hops),
                )
            )
        return result

    def _waypoints_before(
        self, flow: SymFlow, hops, matchers, end_index: int
    ) -> bool:
        """Whether the waypoint sequence occurs before ``end_index``."""
        position = 1
        for hop, matcher in zip(hops, matchers):
            found = None
            for index in range(position, end_index):
                entry = flow.trace[index]
                if not matcher(entry):
                    continue
                if hop.flow is not None and not spec_satisfied_at(
                    flow, entry, hop.flow
                ):
                    continue
                found = index
                break
            if found is None:
                return False
            position = found + 1
        return True

    def _match_positions(
        self,
        flow: SymFlow,
        remaining_hops,
        matchers,
        search_from: int,
        _depth: int = 0,
    ) -> Optional[List[int]]:
        """Find trace indices realizing the hops in order (backtracking).

        The origin hop occupies trace index 0 (the injection point), so
        the search starts at index 1.
        """
        if not remaining_hops:
            return []
        hop, matcher = remaining_hops[0], matchers[0]
        for index in range(search_from, len(flow.trace)):
            entry = flow.trace[index]
            if not matcher(entry):
                continue
            if hop.flow is not None and not spec_satisfied_at(
                flow, entry, hop.flow
            ):
                continue
            rest = self._match_positions(
                flow,
                remaining_hops[1:],
                matchers[1:],
                index + 1,
                _depth + 1,
            )
            if rest is not None:
                return [index] + rest
        return None

    def _check_invariants(
        self, flow: SymFlow, hops, positions: List[int]
    ) -> Optional[InvariantViolation]:
        """Validate const fields on each hop; the hop into hops[i+1]
        spans trace[prev_pos : pos]."""
        previous = 0
        for hop_index, hop in enumerate(hops[1:], start=1):
            position = positions[hop_index - 1]
            for field_name in hop.const_fields:
                if flow.written_between(previous, position, field_name):
                    writers = [
                        w.node
                        for w in flow.writes
                        if w.field == field_name
                        and previous <= w.at < position
                    ]
                    return InvariantViolation(
                        hop_index=hop_index,
                        field=field_name,
                        writers=writers,
                    )
            previous = position
        return None
