"""The symbolic fast path's switchboard and counters.

The engine's cold-verdict optimizations -- copy-on-write flow forking,
interval-set interning with cached algebra, per-element model
memoization, and infeasible-branch pruning -- are all *transparent*:
they change how much work a verdict costs, never what the verdict is.
This module is the single switch that turns the whole stack on or off,
plus the process-global counters that make its effect observable.

Three consumers:

* the engine and the element models read :data:`OPT` on their hot
  paths (one attribute load) and bump its counters,
* :func:`seed_mode` lets the differential tests and the
  ``symexec_speedup_check`` benchmark run the byte-identical
  pre-optimization engine for comparison,
* :func:`stats` feeds ``Controller.stats()``, the CLI, and the
  examples.

See ``docs/symexec.md`` ("The fast path") for how the layers compose.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

from repro.common import intervals as _intervals
from repro.policy import flowspec as _flowspec


class OptState:
    """The global optimization flag plus monotonically growing counters.

    ``forks`` counts every :meth:`SymFlow.fork` regardless of mode (the
    structural branching factor of an exploration); the other counters
    only move while optimizations are enabled:

    * ``prunes`` -- branches proven infeasible *before* forking,
    * ``memo_hits`` -- reuses of a memoized per-element structure
      (router LPM splits, platform demux branches),
    * ``cow_copies`` -- copy-on-write materializations (a forked flow's
      first divergent write).
    """

    __slots__ = ("enabled", "forks", "prunes", "memo_hits", "cow_copies")

    def __init__(self):
        self.enabled = True
        self.forks = 0
        self.prunes = 0
        self.memo_hits = 0
        self.cow_copies = 0


#: The one process-wide optimization state (hot paths read it directly).
OPT = OptState()


def set_optimizations(enabled: bool) -> None:
    """Turn the whole fast-path stack on or off, in every layer at once.

    Also flips the interval-set result cache
    (:func:`repro.common.intervals.set_result_cache`) and the clause
    negation memo (:func:`repro.policy.flowspec.set_negation_cache`),
    which live below :mod:`repro.symexec` and keep their own switches.
    """
    OPT.enabled = bool(enabled)
    _intervals.set_result_cache(OPT.enabled)
    _flowspec.set_negation_cache(OPT.enabled)


def optimizations_enabled() -> bool:
    """Whether the fast path is currently on (the default)."""
    return OPT.enabled


@contextmanager
def seed_mode() -> Iterator[None]:
    """Run the byte-identical pre-optimization engine inside the block.

    Every layer's toggle is flipped off on entry and restored on exit.
    Used by the differential tests ("optimized == seed, bit for bit")
    and as the baseline side of ``benchmarks/symexec_speedup_check.py``.
    """
    previous = OPT.enabled
    set_optimizations(False)
    try:
        yield
    finally:
        set_optimizations(previous)


def counters() -> Dict[str, int]:
    """Snapshot of the engine-level counters (cheap, no cache walks)."""
    return {
        "forks": OPT.forks,
        "prunes": OPT.prunes,
        "memo_hits": OPT.memo_hits,
        "cow_copies": OPT.cow_copies,
    }


def reset_counters() -> None:
    """Zero the engine-level counters (the flag is left untouched)."""
    OPT.forks = 0
    OPT.prunes = 0
    OPT.memo_hits = 0
    OPT.cow_copies = 0


def stats() -> Dict[str, object]:
    """Everything: flag, counters, and the lower layers' cache stats."""
    out: Dict[str, object] = dict(counters())
    out["optimizations_enabled"] = OPT.enabled
    out["interval_cache"] = _intervals.result_cache_stats()
    out["negation_memo_hits"] = _flowspec.negation_cache_hits()
    return out
