"""Abstract symbolic models of every Click element.

These are the middlebox models Section 4.3 describes: loop-free, no
dynamic allocation, with middlebox flow state pushed into the flow
itself (the stateful firewall *tags* the symbolic packet instead of
consulting a connection table, so verification is oblivious to flow
arrival order).

Each model is registered under the element's class name and receives the
*concrete element instance* as its payload -- argument parsing therefore
happens exactly once, in the element's ``configure``, and the model and
the dataplane can never disagree about what a configuration means.

Annotation-style fields used by the models:

* ``firewall_tag`` -- 1 after a stateful firewall admitted the flow,
* ``paint`` -- the Paint color (0 = unpainted),
* ``sandboxed`` -- 1 after passing a ChangeEnforcer (runtime-enforced
  authorization; the static security checker treats it as authorized),
* ``auth_ok`` -- 1 for traffic whose authorization is guaranteed by a
  vetted stock appliance (reverse proxy responses).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.common import fields as F
from repro.common.errors import VerificationError
from repro.common.intervals import IntervalSet
from repro.policy.flowspec import Clause, FlowSpec
from repro.symexec.engine import ModelContext, SymFlow
from repro.symexec.sympacket import SymVar
from repro.symexec.tuning import OPT

Model = Callable[[ModelContext, str, int, SymFlow],
                 List[Tuple[int, SymFlow]]]

_MODELS: Dict[str, Model] = {}


def register_model(class_name: str):
    """Decorator registering a symbolic model for an element class."""

    def decorate(fn: Model) -> Model:
        if class_name in _MODELS:
            raise VerificationError(
                "model for %r registered twice" % (class_name,)
            )
        _MODELS[class_name] = fn
        return fn

    return decorate


def model_for(class_name: str) -> Model:
    """The registered model for ``class_name``.

    Unmodelled classes raise: the controller must refuse configurations
    it cannot analyse (only *known* elements are checkable, Section 4.1).
    """
    try:
        return _MODELS[class_name]
    except KeyError:
        raise VerificationError(
            "no symbolic model for element class %r" % (class_name,)
        )


def models_registry() -> Dict[str, Model]:
    """A copy of the class-name -> model registry."""
    return dict(_MODELS)


def has_model(class_name: str) -> bool:
    """Whether ``class_name`` has a registered symbolic model."""
    return class_name in _MODELS


# ---------------------------------------------------------------------------
# Summarizers (transfer-function compilers, populated by
# :mod:`repro.symexec.summaries`)
# ---------------------------------------------------------------------------

#: class name -> summarizer.  A summarizer takes one configured element
#: instance and returns a *transfer function* with the model signature
#: but the element's parsed configuration pre-bound -- or the registered
#: model itself when the model carries no payload-derived state.
_SUMMARIZERS: Dict[str, Callable[[object], Model]] = {}


def register_summary(class_name: str):
    """Decorator registering a transfer-function summarizer."""

    def decorate(fn: Callable[[object], Model]):
        if class_name in _SUMMARIZERS:
            raise VerificationError(
                "summarizer for %r registered twice" % (class_name,)
            )
        if class_name not in _MODELS:
            raise VerificationError(
                "summarizer for %r has no base model" % (class_name,)
            )
        _SUMMARIZERS[class_name] = fn
        return fn

    return decorate


def summarizer_for(class_name: str):
    """The registered summarizer for ``class_name`` (None = unsummarized;
    such elements simply keep the generic model path)."""
    return _SUMMARIZERS.get(class_name)


def summarizers_registry() -> Dict[str, Callable[[object], Model]]:
    """A copy of the class-name -> summarizer registry."""
    return dict(_SUMMARIZERS)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

_ONE = IntervalSet.single(1)
_ZERO = IntervalSet.single(0)


def _element(ctx: ModelContext, node: str):
    return ctx.graph.payloads[node]


def ensure_field(
    ctx: ModelContext, flow: SymFlow, field: str, absent_value: int = 0
) -> SymVar:
    """Bind ``field`` if missing, defaulting its domain to a constant.

    Annotation fields (paint, firewall_tag) do not exist until some
    element creates them; a packet without one behaves as carrying
    ``absent_value``.
    """
    variable = flow.packet.var(field)
    if variable is None:
        variable = ctx.factory.fresh(field)
        flow.packet.bind(field, variable)
        flow.constrain(variable, IntervalSet.single(absent_value))
    return variable


def set_const(
    ctx: ModelContext, flow: SymFlow, field: str, value: int, node: str
) -> None:
    """Redefine ``field`` to the constant ``value`` (logged as a write)."""
    fresh = ctx.factory.fresh_for_field(field)
    flow.write_field(field, fresh, node)
    flow.constrain(fresh, IntervalSet.single(value))


def set_fresh(
    ctx: ModelContext,
    flow: SymFlow,
    field: str,
    node: str,
    domain: IntervalSet = None,
) -> SymVar:
    """Redefine ``field`` to a brand-new unconstrained variable."""
    fresh = ctx.factory.fresh_for_field(field)
    flow.write_field(field, fresh, node)
    if domain is not None:
        flow.constrain(fresh, domain)
    return fresh


def clause_infeasible(flow: SymFlow, clause: Clause) -> bool:
    """Whether ``clause`` provably empties ``flow`` (prune before fork).

    Checks each constrained field against the flow's *current* domain:
    if any single intersection is empty, constraining a fork would kill
    it, so the fork can be skipped outright.  Conservative the other
    way -- aliased fields (two fields bound to one variable) may still
    die under the full sequential narrowing, which the real
    ``constrain_clause`` then catches exactly as the seed engine did.
    Fields the packet does not carry make the check pass so the fork
    path can raise the same error the seed engine raises.
    """
    packet_var = flow.packet.var
    domain = flow.domain
    for field, allowed in clause.constraint_items():
        variable = packet_var(field)
        if variable is None:
            return False
        if domain(variable).intersect(allowed).is_empty():
            return True
    return False


def flows_matching(flow: SymFlow, spec: FlowSpec) -> List[SymFlow]:
    """Forks of ``flow`` constrained to each satisfiable clause.

    With the fast path on, clauses that provably empty the flow are
    pruned before forking.  A pruned fork is exactly one the seed
    engine would have created, constrained to death, and discarded
    inside this function -- it never escapes to the caller either way.
    """
    out: List[SymFlow] = []
    opt = OPT.enabled
    for clause in spec.clauses:
        if opt and clause_infeasible(flow, clause):
            OPT.prunes += 1
            continue
        fork = flow.fork()
        if fork.constrain_clause(clause):
            out.append(fork)
    return out


def flows_not_matching(flow: SymFlow, spec: FlowSpec) -> List[SymFlow]:
    """Forks of ``flow`` constrained to the spec's complement (DNF)."""
    remaining = [flow.fork()]
    opt = OPT.enabled
    for clause in spec.clauses:
        negations = clause.negated_clauses()
        next_remaining: List[SymFlow] = []
        for candidate in remaining:
            for negated in negations:
                if opt and clause_infeasible(candidate, negated):
                    OPT.prunes += 1
                    continue
                fork = candidate.fork()
                if fork.constrain_clause(negated):
                    next_remaining.append(fork)
        remaining = next_remaining
        if not remaining:
            break
    return remaining


def sequential_rules(
    flow: SymFlow, rules
) -> Tuple[List[Tuple[int, SymFlow]], List[SymFlow]]:
    """First-match-wins rule evaluation over a symbolic flow.

    ``rules`` is ``[(rule_index, FlowSpec), ...]``.  Returns
    ``(matched, unmatched)`` where ``matched`` pairs each fork with the
    index of the rule it matched.
    """
    matched: List[Tuple[int, SymFlow]] = []
    remaining = [flow]
    for index, spec in rules:
        next_remaining: List[SymFlow] = []
        for candidate in remaining:
            matched.extend(
                (index, fork) for fork in flows_matching(candidate, spec)
            )
            next_remaining.extend(flows_not_matching(candidate, spec))
        remaining = next_remaining
        if not remaining:
            break
    return matched, remaining


def _identity(ctx, node, port, flow):
    return [(0, flow)]


# ---------------------------------------------------------------------------
# I/O and plumbing
# ---------------------------------------------------------------------------

register_model("FromNetfront")(_identity)
register_model("FromDevice")(_identity)
register_model("ToNetfront")(_identity)   # sink flag handled by the graph
register_model("ToDevice")(_identity)
register_model("CheckIPHeader")(_identity)
register_model("Queue")(_identity)        # time is not modelled (Sec. 7)
register_model("Unqueue")(_identity)
register_model("TimedUnqueue")(_identity)
register_model("RatedUnqueue")(_identity)
register_model("BandwidthShaper")(_identity)
register_model("Counter")(_identity)
register_model("FlowMeter")(_identity)


@register_model("Discard")
def _model_discard(ctx, node, port, flow):
    return []


@register_model("Idle")
def _model_idle(ctx, node, port, flow):
    return []


@register_model("Tee")
def _model_tee(ctx, node, port, flow):
    outputs = ctx.graph.connected_outputs(node) or [0]
    results = []
    for index, out_port in enumerate(outputs):
        results.append(
            (out_port, flow if index == len(outputs) - 1 else flow.fork())
        )
    return results


@register_model("Paint")
def _model_paint(ctx, node, port, flow):
    element = _element(ctx, node)
    ensure_field(ctx, flow, "paint")
    set_const(ctx, flow, "paint", element.color, node)
    return [(0, flow)]


@register_model("PaintSwitch")
def _model_paintswitch(ctx, node, port, flow):
    variable = ensure_field(ctx, flow, "paint")
    opt = OPT.enabled
    results = []
    for out_port in ctx.graph.connected_outputs(node) or [0]:
        allowed = IntervalSet.single(out_port)
        if opt and flow.domain(variable).intersect(allowed).is_empty():
            OPT.prunes += 1
            continue
        fork = flow.fork()
        if fork.constrain_field("paint", allowed):
            results.append((out_port, fork))
    return results


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


@register_model("IPFilter")
def _model_ipfilter(ctx, node, port, flow):
    element = _element(ctx, node)
    rules = [(i, spec) for i, (_allowed, spec) in enumerate(element.rules)]
    matched, _unmatched = sequential_rules(flow, rules)
    results = []
    for rule_index, fork in matched:
        allowed, _spec = element.rules[rule_index]
        if allowed:
            results.append((0, fork))
    return results


def _classifier_model(ctx, node, port, flow):
    element = _element(ctx, node)
    rules = list(enumerate(element.patterns))
    matched, _unmatched = sequential_rules(flow, rules)
    return [(pattern_index, fork) for pattern_index, fork in matched]


register_model("IPClassifier")(_classifier_model)
register_model("Classifier")(_classifier_model)


# ---------------------------------------------------------------------------
# Rewriting
# ---------------------------------------------------------------------------


@register_model("IPRewriter")
def _model_iprewriter(ctx, node, port, flow):
    element = _element(ctx, node)
    if port >= len(element.inputs):
        return []
    pattern = element.inputs[port]
    if pattern is None:  # `drop` input
        return []
    if pattern.src_addr is not None:
        set_const(ctx, flow, F.IP_SRC, pattern.src_addr, node)
    if pattern.src_port is not None:
        low, high = pattern.src_port
        set_fresh(ctx, flow, F.TP_SRC, node,
                  IntervalSet.from_interval(low, high))
    if pattern.dst_addr is not None:
        set_const(ctx, flow, F.IP_DST, pattern.dst_addr, node)
    if pattern.dst_port is not None:
        low, high = pattern.dst_port
        set_fresh(ctx, flow, F.TP_DST, node,
                  IntervalSet.from_interval(low, high))
    return [(pattern.fwd_output, flow)]


@register_model("SetIPAddress")
def _model_setipaddress(ctx, node, port, flow):
    set_const(ctx, flow, F.IP_DST, _element(ctx, node).address, node)
    return [(0, flow)]


@register_model("SetIPSrc")
def _model_setipsrc(ctx, node, port, flow):
    set_const(ctx, flow, F.IP_SRC, _element(ctx, node).address, node)
    return [(0, flow)]


@register_model("SetTPDst")
def _model_settpdst(ctx, node, port, flow):
    set_const(ctx, flow, F.TP_DST, _element(ctx, node).port_value, node)
    return [(0, flow)]


@register_model("SetTPSrc")
def _model_settpsrc(ctx, node, port, flow):
    set_const(ctx, flow, F.TP_SRC, _element(ctx, node).port_value, node)
    return [(0, flow)]


@register_model("DecIPTTL")
def _model_deciPttl(ctx, node, port, flow):
    results = []
    if ctx.graph.successor(node, 1) is not None:
        expiry_range = IntervalSet.from_interval(0, 1)
        ttl_var = flow.packet.var(F.IP_TTL)
        if (
            OPT.enabled
            and ttl_var is not None
            and flow.domain(ttl_var).intersect(expiry_range).is_empty()
        ):
            OPT.prunes += 1
        else:
            expired = flow.fork()
            if expired.constrain_field(F.IP_TTL, expiry_range):
                results.append((1, expired))
    survivor = flow
    if survivor.constrain_field(F.IP_TTL,
                                IntervalSet.from_interval(2, 255)):
        set_fresh(ctx, survivor, F.IP_TTL, node,
                  IntervalSet.from_interval(1, 254))
        results.append((0, survivor))
    return results


# ---------------------------------------------------------------------------
# Stateful elements (state pushed into the flow)
# ---------------------------------------------------------------------------


@register_model("StatefulFirewall")
def _model_statefulfirewall(ctx, node, port, flow):
    element = _element(ctx, node)
    if port == element.OUTBOUND:
        results = []
        for fork in flows_matching(flow, element.allow_spec):
            ensure_field(ctx, fork, "firewall_tag")
            set_const(ctx, fork, "firewall_tag", 1, node)
            results.append((element.OUTBOUND, fork))
        return results
    # Inbound: only flows already tagged (i.e. related response traffic).
    ensure_field(ctx, flow, "firewall_tag")
    if not flow.constrain_field("firewall_tag", _ONE):
        return []
    return [(element.INBOUND, flow)]


@register_model("IngressFilter")
def _model_ingressfilter(ctx, node, port, flow):
    element = _element(ctx, node)
    if port == element.INBOUND:
        universe = IntervalSet.from_interval(0, (1 << 32) - 1)
        if not flow.constrain_field(
            F.IP_SRC, universe.subtract(element.protected)
        ):
            return []
    return [(port, flow)]


@register_model("ChangeEnforcer")
def _model_changeenforcer(ctx, node, port, flow):
    element = _element(ctx, node)
    ensure_field(ctx, flow, "sandboxed")
    if port == element.TO_MODULE:
        return [(element.TO_MODULE, flow)]
    # Module egress: runtime enforcement guarantees authorization, which
    # the static security checker recognizes through the annotation.
    set_const(ctx, flow, "sandboxed", 1, node)
    return [(element.FROM_MODULE, flow)]


# ---------------------------------------------------------------------------
# Tunnels
# ---------------------------------------------------------------------------


@register_model("IPEncap")
def _model_ipencap(ctx, node, port, flow):
    element = _element(ctx, node)
    _encap_with_writes(ctx, node, flow, {
        F.IP_PROTO: element.proto,
        F.IP_SRC: element.src,
        F.IP_DST: element.dst,
    })
    return [(0, flow)]


@register_model("UDPIPEncap")
def _model_udpipencap(ctx, node, port, flow):
    element = _element(ctx, node)
    _encap_with_writes(ctx, node, flow, {
        F.IP_PROTO: F.UDP,
        F.IP_SRC: element.src,
        F.TP_SRC: element.sport,
        F.IP_DST: element.dst,
        F.TP_DST: element.dport,
    })
    return [(0, flow)]


def _encap_with_writes(ctx, node, flow, outer_consts):
    """Push an encapsulation layer, logging each outer-field write."""
    from repro.symexec.engine import WriteRecord

    old = dict(flow.packet.vars)
    outer_vars = {}
    for field, value in outer_consts.items():
        fresh = ctx.factory.fresh_for_field(field)
        flow.constrain(fresh, IntervalSet.single(value))
        outer_vars[field] = fresh
    flow.packet.encapsulate(outer_vars)
    for field, variable in outer_vars.items():
        previous = old.get(field)
        flow.record_write(
            WriteRecord(
                at=len(flow.trace) - 1,
                node=node,
                field=field,
                old_uid=previous.uid if previous is not None else None,
                new_uid=variable.uid,
            )
        )


@register_model("IPDecap")
def _model_ipdecap(ctx, node, port, flow):
    from repro.symexec.engine import WriteRecord

    before = dict(flow.packet.vars)
    if flow.packet.decapsulate():
        # Restored inner header: log writes for fields whose binding
        # actually changed.
        for field, variable in flow.packet.vars.items():
            previous = before.get(field)
            if previous is None or previous.uid != variable.uid:
                flow.record_write(
                    WriteRecord(
                        at=len(flow.trace) - 1,
                        node=node,
                        field=field,
                        old_uid=previous.uid if previous else None,
                        new_uid=variable.uid,
                    )
                )
        return [(0, flow)]
    # Decapsulating traffic whose inner header is unknown at analysis
    # time: every header field becomes a fresh free variable.  This is
    # what makes third-party tunnels uncheckable (Table 1: sandbox).
    # The inner packet is still *attributed* to the tunnel sender
    # (anti-spoofing is enforced at tunnel ingress by the operator's
    # filtering), which the `decapped` annotation records.
    for field in F.HEADER_FIELDS:
        set_fresh(ctx, flow, field, node)
    ensure_field(ctx, flow, "decapped")
    set_const(ctx, flow, "decapped", 1, node)
    return [(0, flow)]


# ---------------------------------------------------------------------------
# Application-layer elements
# ---------------------------------------------------------------------------


@register_model("DPI")
def _model_dpi(ctx, node, port, flow):
    # Payload content is opaque to the engine: both outcomes possible.
    miss = flow.fork()
    return [(0, flow), (1, miss)]


@register_model("TransparentProxy")
def _model_transparentproxy(ctx, node, port, flow):
    element = _element(ctx, node)
    results = []
    redirected = flow.fork()
    if redirected.constrain_field(F.TP_DST, IntervalSet.single(80)):
        set_const(ctx, redirected, F.IP_DST, element.proxy_addr, node)
        set_const(ctx, redirected, F.TP_DST, element.proxy_port, node)
        results.append((0, redirected))
    passthrough = flow
    if passthrough.constrain_field(
        F.TP_DST,
        IntervalSet.from_interval(0, 65535).subtract(IntervalSet.single(80)),
    ):
        results.append((0, passthrough))
    return results


@register_model("HTTPOptimizer")
def _model_httpoptimizer(ctx, node, port, flow):
    # The optimizer may rewrite HTTP headers: the payload is redefined,
    # which is exactly what breaks the Section 8 payload invariant.
    set_fresh(ctx, flow, F.PAYLOAD, node)
    return [(0, flow)]


@register_model("WebCache")
def _model_webcache(ctx, node, port, flow):
    results = [(0, flow)]
    if ctx.graph.successor(node, 1) is not None:
        hit = flow.fork()
        src = hit.packet.var(F.IP_SRC)
        dst = hit.packet.var(F.IP_DST)
        hit.write_field(F.IP_SRC, dst, node)
        hit.write_field(F.IP_DST, src, node)
        sport = hit.packet.var(F.TP_SRC)
        dport = hit.packet.var(F.TP_DST)
        hit.write_field(F.TP_SRC, dport, node)
        hit.write_field(F.TP_DST, sport, node)
        set_fresh(ctx, hit, F.PAYLOAD, node)
        results.append((1, hit))
    return results


@register_model("Multicast")
def _model_multicast(ctx, node, port, flow):
    element = _element(ctx, node)
    results = []
    for index, dest in enumerate(element.destinations):
        fork = (
            flow if index == len(element.destinations) - 1 else flow.fork()
        )
        set_const(ctx, fork, F.IP_DST, dest, node)
        results.append((0, fork))
    return results


@register_model("EchoResponder")
def _model_echoresponder(ctx, node, port, flow):
    element = _element(ctx, node)
    if not flow.constrain_field(F.IP_PROTO, IntervalSet.single(F.UDP)):
        return []
    src = flow.packet.var(F.IP_SRC)
    dst = flow.packet.var(F.IP_DST)
    # The aliasing swap: after this, ip_dst IS the variable that was
    # ip_src -- the identity proof behind implicit authorization.
    flow.write_field(F.IP_SRC, dst, node)
    flow.write_field(F.IP_DST, src, node)
    sport = flow.packet.var(F.TP_SRC)
    dport = flow.packet.var(F.TP_DST)
    flow.write_field(F.TP_SRC, dport, node)
    flow.write_field(F.TP_DST, sport, node)
    if element.response_payload is not None:
        set_fresh(ctx, flow, F.PAYLOAD, node)
    return [(0, flow)]


@register_model("ReverseProxy")
def _model_reverseproxy(ctx, node, port, flow):
    element = _element(ctx, node)
    if port == element.CLIENT_SIDE:
        # A terminating proxy: the upstream request is sourced from the
        # address the client contacted (the module's own address), i.e.
        # the ingress destination -- an aliasing bind, not a fresh var.
        ingress_dst = flow.packet.var(F.IP_DST)
        flow.write_field(F.IP_SRC, ingress_dst, node)
        set_const(ctx, flow, F.IP_DST, element.origin_addr, node)
        set_const(ctx, flow, F.TP_DST, element.origin_port, node)
        return [(element.ORIGIN_SIDE, flow)]
    # Responses are relayed to the session's recorded client, sourced
    # from the proxy's own address (the ingress destination).  The
    # appliance's session table guarantees that client previously
    # contacted the proxy (implicit authorization); the model records
    # the guarantee in the auth_ok annotation.
    ingress_dst = flow.packet.var(F.IP_DST)
    flow.write_field(F.IP_SRC, ingress_dst, node)
    set_fresh(ctx, flow, F.IP_DST, node)
    ensure_field(ctx, flow, "auth_ok")
    set_const(ctx, flow, "auth_ok", 1, node)
    return [(element.CLIENT_SIDE, flow)]


@register_model("GeoDNSServer")
def _model_geodnsserver(ctx, node, port, flow):
    src = flow.packet.var(F.IP_SRC)
    dst = flow.packet.var(F.IP_DST)
    flow.write_field(F.IP_SRC, dst, node)
    flow.write_field(F.IP_DST, src, node)
    sport = flow.packet.var(F.TP_SRC)
    dport = flow.packet.var(F.TP_DST)
    flow.write_field(F.TP_SRC, dport, node)
    flow.write_field(F.TP_DST, sport, node)
    set_fresh(ctx, flow, F.PAYLOAD, node)
    return [(0, flow)]


@register_model("LoadBalancer")
def _model_loadbalancer(ctx, node, port, flow):
    # One symbolic branch per backend: the destination is always one
    # of the configured constants, all of which the security check can
    # vet against the white-list (like Multicast, but one copy).
    element = _element(ctx, node)
    results = []
    for index, backend in enumerate(element.backends):
        fork = flow if index == len(element.backends) - 1 else flow.fork()
        set_const(ctx, fork, F.IP_DST, backend, node)
        results.append((0, fork))
    return results


@register_model("ExplicitProxy")
def _model_explicitproxy(ctx, node, port, flow):
    element = _element(ctx, node)
    # The upstream destination comes from the request payload: it is a
    # run-time value, modelled as a fresh free variable.
    set_const(ctx, flow, F.IP_SRC, element.proxy_addr, node)
    set_fresh(ctx, flow, F.IP_DST, node)
    return [(0, flow)]


@register_model("X86VM")
def _model_x86vm(ctx, node, port, flow):
    # Arbitrary code: anything can come out.  Every field is redefined
    # to a fresh free variable, so no security rule can ever be proven.
    for field in F.HEADER_FIELDS:
        set_fresh(ctx, flow, field, node)
    return [(0, flow)]


@register_model("RateLimiter")
def _model_ratelimiter(ctx, node, port, flow):
    results = [(0, flow)]
    if ctx.graph.successor(node, 1) is not None:
        results.append((1, flow.fork()))
    return results


@register_model("Switch")
def _model_switch(ctx, node, port, flow):
    element = _element(ctx, node)
    if element.port < 0:
        return []
    return [(element.port, flow)]


@register_model("RoundRobinSwitch")
def _model_roundrobinswitch(ctx, node, port, flow):
    # The schedule depends on arrival order, which symbolic execution
    # does not model: any output is possible.
    outputs = ctx.graph.connected_outputs(node) or [0]
    results = []
    for index, out_port in enumerate(outputs):
        results.append(
            (out_port, flow if index == len(outputs) - 1
             else flow.fork())
        )
    return results


@register_model("Meter")
def _model_meter(ctx, node, port, flow):
    # Rates are a run-time property (time is not modelled): both the
    # conformant and the excess outcome are possible for any packet.
    results = [(0, flow)]
    if ctx.graph.successor(node, 1) is not None:
        results.append((1, flow.fork()))
    return results


@register_model("SetIPTTL")
def _model_setipttl(ctx, node, port, flow):
    set_const(ctx, flow, F.IP_TTL, _element(ctx, node).ttl, node)
    return [(0, flow)]


@register_model("SetIPTOS")
def _model_setiptos(ctx, node, port, flow):
    set_const(ctx, flow, F.IP_TOS, _element(ctx, node).tos, node)
    return [(0, flow)]


@register_model("ICMPPingResponder")
def _model_icmppingresponder(ctx, node, port, flow):
    if not flow.constrain_field(F.IP_PROTO, IntervalSet.single(F.ICMP)):
        return []
    src = flow.packet.var(F.IP_SRC)
    dst = flow.packet.var(F.IP_DST)
    flow.write_field(F.IP_SRC, dst, node)
    flow.write_field(F.IP_DST, src, node)
    return [(0, flow)]
