"""Rendering symbolic execution traces as Figure 2-style tables.

The paper explains SYMNET with a table: one row per hop, one column per
header field, shaded cells where a value changed.  This module produces
the text version of that table from a :class:`SymFlow`, for examples,
debugging, and controller denial messages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common import fields as F
from repro.common.addr import format_ip
from repro.common.intervals import IntervalSet
from repro.symexec.engine import SymFlow
from repro.symexec.reachability import domain_at

#: Default column order, mirroring Figure 2.
DEFAULT_COLUMNS = (
    F.IP_SRC, F.IP_DST, F.IP_PROTO, F.PAYLOAD,
)

_SHORT = {
    F.IP_SRC: "IP SRC",
    F.IP_DST: "IP DST",
    F.IP_PROTO: "PROT",
    F.IP_TTL: "TTL",
    F.IP_TOS: "TOS",
    F.TP_SRC: "SPORT",
    F.TP_DST: "DPORT",
    F.TCP_FLAGS: "FLAGS",
    F.PAYLOAD: "DATA",
}


def _label_for(
    flow: SymFlow,
    snapshot: Dict[str, int],
    field: str,
    var_names: Dict[int, str],
) -> str:
    """Human-readable cell: a constant, a range, or a variable name."""
    uid = snapshot.get(field)
    if uid is None:
        return "-"
    domain = domain_at(flow, snapshot, field)
    value = domain.singleton_value() if domain is not None else None
    if value is not None:
        if field in (F.IP_SRC, F.IP_DST):
            return format_ip(value)
        if field == F.IP_PROTO:
            return F.PROTO_NAMES.get(value, str(value))
        return str(value)
    if uid not in var_names:
        var_names[uid] = _next_var_name(len(var_names))
    name = var_names[uid]
    if domain is not None and _is_proper_subset(domain, field):
        return "%s*" % name  # constrained but not a constant
    return name


def _next_var_name(index: int) -> str:
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    name = letters[index % 26]
    if index >= 26:
        name += str(index // 26)
    return name


def _is_proper_subset(domain: IntervalSet, field: str) -> bool:
    from repro.symexec.sympacket import DEFAULT_UNIVERSE, FIELD_UNIVERSES

    universe = FIELD_UNIVERSES.get(field, DEFAULT_UNIVERSE)
    return domain != universe


def format_trace(
    flow: SymFlow,
    columns: Sequence[str] = DEFAULT_COLUMNS,
    title: Optional[str] = None,
) -> str:
    """Render one flow's trace as a Figure 2-style table.

    Cells show constants where the domain is a singleton and stable
    variable letters otherwise (``A*`` marks a constrained variable);
    a trailing ``<`` marks cells whose binding changed at that hop.
    """
    var_names: Dict[int, str] = {}
    headers = ["node"] + [_SHORT.get(c, c) for c in columns]
    rows: List[List[str]] = []
    previous: Optional[Dict[str, int]] = None
    for entry in flow.trace:
        row = [entry.node]
        for column in columns:
            label = _label_for(flow, entry.snapshot, column, var_names)
            changed = (
                previous is not None
                and previous.get(column) != entry.snapshot.get(column)
            )
            row.append(label + (" <" if changed else ""))
        rows.append(row)
        previous = entry.snapshot
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(
        "%-*s" % (w, h) for w, h in zip(widths, headers)
    ))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in rows:
        lines.append("  ".join(
            "%-*s" % (w, c) for w, c in zip(widths, row)
        ))
    return "\n".join(lines)


def format_exploration(
    exploration,
    columns: Sequence[str] = DEFAULT_COLUMNS,
    max_flows: int = 8,
) -> str:
    """Render every delivered flow of an exploration."""
    parts = []
    for index, flow in enumerate(exploration.delivered[:max_flows]):
        parts.append(format_trace(
            flow, columns,
            title="flow %d of %d:" % (index + 1,
                                      len(exploration.delivered)),
        ))
    if len(exploration.delivered) > max_flows:
        parts.append(
            "... %d more flows"
            % (len(exploration.delivered) - max_flows)
        )
    return "\n\n".join(parts)
