"""Automatic failover of a dead platform's modules.

When the :class:`~repro.resilience.health.HealthMonitor` declares a
platform dead, the :class:`FailoverEngine`:

1. marks the platform failed in the topology (it stops being a
   placement candidate) and bumps the model epoch,
2. evacuates every module deployed there through the controller's
   ``migrate()`` fast path -- each module is trial-placed on a
   surviving platform, its stored client requirements are re-verified
   with the verdict-cache/incremental-compilation machinery, and the
   bookkeeping (flow rules, client addresses, journal) is swapped
   atomically,
3. re-verifies the whole snapshot (operator requirements included) and
   recomputes routes,
4. records the episode: per-outcome counters and the
   ``resilience_recovery_seconds`` MTTR histogram.

MTTR model: detection latency (crash -> the monitor's declaration, a
function of ``check_interval_s * miss_threshold``) plus the slowest
evacuated module's suspend->transfer->resume downtime.  Evacuations
run concurrently in the model, so the max -- not the sum -- bounds
recovery; this is what ``benchmarks/recovery_time_check.py`` gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.common.errors import ConfigError
from repro.netmodel.topology import Platform


@dataclass
class FailoverReport:
    """What one platform failover did."""

    platform: str
    #: Simulated time the fault occurred (caller-supplied) and the
    #: monitor declared it.
    failed_at: float = 0.0
    detected_at: float = 0.0
    #: Modules moved to survivors / left stranded (no viable target).
    evacuated: List[str] = field(default_factory=list)
    stranded: List[str] = field(default_factory=list)
    #: Snapshot re-verification results that failed afterwards.
    broken_requirements: List[str] = field(default_factory=list)
    #: Slowest single evacuation's modeled downtime.
    max_downtime_s: float = 0.0
    #: Mean-time-to-recovery: detection latency + slowest downtime.
    mttr_s: float = 0.0

    @property
    def complete(self) -> bool:
        """Every module found a new home and requirements re-verify."""
        return not self.stranded and not self.broken_requirements


class FailoverEngine:
    """Evacuates dead platforms through the controller."""

    def __init__(
        self,
        controller,
        clock: Optional[Callable[[], float]] = None,
        obs=None,
    ):
        from repro.obs import NULL_OBSERVABILITY

        self.controller = controller
        #: Simulated-time source; defaults to the controller's clock.
        self._clock = clock if clock is not None else controller._clock
        obs = obs if obs is not None else NULL_OBSERVABILITY
        self._tracer = obs.tracer
        metrics = obs.metrics
        self._c_failovers = metrics.counter(
            "resilience_failovers_total",
            "Platform failovers by outcome", labels=("outcome",),
        )
        self._c_evacuated = metrics.counter(
            "resilience_modules_evacuated_total",
            "Modules moved off dead platforms",
        )
        self._h_recovery = metrics.histogram(
            "resilience_recovery_seconds",
            "Simulated MTTR per platform failover",
        )
        self.reports: List[FailoverReport] = []

    def handle_platform_failure(
        self,
        platform_name: str,
        failed_at: Optional[float] = None,
    ) -> FailoverReport:
        """Evacuate a dead platform; returns the episode report.

        ``failed_at`` is the simulated time the platform actually
        died (the chaos harness knows it exactly); it defaults to the
        detection time, which under-reports MTTR by the detection
        latency.
        """
        detected_at = self._clock()
        if failed_at is None:
            failed_at = detected_at
        report = FailoverReport(
            platform=platform_name,
            failed_at=failed_at,
            detected_at=detected_at,
        )
        controller = self.controller
        network = controller.network
        with self._tracer.span("failover", platform=platform_name):
            try:
                platform = network.node(platform_name)
            except ConfigError:
                platform = None
            if isinstance(platform, Platform) and platform.up:
                platform.mark_failed()
                network.bump_epoch()
            with self._tracer.span("evacuate"):
                outcomes = controller.evacuate(platform_name)
            for outcome in outcomes:
                if outcome.migrated:
                    report.evacuated.append(outcome.module_id)
                    report.max_downtime_s = max(
                        report.max_downtime_s,
                        outcome.downtime_seconds,
                    )
                else:
                    report.stranded.append(outcome.module_id)
            self._c_evacuated.inc(len(report.evacuated))
            with self._tracer.span("reverify"):
                results = controller.verify_snapshot()
            report.broken_requirements = [
                str(result.requirement)
                for result in results if not result
            ]
            network.compute_routes()
        # Evacuations are concurrent in the model: MTTR = detection
        # latency + the slowest single module's downtime.
        report.mttr_s = (
            (detected_at - failed_at) + report.max_downtime_s
        )
        self._h_recovery.observe(report.mttr_s)
        self._c_failovers.labels(
            "complete" if report.complete else "degraded"
        ).inc()
        self.reports.append(report)
        return report

    def attach(self, monitor) -> None:
        """Wire a health monitor's failure events to this engine."""
        monitor.on_failure(
            lambda name, _at: self.handle_platform_failure(name)
        )
