"""The controller's write-ahead deployment journal.

Section 4.3's controller is the single point whose loss would strand
every tenant: ``deployed``, ``client_addresses``, and the installed
flow rules exist only in its memory.  The journal fixes that with the
classic write-ahead discipline:

* before mutating state the controller appends an ``intent`` record,
* after the mutation commits it appends a matching ``commit`` record.

:meth:`Controller.recover <repro.core.controller.Controller.recover>`
replays the journal -- folding committed deploys, kills, and
migrations in order, dropping intents that never committed -- and then
*reconciles* the platforms against the rebuilt state (orphan trial
placements left by a crash between intent and commit are undeployed
and their addresses released).  The result converges to the exact
pre-crash control-plane state; the chaos harness asserts digest
equality.

Record format (one JSON object per line via :meth:`to_jsonl`)::

    {"seq": 3, "op": "deploy", "phase": "commit",
     "module_id": "batcher", "client_id": "mobile1",
     "platform": "platform3", "address": 3221225985,
     "sandboxed": false, "proto": 17, "port": 1500,
     "timestamp": 12.5, "config_fingerprint": "..."}

Click configurations and parsed requirement objects ride along
in-memory (replay needs them to re-verify after recovery); the JSONL
projection carries the config *fingerprint* only and is meant for
auditing, not for cross-process replay.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Journal operations.
OP_DEPLOY = "deploy"
OP_KILL = "kill"
OP_MIGRATE = "migrate"
OP_REGISTER = "register-address"

#: Record phases.
PHASE_INTENT = "intent"
PHASE_COMMIT = "commit"


@dataclass
class JournalRecord:
    """One append-only journal entry."""

    seq: int
    op: str
    phase: str
    module_id: str = ""
    client_id: str = ""
    platform: str = ""
    address: Optional[int] = None
    #: Migration provenance.
    source: str = ""
    source_address: Optional[int] = None
    sandboxed: bool = False
    proto: Optional[int] = None
    port: Optional[int] = None
    timestamp: float = 0.0
    #: Free-text provenance for records written on behalf of another
    #: control-plane domain (e.g. ``"reshard:shard-0"`` when a live
    #: reshard adopts a module from a peer shard).  Audit-only: replay
    #: ignores it.
    origin: str = ""
    #: In-memory payloads (not serialized to JSONL).
    config: Optional[object] = None
    requirements: Tuple = ()

    def to_dict(self) -> dict:
        """JSON-safe projection (config reduced to its fingerprint)."""
        out = {
            "seq": self.seq,
            "op": self.op,
            "phase": self.phase,
            "module_id": self.module_id,
            "client_id": self.client_id,
            "platform": self.platform,
            "address": self.address,
            "sandboxed": self.sandboxed,
            "proto": self.proto,
            "port": self.port,
            "timestamp": self.timestamp,
        }
        if self.op == OP_MIGRATE:
            out["source"] = self.source
            out["source_address"] = self.source_address
        if self.origin:
            out["origin"] = self.origin
        fingerprint = getattr(self.config, "fingerprint", None)
        if callable(fingerprint):
            out["config_fingerprint"] = fingerprint()
        return out


class DeploymentJournal:
    """Append-only, in-memory write-ahead log of deployment state."""

    def __init__(self, obs=None):
        from repro.obs import NULL_OBSERVABILITY

        self.records: List[JournalRecord] = []
        self._seq = itertools.count(1)
        obs = obs if obs is not None else NULL_OBSERVABILITY
        self._c_records = obs.metrics.counter(
            "resilience_journal_records_total",
            "Journal records appended", labels=("op", "phase"),
        )

    def append(self, op: str, phase: str, **fields) -> JournalRecord:
        """Append one record; returns it (seq assigned)."""
        record = JournalRecord(
            seq=next(self._seq), op=op, phase=phase, **fields
        )
        self.records.append(record)
        self._c_records.labels(op, phase).inc()
        return record

    # -- replay views ------------------------------------------------------
    def committed(self) -> List[JournalRecord]:
        """Commit-phase records in append order."""
        return [r for r in self.records if r.phase == PHASE_COMMIT]

    def pending_intents(self) -> List[JournalRecord]:
        """Intents with no matching commit (in-flight at a crash).

        A commit matches the latest earlier intent with the same op
        and module id.
        """
        open_intents: Dict[Tuple[str, str], List[JournalRecord]] = {}
        for record in self.records:
            key = (record.op, record.module_id)
            if record.phase == PHASE_INTENT:
                open_intents.setdefault(key, []).append(record)
            elif record.phase == PHASE_COMMIT:
                stack = open_intents.get(key)
                if stack:
                    stack.pop()
        return sorted(
            (r for stack in open_intents.values() for r in stack),
            key=lambda r: r.seq,
        )

    def live_state(self) -> Dict[str, JournalRecord]:
        """module id -> effective deployment record after replay.

        Folds committed records in order: deploys create, kills
        remove, migrations rewrite platform/address in place (the
        config, listen steering, and requirements carry over).
        """
        live: Dict[str, JournalRecord] = {}
        for record in self.committed():
            if record.op == OP_DEPLOY:
                live[record.module_id] = record
            elif record.op == OP_KILL:
                live.pop(record.module_id, None)
            elif record.op == OP_MIGRATE:
                base = live.get(record.module_id)
                if base is None:
                    continue
                live[record.module_id] = JournalRecord(
                    seq=record.seq,
                    op=OP_DEPLOY,
                    phase=PHASE_COMMIT,
                    module_id=base.module_id,
                    client_id=base.client_id,
                    platform=record.platform,
                    address=record.address,
                    sandboxed=base.sandboxed,
                    proto=base.proto,
                    port=base.port,
                    timestamp=base.timestamp,
                    config=base.config,
                    requirements=base.requirements,
                )
        return live

    def registered_addresses(self) -> Dict[str, List[int]]:
        """client id -> explicitly registered addresses, in order."""
        out: Dict[str, List[int]] = {}
        for record in self.committed():
            if record.op == OP_REGISTER and record.address is not None:
                out.setdefault(record.client_id, []).append(
                    record.address
                )
        return out

    def deploys_seen(self) -> int:
        """Deploy intents ever written (seeds the module-id counter)."""
        return sum(
            1 for r in self.records
            if r.op == OP_DEPLOY and r.phase == PHASE_INTENT
        )

    # -- serialization -----------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per record, newline separated."""
        return "\n".join(
            json.dumps(r.to_dict(), sort_keys=True) for r in self.records
        )

    def __len__(self) -> int:
        return len(self.records)


class _NullJournal:
    """Shared no-op journal for controllers run without one."""

    __slots__ = ()

    def append(self, op, phase, **fields):
        return None


#: The shared disabled journal (mirrors ``NULL_METRIC``'s idiom).
NULL_JOURNAL = _NullJournal()
