"""Scripted chaos scenarios over the simulated control plane.

Each scenario builds a small operator world (controller + journal +
health monitor + failover engine + per-platform simulators on one
event loop), arms a :class:`~repro.resilience.faults.FaultPlan`, runs
the simulated clock, and checks the :mod:`repro.resilience.invariants`
after **every** scripted event and again at the end.  The four
scenarios are the PR's acceptance matrix:

* ``platform-crash``    -- a platform with two tenant modules dies;
  the health monitor detects it and the failover engine evacuates both
  to survivors.  Asserts recovery completeness and records MTTR.
* ``boot-timeout-storm``-- a seeded burst of boot timeouts; backoff
  retries absorb what the budget allows, and once the storm clears
  every client's VM comes up.  Asserts switch-level consistency.
* ``link-flap-migration`` -- a migration attempted while the target's
  uplink is down must fail *and roll back exactly*; after the flap
  heals the same migration succeeds.
* ``controller-restart`` -- the controller dies between a deploy's
  intent and commit; a replacement built with
  :meth:`Controller.recover <repro.core.controller.Controller.recover>`
  must reconcile the orphan trial placement and converge to the exact
  pre-crash state (digest equality).

The module topology keeps every platform's reachability load-bearing:
tenant requirements route symbolic traffic *through* the module
(``<module>:dst:0``), so an unreachable platform genuinely fails
verification instead of being silently accepted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.controller import Controller
from repro.core.requests import ClientRequest, ROLE_CLIENT
from repro.netmodel.topology import Network
from repro.platform.clickos import PlatformSim
from repro.resilience.failover import FailoverEngine
from repro.resilience.faults import FaultInjector, FaultPlan, PlannedFault
from repro.resilience.health import HealthMonitor
from repro.resilience.invariants import (
    check_switch_invariants,
    collect_violations,
    controller_state_digest,
)
from repro.resilience.journal import (
    DeploymentJournal,
    OP_DEPLOY,
    PHASE_INTENT,
)
from repro.resilience.retry import RetryPolicy
from repro.sim.events import EventLoop

#: The tenant's registered endpoint (the Figure 4 mobile client).
CLIENT_ADDR = "172.16.15.133"

#: The Figure 4 batcher, parameterized by the client address.
_MODULE_CONFIG = """
    FromNetfront() ->
    IPFilter(allow udp port 1500) ->
    IPRewriter(pattern - - %s - 0 0)
    -> TimedUnqueue(120, 100)
    -> dst :: ToNetfront();
"""

#: Health-monitor cadence for the scenarios: a dead platform is
#: declared after 2 missed 0.5 s probes, so detection latency is
#: 0.5-1.0 s of simulated time.
CHECK_INTERVAL_S = 0.5
MISS_THRESHOLD = 2

#: Retry policy shared by the scenarios (short backoffs on the
#: simulated clock).
CHAOS_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_delay_s=0.05, multiplier=2.0,
    max_delay_s=0.5, jitter=0.1,
)


def _module_request(
    client_id: str, module_name: str, client_addr: str = CLIENT_ADDR
) -> ClientRequest:
    """A tenant request whose requirement traverses the module."""
    return ClientRequest(
        client_id=client_id,
        role=ROLE_CLIENT,
        config_source=_MODULE_CONFIG % (client_addr,),
        requirements=(
            "reach from internet udp"
            " -> %s:dst:0 dst %s"
            " -> client dst port 1500" % (module_name, client_addr)
        ),
        owned_addresses=(client_addr,),
        module_name=module_name,
        listen="udp 1500",
    )


def chaos_network() -> Network:
    """The chaos topology: three platforms off the border router.

    ::

        internet -- r1 -- pa / pb / pc   (capacity 4 each)
                     |
                    r2 -- clients (172.16/16)

    Tenant requirements route through the deployed module, so cutting
    an ``r1 <-> platform`` link makes that platform fail verification.
    """
    net = Network("chaos")
    net.add_internet()
    net.add_router("r1")
    net.add_router("r2")
    net.add_client_subnet("clients", "172.16.0.0/16")
    net.add_platform("pa", "10.1.0.0/24", capacity=4)
    net.add_platform("pb", "10.2.0.0/24", capacity=4)
    net.add_platform("pc", "10.3.0.0/24", capacity=4)
    net.link("internet", "r1")
    net.link("r1", "pa")
    net.link("r1", "pb")
    net.link("r1", "pc")
    net.link("r1", "r2")
    net.link("r2", "clients")
    net.compute_routes()
    return net


@dataclass
class ChaosReport:
    """Outcome of one scenario run."""

    scenario: str
    seed: int
    events: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    #: Modules moved during failover (platform-crash scenario).
    evacuated: List[str] = field(default_factory=list)
    #: Simulated MTTR of the failover (platform-crash scenario).
    mttr_s: Optional[float] = None
    #: Pre-crash digest == post-recovery digest (restart scenario).
    digest_equal: Optional[bool] = None
    faults_injected: int = 0

    @property
    def passed(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        extra = ""
        if self.mttr_s is not None:
            extra = " mttr=%.3fs" % self.mttr_s
        if self.digest_equal is not None:
            extra += " digest_equal=%s" % self.digest_equal
        return "%s %s seed=%d events=%d faults=%d%s" % (
            status, self.scenario, self.seed, len(self.events),
            self.faults_injected, extra,
        )


class ChaosWorld:
    """One scenario's simulated operator, on one event loop."""

    def __init__(self, seed: int = 0, obs=None):
        self.loop = EventLoop()
        self.injector = FaultInjector(seed=seed, obs=obs)
        self.journal = DeploymentJournal(obs=obs)
        self.network = chaos_network()
        self.controller = Controller(
            self.network,
            clock=lambda: self.loop.now,
            obs=obs,
            journal=self.journal,
        )
        self.sims: Dict[str, PlatformSim] = {
            name: PlatformSim(
                loop=self.loop, obs=obs, name=name,
                injector=self.injector,
                retry_policy=CHAOS_RETRY_POLICY,
            )
            for name in ("pa", "pb", "pc")
        }
        self.monitor = HealthMonitor(
            self.loop,
            check_interval_s=CHECK_INTERVAL_S,
            miss_threshold=MISS_THRESHOLD,
            obs=obs,
        )
        self.engine = FailoverEngine(
            self.controller, clock=lambda: self.loop.now, obs=obs,
        )
        #: platform -> simulated time the plan crashed it.
        self.crash_times: Dict[str, float] = {}
        for name, sim in self.sims.items():
            self.monitor.watch(
                name, lambda s=sim: not s.crashed
            )
        self.monitor.on_failure(self._on_platform_failure)
        self.monitor.on_recovery(self._on_platform_recovery)
        self.events: List[str] = []
        self.violations: List[str] = []

    # -- monitor wiring ----------------------------------------------------
    def _on_platform_failure(self, name: str, detected_at: float) -> None:
        self.events.append(
            "t=%.2f detected failure of %s" % (detected_at, name)
        )
        self.engine.handle_platform_failure(
            name, failed_at=self.crash_times.get(name)
        )
        self._check("failover %s" % name)

    def _on_platform_recovery(self, name: str, at: float) -> None:
        self.events.append("t=%.2f %s recovered" % (at, name))
        self.network.node(name).mark_recovered()
        self.network.bump_epoch()
        self._check("recovery %s" % name)

    # -- invariant checking ------------------------------------------------
    def _check(self, context: str) -> None:
        problems = collect_violations(self.controller)
        self.violations.extend(
            "%s: %s" % (context, p) for p in problems
        )

    # -- plan execution ----------------------------------------------------
    def run_plan(self, plan_text: str, until: float) -> None:
        """Arm a fault plan and drive the clock to ``until``."""
        plan = FaultPlan.parse(plan_text)
        plan.schedule(self.loop, self.apply)
        self.monitor.start()
        self.loop.run_until(until)
        self.monitor.stop()

    def apply(self, entry: PlannedFault) -> None:
        """Execute one plan entry, then re-check the invariants."""
        self.events.append("t=%.2f %s" % (self.loop.now, entry))
        action, args = entry.action, entry.args
        if action == "crash-platform":
            name = args[0]
            self.sims[name].crash()
            self.crash_times[name] = self.loop.now
        elif action == "restore-platform":
            self.sims[args[0]].restore()
        elif action == "crash-vm":
            platform, client = args[0], args[1]
            vm = self.sims[platform].switch.client_vms[client]
            vm.terminate()
        elif action == "link-down":
            self.network.unlink(args[0], args[1])
        elif action == "link-up":
            self.network.link(args[0], args[1])
        elif action == "flap-link":
            a, b, down_for = args[0], args[1], float(args[2])
            self.network.unlink(a, b)
            self.loop.schedule(
                down_for, lambda: self._relink(a, b)
            )
        elif action == "fail":
            op = args[0]
            target = args[1] if len(args) > 1 else None
            self.injector.fail_next(
                op, target=target,
                times=int(entry.option("times", "1")),
                kind=entry.option("kind", "crash"),
                delay_s=float(entry.option("delay", "0")),
            )
        elif action == "rate":
            self.injector.set_rate(
                args[0], float(args[1]),
                kind=entry.option("kind", "crash"),
                delay_s=float(entry.option("delay", "0")),
            )
        elif action == "clear-rate":
            self.injector.clear_rate(args[0])
        # restart-controller is scenario-driven (see
        # _scenario_controller_restart): it needs to hold both the old
        # and the recovered controller to compare digests.
        self._check(str(entry))

    def _relink(self, a: str, b: str) -> None:
        self.events.append("t=%.2f link-up %s %s" % (self.loop.now, a, b))
        self.network.link(a, b)
        self._check("link-up %s %s" % (a, b))


# -- the four scenarios ------------------------------------------------------
def _scenario_platform_crash(seed: int, obs=None) -> ChaosReport:
    """A platform dies under two tenant modules; both are evacuated."""
    world = ChaosWorld(seed=seed, obs=obs)
    report = ChaosReport(scenario="platform-crash", seed=seed)
    for client, module in (
        ("mobile1", "m1"), ("mobile2", "m2"),
    ):
        result = world.controller.request(
            _module_request(client, module), pinned_platform="pa"
        )
        if not result:
            report.failures.append(
                "setup deploy %s failed: %s" % (module, result.reason)
            )
            return report
    result = world.controller.request(
        _module_request("mobile3", "m3"), pinned_platform="pb"
    )
    if not result:
        report.failures.append("setup deploy m3 failed: %s" % result.reason)
        return report
    world._check("setup")
    world.run_plan("at 5.0 crash-platform pa\n", until=12.0)
    report.events = world.events
    report.failures.extend(world.violations)
    report.faults_injected = len(world.injector.injected)
    if not world.engine.reports:
        report.failures.append("platform failure was never detected")
        return report
    failover = world.engine.reports[0]
    report.evacuated = list(failover.evacuated)
    report.mttr_s = failover.mttr_s
    if sorted(failover.evacuated) != ["m1", "m2"]:
        report.failures.append(
            "expected m1+m2 evacuated, got %s" % (failover.evacuated,)
        )
    if failover.stranded:
        report.failures.append("stranded: %s" % (failover.stranded,))
    if failover.broken_requirements:
        report.failures.append(
            "requirements broken after failover: %s"
            % (failover.broken_requirements,)
        )
    for module in ("m1", "m2"):
        home = world.controller.deployed[module].platform
        if home == "pa":
            report.failures.append("%s still on the dead platform" % module)
    if world.controller.deployed["m3"].platform != "pb":
        report.failures.append("bystander m3 was moved")
    return report


def _scenario_boot_timeout_storm(seed: int, obs=None) -> ChaosReport:
    """A burst of boot timeouts; retries absorb it, then all VMs rise."""
    world = ChaosWorld(seed=seed, obs=obs)
    report = ChaosReport(scenario="boot-timeout-storm", seed=seed)
    sim = world.sims["pa"]
    clients = ["c%d" % i for i in range(5)]
    for client in clients:
        sim.register_client(client)
    first = {
        client: sim.ping(client, start=0.1, count=1)
        for client in clients
    }
    plan = (
        "at 0.0 rate boot 0.5 kind=timeout delay=0.05\n"
        "at 2.0 clear-rate boot\n"
    )
    world.run_plan(plan, until=4.0)
    # The storm is over: every client pings again; with no faults left
    # a stopped VM boots cleanly and a mid-retry VM finishes coming up.
    second = {
        client: sim.ping(client, start=world.loop.now + 0.1, count=1)
        for client in clients
    }
    world.loop.run_until(world.loop.now + 4.0)
    report.events = world.events
    report.failures.extend(world.violations)
    report.faults_injected = len(world.injector.injected)
    if report.faults_injected == 0:
        report.failures.append("storm injected no faults")
    for client in clients:
        if not second[client].rtts:
            report.failures.append(
                "client %s never came up after the storm" % client
            )
    survivors = sum(1 for r in first.values() if r.rtts)
    delivered = survivors + sum(1 for r in second.values() if r.rtts)
    if delivered == 0:
        report.failures.append("no ping was ever delivered")
    report.failures.extend(check_switch_invariants(sim.switch))
    if sim.switch.boot_failures_seen != report.faults_injected:
        report.failures.append(
            "boot failures seen (%d) != faults injected (%d)"
            % (sim.switch.boot_failures_seen, report.faults_injected)
        )
    return report


def _scenario_link_flap_migration(seed: int, obs=None) -> ChaosReport:
    """A migration during a link flap fails cleanly, then succeeds."""
    world = ChaosWorld(seed=seed, obs=obs)
    report = ChaosReport(scenario="link-flap-migration", seed=seed)
    result = world.controller.request(
        _module_request("mobile1", "m1"), pinned_platform="pa"
    )
    if not result:
        report.failures.append("setup deploy failed: %s" % result.reason)
        return report
    world._check("setup")
    outcomes: Dict[str, object] = {}

    def migrate_during_flap() -> None:
        before = controller_state_digest(world.controller)
        attempt = world.controller.migrate("m1", "pb")
        outcomes["during"] = attempt
        after = controller_state_digest(world.controller)
        outcomes["rollback_exact"] = (before == after)
        world._check("migrate during flap")

    def migrate_after_heal() -> None:
        outcomes["after"] = world.controller.migrate("m1", "pb")
        world._check("migrate after heal")

    world.loop.schedule_at(1.5, migrate_during_flap)
    world.loop.schedule_at(3.0, migrate_after_heal)
    world.run_plan("at 1.0 flap-link r1 pb 1.0\n", until=5.0)
    report.events = world.events
    report.failures.extend(world.violations)
    report.faults_injected = len(world.injector.injected)
    during = outcomes.get("during")
    if during is None or during.migrated:
        report.failures.append(
            "migration to an unreachable platform was accepted"
        )
    if not outcomes.get("rollback_exact"):
        report.failures.append(
            "failed migration did not restore the exact prior state"
        )
    healed = outcomes.get("after")
    if healed is None or not healed.migrated:
        report.failures.append(
            "migration after the flap healed did not succeed: %s"
            % (getattr(healed, "reason", "never ran"),)
        )
    elif world.controller.deployed["m1"].platform != "pb":
        report.failures.append("m1 did not land on pb")
    return report


def _scenario_controller_restart(seed: int, obs=None) -> ChaosReport:
    """The controller dies mid-deploy; journal replay reconverges."""
    world = ChaosWorld(seed=seed, obs=obs)
    report = ChaosReport(scenario="controller-restart", seed=seed)
    for client, module, platform in (
        ("mobile1", "m1", "pa"), ("mobile2", "m2", "pb"),
    ):
        result = world.controller.request(
            _module_request(client, module), pinned_platform=platform
        )
        if not result:
            report.failures.append(
                "setup deploy %s failed: %s" % (module, result.reason)
            )
            return report
    world._check("setup")
    digest_before = controller_state_digest(world.controller)
    # The controller crashes between a deploy's intent record and its
    # commit: the trial placement sits on pc, the journal holds an
    # unmatched intent, and the in-memory controller state is gone.
    pc = world.network.node("pc")
    orphan_address = pc.allocate_address()
    orphan_config = _module_request(
        "mobile3", "m3"
    ).parse_click_config()
    world.journal.append(
        OP_DEPLOY, PHASE_INTENT,
        module_id="m3", client_id="mobile3", platform="pc",
        address=orphan_address, sandboxed=False, proto=17, port=1500,
        timestamp=world.loop.now, config=orphan_config,
    )
    pc.deploy("m3", orphan_address, orphan_config, proto=17, port=1500)
    report.events.append("controller crashed mid-deploy of m3")
    recovered = Controller.recover(
        world.network, world.journal,
        clock=lambda: world.loop.now, obs=obs,
    )
    report.events.append("controller recovered from journal replay")
    digest_after = controller_state_digest(recovered)
    report.digest_equal = (digest_before == digest_after)
    if not report.digest_equal:
        report.failures.append(
            "journal replay did not reconstruct the pre-crash state"
        )
    report.failures.extend(
        "post-recovery: %s" % p for p in collect_violations(recovered)
    )
    if "m3" in pc.modules:
        report.failures.append("orphan trial placement m3 not reconciled")
    intents = [
        r.module_id for r in world.journal.pending_intents()
    ]
    if intents != ["m3"]:
        report.failures.append(
            "expected one pending intent for m3, got %s" % (intents,)
        )
    # The recovered controller must be fully operational: a fresh
    # deploy lands, and a pre-crash module can be killed.
    result = recovered.request(
        _module_request("mobile4", "m4"), pinned_platform="pc"
    )
    if not result:
        report.failures.append(
            "post-recovery deploy denied: %s" % result.reason
        )
    if not recovered.kill("m1"):
        report.failures.append("post-recovery kill of m1 failed")
    report.failures.extend(
        "post-recovery ops: %s" % p for p in collect_violations(recovered)
    )
    report.faults_injected = len(world.injector.injected)
    return report


SCENARIOS: Dict[str, Callable[..., ChaosReport]] = {
    "platform-crash": _scenario_platform_crash,
    "boot-timeout-storm": _scenario_boot_timeout_storm,
    "link-flap-migration": _scenario_link_flap_migration,
    "controller-restart": _scenario_controller_restart,
}


def run_scenario(name: str, seed: int = 0, obs=None) -> ChaosReport:
    """Run one scenario; returns its report (never raises on failure)."""
    try:
        runner = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            "unknown chaos scenario %r (have: %s)"
            % (name, ", ".join(sorted(SCENARIOS)))
        )
    return runner(seed, obs=obs)


def run_all(seeds=(1, 2, 3), obs=None) -> List[ChaosReport]:
    """Every scenario across every seed, in a stable order."""
    return [
        run_scenario(name, seed=seed, obs=obs)
        for name in sorted(SCENARIOS)
        for seed in seeds
    ]
