"""Controller-side platform liveness monitoring.

The controller cannot see a platform die -- it only sees requests and
migrations fail.  The :class:`HealthMonitor` closes that gap: each
watched platform gets a liveness *probe* (a callable; in the simulator
it reads the platform sim's ``crashed`` flag, in a real deployment it
would be a heartbeat RPC), checked every ``check_interval_s`` on the
event loop.  ``miss_threshold`` consecutive failed probes declare the
platform dead and fire the registered failure callbacks -- normally
:meth:`FailoverEngine.handle_platform_failure
<repro.resilience.failover.FailoverEngine.handle_platform_failure>`.

A probe that starts succeeding again after a declared failure fires
the recovery callbacks (the operator repaired the box); re-admitting
it as a placement candidate is the callback's decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class WatchedPlatform:
    """Probe state for one watched platform."""

    name: str
    probe: Callable[[], bool]
    alive: bool = True
    misses: int = 0
    last_ok: float = 0.0
    failed_at: Optional[float] = None


class HealthMonitor:
    """Periodic liveness checks over an event loop."""

    def __init__(
        self,
        loop,
        check_interval_s: float = 1.0,
        miss_threshold: int = 3,
        obs=None,
    ):
        from repro.obs import NULL_OBSERVABILITY

        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.loop = loop
        self.check_interval_s = check_interval_s
        self.miss_threshold = miss_threshold
        self.watched: Dict[str, WatchedPlatform] = {}
        self._on_failure: List[Callable[[str, float], None]] = []
        self._on_recovery: List[Callable[[str, float], None]] = []
        self._timer = None
        obs = obs if obs is not None else NULL_OBSERVABILITY
        metrics = obs.metrics
        self._c_checks = metrics.counter(
            "resilience_health_checks_total",
            "Liveness probes by result", labels=("result",),
        )
        self._g_down = metrics.gauge(
            "resilience_platforms_down",
            "Watched platforms currently declared dead",
        )

    # -- registration ------------------------------------------------------
    def watch(self, name: str, probe: Callable[[], bool]) -> None:
        """Start watching a platform; ``probe()`` truthy = alive."""
        self.watched[name] = WatchedPlatform(
            name=name, probe=probe, last_ok=self.loop.now
        )

    def unwatch(self, name: str) -> None:
        self.watched.pop(name, None)

    def on_failure(
        self, callback: Callable[[str, float], None]
    ) -> None:
        """Register ``callback(name, detected_at)`` for declared deaths."""
        self._on_failure.append(callback)

    def on_recovery(
        self, callback: Callable[[str, float], None]
    ) -> None:
        """Register ``callback(name, at)`` for probes coming back."""
        self._on_recovery.append(callback)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Begin periodic checks on the event loop."""
        if self._timer is None:
            self._timer = self.loop.every(
                self.check_interval_s, self.check_now
            )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- checks ------------------------------------------------------------
    def check_now(self) -> None:
        """Probe every watched platform once (also the periodic tick).

        Iterates over a snapshot: a failure/recovery callback may
        legitimately ``watch``/``unwatch`` targets (e.g. a federation
        failover retiring the dead shard's probe) without blowing up
        the sweep that invoked it.
        """
        now = self.loop.now
        for state in list(self.watched.values()):
            try:
                ok = bool(state.probe())
            except Exception:
                # A probe that *errors* is indistinguishable from a
                # dead platform -- count it as a miss, never let it
                # kill the monitor loop.
                ok = False
            if ok:
                self._c_checks.labels("ok").inc()
                state.misses = 0
                state.last_ok = now
                if not state.alive:
                    state.alive = True
                    state.failed_at = None
                    self._g_down.dec()
                    for callback in self._on_recovery:
                        callback(state.name, now)
                continue
            self._c_checks.labels("miss").inc()
            state.misses += 1
            if state.alive and state.misses >= self.miss_threshold:
                state.alive = False
                state.failed_at = now
                self._g_down.inc()
                for callback in self._on_failure:
                    callback(state.name, now)

    def status(self) -> Dict[str, dict]:
        """Per-platform probe state for operators and tests."""
        return {
            name: {
                "alive": state.alive,
                "misses": state.misses,
                "last_ok": state.last_ok,
                "failed_at": state.failed_at,
            }
            for name, state in sorted(self.watched.items())
        }
