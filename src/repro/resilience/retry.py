"""Retry policies for lifecycle operations.

The failure model's contract: *transient* faults (a flaky toolstack
boot, a hung resume) are absorbed by bounded retries with exponential
backoff, and only *permanent* conditions -- retries exhausted, deadline
blown -- surface to callers, as typed
:class:`~repro.common.errors.FaultError` subclasses.

Two consumers:

* the platform switch (:mod:`repro.platform.switch`) schedules its
  boot/resume retries asynchronously on the event loop, spaced by
  :meth:`RetryPolicy.backoff_s`,
* synchronous facade operations (``suspend_resume_cycle``, reaper
  sweeps, federation calls) run through :func:`call_with_retries`.

Jitter draws come from the caller's RNG (normally the fault injector's
seeded ``random.Random``), so a scenario's timing is reproducible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.common.errors import RetryExhaustedError, TransientFaultError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff/deadline knobs for one class of operations.

    ``backoff_s(n)`` for failure number ``n`` (1-based) is
    ``base_delay_s * multiplier ** (n - 1)``, capped at
    ``max_delay_s``, then spread by ``+/- jitter`` (a fraction) when an
    RNG is supplied.  ``deadline_s`` bounds the total elapsed time
    across attempts; ``timeout_s`` is the per-operation watchdog the
    platform applies to one attempt (timeout faults stall this long
    before failing).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    #: Fractional spread around each delay (0.1 = +/-10%).
    jitter: float = 0.1
    #: Total time budget across attempts (None = unbounded).
    deadline_s: Optional[float] = None
    #: Per-attempt watchdog (None = the operation's natural latency).
    timeout_s: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_s(self, failure: int, rng=None) -> float:
        """Delay before the retry that follows failure ``failure``."""
        if failure < 1:
            raise ValueError("failure number is 1-based")
        delay = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** (failure - 1),
        )
        if rng is not None and self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)


#: Defaults matching the platform switch's historical behavior
#: (3 attempts) with a short first backoff on the simulated clock.
DEFAULT_LIFECYCLE_POLICY = RetryPolicy()


def call_with_retries(
    fn: Callable[[], T],
    *,
    op: str = "operation",
    policy: Optional[RetryPolicy] = None,
    injector=None,
    target: Optional[str] = None,
    clock: Optional[Callable[[], float]] = None,
    sleep: Optional[Callable[[float], None]] = None,
    obs=None,
) -> T:
    """Run ``fn`` under a retry policy; absorb transient faults.

    Before each attempt the ``injector`` (when given) may veto it with
    an injected fault.  :class:`TransientFaultError` raised by the
    attempt (or the injector) consumes one attempt; any other
    exception propagates immediately.  When attempts or the deadline
    run out, :class:`RetryExhaustedError` is raised from the last
    fault.

    ``sleep`` receives each backoff delay -- in simulated-time callers
    this advances the event loop (``lambda d: loop.run_until(loop.now
    + d)``); it defaults to no delay so synchronous wall-clock callers
    do not stall.
    """
    from repro.obs import NULL_OBSERVABILITY

    policy = policy if policy is not None else DEFAULT_LIFECYCLE_POLICY
    clock = clock if clock is not None else time.monotonic
    metrics = (obs if obs is not None else NULL_OBSERVABILITY).metrics
    c_retries = metrics.counter(
        "resilience_retries_total",
        "Retries of faulted lifecycle operations", labels=("op",),
    )
    c_exhausted = metrics.counter(
        "resilience_retry_exhausted_total",
        "Operations abandoned after the retry budget", labels=("op",),
    )
    rng = injector.rng if injector is not None else None
    started = clock()
    last: Optional[TransientFaultError] = None
    for failure in range(1, policy.max_attempts + 1):
        try:
            if injector is not None:
                injector.raise_for(op, target)
            return fn()
        except TransientFaultError as exc:
            last = exc
            if failure >= policy.max_attempts:
                break
            elapsed = clock() - started
            if (
                policy.deadline_s is not None
                and elapsed >= policy.deadline_s
            ):
                break
            c_retries.labels(op).inc()
            delay = policy.backoff_s(failure, rng=rng)
            if sleep is not None and delay > 0:
                sleep(delay)
    c_exhausted.labels(op).inc()
    raise RetryExhaustedError(
        "%s failed after %d attempt(s): %s"
        % (op, policy.max_attempts, last)
    ) from last
