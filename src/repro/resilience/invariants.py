"""System invariants the control plane must preserve under faults.

The chaos harness calls :func:`check_invariants` after **every**
scripted event; a violation means a fault path corrupted control-plane
state.  At control-plane quiesce (no admission or migration in flight)
the following must hold:

1. *Placement bijection* -- the controller's ``deployed`` map and the
   platforms' ``modules`` maps describe exactly the same set of
   modules, with matching addresses.  No module is lost, stranded, or
   double-deployed.
2. *Flow rules* -- the controller's recorded steering rules are
   exactly ``{(platform, address): module}`` for the deployed set, and
   each platform's switch table holds a rule with the module's cookie.
3. *Client addresses* -- every deployed module's address is in its
   owner's explicit-authorization set.
4. *No leaked addresses* -- per platform,
   ``allocated_total - released_total == len(modules)``: every address
   ever handed out was either bound to a live module or returned to
   the pool.  This is the invariant the partial-migration and kill
   fixes exist for.
5. *Placement on live platforms* -- no module is recorded on a
   platform marked failed (failover must have evacuated or reported
   it stranded).
6. *Ledger balanced* -- the set of modules still accruing
   module-hours equals the deployed set.

:func:`controller_state_digest` flattens all of that (plus routes)
into one comparable structure -- the chaos harness uses digest
equality to prove a journal-recovered controller converged to the
pre-crash state.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.common.errors import InNetError
from repro.netmodel.topology import Platform


class InvariantViolation(InNetError):
    """A control-plane safety invariant does not hold."""


def check_invariants(
    controller,
    external_addresses: Optional[Iterable[int]] = None,
) -> None:
    """Raise :class:`InvariantViolation` on the first broken invariant.

    ``external_addresses`` lists addresses legitimately present in
    ``client_addresses`` without a backing module (explicitly
    registered client endpoints); anything else unaccounted for is a
    leak.
    """
    problems = collect_violations(
        controller, external_addresses=external_addresses
    )
    if problems:
        raise InvariantViolation("; ".join(problems))


def collect_violations(
    controller,
    external_addresses: Optional[Iterable[int]] = None,
) -> List[str]:
    """Every broken invariant, as human-readable strings."""
    problems: List[str] = []
    platforms = {p.name: p for p in controller.network.platforms()}
    deployed = controller.deployed

    # 1. Placement bijection.
    platform_modules = {
        module_id: platform.name
    # sorted() keeps the first-found problem deterministic across runs
        for platform in sorted(platforms.values(), key=lambda p: p.name)
        for module_id in platform.modules
    }
    for module_id, record in sorted(deployed.items()):
        home = platforms.get(record.platform)
        if home is None:
            problems.append(
                "module %r recorded on unknown platform %r"
                % (module_id, record.platform)
            )
            continue
        if module_id not in home.modules:
            problems.append(
                "module %r recorded on %r but not deployed there"
                % (module_id, record.platform)
            )
        else:
            address, _config = home.modules[module_id]
            if address != record.address:
                problems.append(
                    "module %r address mismatch: controller says %d, "
                    "platform %r says %d"
                    % (module_id, record.address, home.name, address)
                )
    for module_id, platform_name in sorted(platform_modules.items()):
        if module_id not in deployed:
            problems.append(
                "module %r deployed on %r but unknown to the controller"
                % (module_id, platform_name)
            )
    counted = sum(len(p.modules) for p in platforms.values())
    if counted != len(platform_modules):
        problems.append("a module is deployed on more than one platform")

    # 2. Flow rules, both the controller's record and the switch table.
    expected_rules = {
        (record.platform, record.address): module_id
        for module_id, record in deployed.items()
    }
    if controller.flow_rules != expected_rules:
        extra = set(controller.flow_rules) - set(expected_rules)
        missing = set(expected_rules) - set(controller.flow_rules)
        problems.append(
            "flow rules inconsistent with deployments "
            "(extra=%s missing=%s)" % (sorted(extra), sorted(missing))
        )
    # One cookie set per platform: rebuilding it per module turns
    # this check quadratic on resident-heavy platforms.
    platform_cookies = {
        name: {rule.cookie for rule in platform.flow_table.rules}
        for name, platform in platforms.items()
    }
    for module_id, record in sorted(deployed.items()):
        cookies = platform_cookies.get(record.platform)
        if cookies is None:
            continue
        if module_id not in cookies:
            problems.append(
                "platform %r has no steering rule for module %r"
                % (record.platform, module_id)
            )

    # 3. Client-owned addresses cover every deployed module.
    for module_id, record in sorted(deployed.items()):
        owned = controller.client_addresses.get(record.client_id, set())
        if record.address not in owned:
            problems.append(
                "module %r address not in client %r's authorization set"
                % (module_id, record.client_id)
            )

    # 4. Address-pool leak accounting.
    for name, platform in sorted(platforms.items()):
        outstanding = platform.outstanding_addresses()
        if outstanding != len(platform.modules):
            problems.append(
                "platform %r leaks addresses: %d outstanding, "
                "%d modules" % (name, outstanding, len(platform.modules))
            )

    # 5. No module recorded on a failed platform.
    for module_id, record in sorted(deployed.items()):
        home = platforms.get(record.platform)
        if home is not None and not home.up:
            problems.append(
                "module %r still placed on failed platform %r"
                % (module_id, record.platform)
            )

    # 6. Ledger balance: open billing == deployed set.
    open_ids = getattr(controller.ledger, "open_module_ids", None)
    if callable(open_ids):
        billing = set(open_ids())
        running = set(deployed)
        if billing != running:
            problems.append(
                "ledger unbalanced (billing-only=%s running-only=%s)"
                % (sorted(billing - running), sorted(running - billing))
            )

    # Client-address sets may additionally contain explicitly
    # registered endpoints; anything else is a leaked assignment.
    allowed: Set[int] = set(external_addresses or ())
    allowed.update(record.address for record in deployed.values())
    for client_id, owned in sorted(controller.client_addresses.items()):
        stray = owned - allowed
        if stray:
            problems.append(
                "client %r authorization set holds unaccounted "
                "addresses %s" % (client_id, sorted(stray))
            )
    return problems


def check_switch_invariants(switch) -> List[str]:
    """Platform-switch-level invariants (the boot-storm scenario).

    After the event loop drains: no VM stuck mid-transition, no
    request parked forever in the arrival queue of a VM that is not
    being brought up.
    """
    from repro.platform.vm import VM_BOOTING, VM_RESUMING, VM_RUNNING

    problems: List[str] = []
    for client_id, vm in sorted(switch.client_vms.items()):
        if vm.state in (VM_BOOTING, VM_RESUMING):
            problems.append(
                "VM of client %r stuck in state %r"
                % (client_id, vm.state)
            )
    running = {
        vm.vm_id for vm in switch.client_vms.values()
        if vm.state == VM_RUNNING
    }
    for vm_id, queue in sorted(switch._waiting.items()):
        if queue and vm_id in running:
            problems.append(
                "packets still parked for running VM %d" % (vm_id,)
            )
    return problems


def controller_state_digest(controller) -> dict:
    """A comparable snapshot of the controller's full visible state.

    Two controllers with equal digests are indistinguishable to
    clients: same placements and addresses, same steering rules, same
    authorization sets, same routes.  Used by migration-rollback tests
    (state before == state after a failed migration) and by the
    controller-restart chaos scenario (pre-crash == journal-replayed).
    """
    placements = {
        module_id: {
            "client_id": record.client_id,
            "platform": record.platform,
            "address": record.address,
            "sandboxed": record.sandboxed,
            "requirements": tuple(
                str(r) for r in record.requirements
            ),
        }
        for module_id, record in controller.deployed.items()
    }
    platform_modules = {
        platform.name: {
            module_id: address
            for module_id, (address, _config)
            in platform.modules.items()
        }
        for platform in controller.network.platforms()
    }
    switch_cookies = {
        platform.name: tuple(sorted(
            rule.cookie for rule in platform.flow_table.rules
        ))
        for platform in controller.network.platforms()
    }
    routes = {
        router.name: tuple(sorted(router.table.routes))
        for router in controller.network.routers()
    }
    return {
        "placements": placements,
        "platform_modules": platform_modules,
        "switch_cookies": switch_cookies,
        "flow_rules": dict(controller.flow_rules),
        "client_addresses": {
            client_id: frozenset(owned)
            for client_id, owned in controller.client_addresses.items()
            if owned
        },
        "routes": routes,
    }
