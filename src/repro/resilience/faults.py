"""Deterministic fault injection.

Two complementary mechanisms:

* :class:`FaultInjector` -- the *decision* side.  Instrumented
  operations (VM boots, suspends, resumes, migrations) ask
  :meth:`FaultInjector.draw` whether this attempt fails.  Failures come
  from explicit queues (``fail_next``) or seeded probabilistic rates
  (``set_rate``); both are driven by one ``random.Random(seed)``, so a
  scenario replays identically for the same seed.

* :class:`FaultPlan` -- the *schedule* side.  A declarative script of
  timed fault actions over the simulated clock::

      at 5.0  crash-platform pa
      at 7.0  flap-link r1 pb 2.0
      at 3.0  fail boot pa times=2 kind=timeout delay=1.0

  The plan itself only parses and schedules; the chaos harness
  (:mod:`repro.resilience.chaos`) supplies the ``apply`` callback that
  turns each entry into concrete world mutations.

Fault *kinds*: a ``crash`` fails the operation after its normal
latency (the toolstack died mid-flight); a ``timeout`` stalls for an
extra ``delay_s`` before failing (the operation hung until a watchdog
expired).  Both surface as
:class:`~repro.common.errors.TransientFaultError` /
:class:`~repro.common.errors.FaultTimeoutError` so the retry layer can
absorb them.
"""

from __future__ import annotations

import random
import shlex
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import (
    FaultTimeoutError,
    SimulationError,
    TransientFaultError,
)

#: Fault kinds.
KIND_CRASH = "crash"
KIND_TIMEOUT = "timeout"

_KINDS = (KIND_CRASH, KIND_TIMEOUT)


@dataclass(frozen=True)
class Fault:
    """One decided fault: operation ``op`` on ``target`` fails."""

    op: str
    kind: str = KIND_CRASH
    target: Optional[str] = None
    #: Extra stall before the failure surfaces (timeout faults).
    delay_s: float = 0.0

    def to_error(self):
        """The typed error this fault surfaces as."""
        detail = "injected %s fault on %s" % (self.kind, self.op)
        if self.target:
            detail += " (target %s)" % self.target
        if self.kind == KIND_TIMEOUT:
            return FaultTimeoutError(detail)
        return TransientFaultError(detail)


class FaultInjector:
    """Seeded source of lifecycle faults.

    One injector is shared by every instrumented component of a
    scenario, so the seed fully determines which attempts fail.
    """

    def __init__(self, seed: int = 0, obs=None):
        from repro.obs import NULL_OBSERVABILITY

        self.seed = seed
        self._rng = random.Random(seed)
        #: (op, target or None) -> queued one-shot faults.
        self._queued: Dict[Tuple[str, Optional[str]], List[Fault]] = {}
        #: op -> (probability, kind, delay_s).
        self._rates: Dict[str, Tuple[float, str, float]] = {}
        #: Every fault handed out, in order (for assertions/reports).
        self.injected: List[Fault] = []
        obs = obs if obs is not None else NULL_OBSERVABILITY
        self._c_injected = obs.metrics.counter(
            "resilience_faults_injected_total",
            "Faults handed to instrumented operations",
            labels=("op", "kind"),
        )

    @property
    def rng(self) -> random.Random:
        """The injector's RNG (shared with retry-jitter draws so one
        seed fixes the whole scenario)."""
        return self._rng

    # -- configuration -----------------------------------------------------
    def fail_next(
        self,
        op: str,
        target: Optional[str] = None,
        times: int = 1,
        kind: str = KIND_CRASH,
        delay_s: float = 0.0,
    ) -> None:
        """Queue the next ``times`` attempts of ``op`` to fail.

        A ``target`` restricts the faults to one platform/VM; ``None``
        matches any caller of that operation.
        """
        if kind not in _KINDS:
            raise SimulationError("unknown fault kind %r" % (kind,))
        queue = self._queued.setdefault((op, target), [])
        queue.extend(
            Fault(op=op, kind=kind, target=target, delay_s=delay_s)
            for _ in range(times)
        )

    def set_rate(
        self,
        op: str,
        probability: float,
        kind: str = KIND_CRASH,
        delay_s: float = 0.0,
    ) -> None:
        """Fail each attempt of ``op`` with ``probability`` (seeded)."""
        if kind not in _KINDS:
            raise SimulationError("unknown fault kind %r" % (kind,))
        if not 0.0 <= probability <= 1.0:
            raise SimulationError(
                "fault probability must be in [0, 1]: %r" % (probability,)
            )
        self._rates[op] = (probability, kind, delay_s)

    def clear_rate(self, op: str) -> None:
        """Stop probabilistic failures of ``op``."""
        self._rates.pop(op, None)

    # -- decisions --------------------------------------------------------
    def draw(
        self, op: str, target: Optional[str] = None
    ) -> Optional[Fault]:
        """Decide whether this attempt of ``op`` fails.

        Target-specific queued faults fire first, then wildcard queued
        faults, then the probabilistic rate.  Returns the fault (also
        recorded in :attr:`injected`) or None.
        """
        fault = self._pop_queued(op, target)
        if fault is None:
            rate = self._rates.get(op)
            if rate is not None:
                probability, kind, delay_s = rate
                if self._rng.random() < probability:
                    fault = Fault(
                        op=op, kind=kind, target=target, delay_s=delay_s
                    )
        if fault is not None:
            self.injected.append(fault)
            self._c_injected.labels(op, fault.kind).inc()
        return fault

    def raise_for(self, op: str, target: Optional[str] = None) -> None:
        """Raise the drawn fault's typed error, if any."""
        fault = self.draw(op, target)
        if fault is not None:
            raise fault.to_error()

    def _pop_queued(
        self, op: str, target: Optional[str]
    ) -> Optional[Fault]:
        for key in ((op, target), (op, None)):
            queue = self._queued.get(key)
            if queue:
                fault = queue.pop(0)
                if not queue:
                    del self._queued[key]
                if fault.target != target:
                    fault = Fault(
                        op=fault.op, kind=fault.kind, target=target,
                        delay_s=fault.delay_s,
                    )
                return fault
        return None


@dataclass(frozen=True)
class PlannedFault:
    """One timed entry of a fault plan."""

    at: float
    action: str
    args: Tuple[str, ...] = ()
    options: Tuple[Tuple[str, str], ...] = ()

    def option(self, key: str, default: str = "") -> str:
        for name, value in self.options:
            if name == key:
                return value
        return default

    def __str__(self) -> str:
        parts = ["at", "%g" % self.at, self.action]
        parts.extend(self.args)
        parts.extend("%s=%s" % kv for kv in self.options)
        return " ".join(parts)


#: Actions a plan may contain; the chaos harness maps each to concrete
#: world mutations (see ``docs/resilience.md`` for semantics).
PLAN_ACTIONS = frozenset({
    "crash-platform",    # crash-platform <name>
    "restore-platform",  # restore-platform <name>
    "crash-vm",          # crash-vm <platform> <client>
    "link-down",         # link-down <a> <b>
    "link-up",           # link-up <a> <b>
    "flap-link",         # flap-link <a> <b> <down_for_s>
    "fail",              # fail <op> [target] [times=N] [kind=K] [delay=S]
    "rate",              # rate <op> <probability> [kind=K] [delay=S]
    "clear-rate",        # clear-rate <op>
    "restart-controller",  # restart-controller
})


class FaultPlan:
    """A declarative, timed fault schedule.

    Built from :class:`PlannedFault` entries or parsed from the text
    DSL (one ``at <time> <action> ...`` entry per line, ``#`` comments
    allowed).  :meth:`schedule` arms every entry on an event loop.
    """

    def __init__(self, entries: List[PlannedFault]):
        self.entries = sorted(entries, key=lambda e: e.at)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the plan DSL; raises SimulationError on bad entries."""
        entries: List[PlannedFault] = []
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            tokens = shlex.split(line)
            if len(tokens) < 3 or tokens[0] != "at":
                raise SimulationError(
                    "fault plan line %d: expected "
                    "'at <time> <action> ...': %r" % (lineno, raw)
                )
            try:
                when = float(tokens[1])
            except ValueError:
                raise SimulationError(
                    "fault plan line %d: bad timestamp %r"
                    % (lineno, tokens[1])
                )
            action = tokens[2]
            if action not in PLAN_ACTIONS:
                raise SimulationError(
                    "fault plan line %d: unknown action %r"
                    % (lineno, action)
                )
            args: List[str] = []
            options: List[Tuple[str, str]] = []
            for token in tokens[3:]:
                if "=" in token:
                    key, value = token.split("=", 1)
                    options.append((key, value))
                else:
                    args.append(token)
            entries.append(PlannedFault(
                at=when, action=action,
                args=tuple(args), options=tuple(options),
            ))
        return cls(entries)

    def schedule(
        self, loop, apply: Callable[[PlannedFault], None]
    ) -> None:
        """Arm every entry on ``loop``; ``apply`` executes entries."""
        for entry in self.entries:
            loop.schedule_at(
                max(entry.at, loop.now),
                lambda e=entry: apply(e),
            )

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)
