"""Failure model and self-healing control plane.

The paper's deployability argument (Sections 2 and 5) treats failure as
a cheap, routine event: ClickOS VMs boot in ~30 ms, so churn is
absorbed by re-instantiating processing rather than by heroics.  This
package supplies the machinery that argument presumes:

* :mod:`repro.resilience.faults` -- a deterministic, seeded
  :class:`FaultInjector` plus declarative :class:`FaultPlan` scripts
  that fail lifecycle operations, crash platforms and VMs, and flap
  links on the simulated clock,
* :mod:`repro.resilience.retry` -- a configurable
  :class:`RetryPolicy` (exponential backoff + jitter + deadline)
  wrapped around platform lifecycle calls, so transient faults are
  absorbed and permanent ones surface as typed
  :class:`~repro.common.errors.FaultError` subclasses,
* :mod:`repro.resilience.journal` -- the controller's write-ahead
  :class:`DeploymentJournal`; a restarted controller replays it and
  converges to the pre-crash state,
* :mod:`repro.resilience.health` -- a :class:`HealthMonitor` running
  periodic liveness probes on the event loop,
* :mod:`repro.resilience.failover` -- the :class:`FailoverEngine`
  that evacuates a dead platform via the controller's migrate fast
  path, re-verifies requirements, and records MTTR,
* :mod:`repro.resilience.invariants` -- the system invariants (no
  lost/duplicated module, no leaked address, routes consistent with
  deployments, ledger balanced) checked after every chaos event,
* :mod:`repro.resilience.chaos` -- the scripted chaos scenarios run
  by the ``repro chaos`` CLI and the ``chaos`` CI job.

See ``docs/resilience.md`` for the fault model and the scenario DSL.
"""

from __future__ import annotations

from repro.common.errors import (
    FaultError,
    FaultTimeoutError,
    PlatformDownError,
    RetryExhaustedError,
    TransientFaultError,
)
from repro.resilience.chaos import (
    ChaosReport,
    SCENARIOS,
    run_all,
    run_scenario,
)
from repro.resilience.faults import (
    Fault,
    FaultInjector,
    FaultPlan,
    KIND_CRASH,
    KIND_TIMEOUT,
)
from repro.resilience.health import HealthMonitor
from repro.resilience.failover import FailoverEngine, FailoverReport
from repro.resilience.invariants import (
    InvariantViolation,
    check_invariants,
    check_switch_invariants,
    collect_violations,
    controller_state_digest,
)
from repro.resilience.journal import (
    DeploymentJournal,
    JournalRecord,
    NULL_JOURNAL,
)
from repro.resilience.retry import (
    DEFAULT_LIFECYCLE_POLICY,
    RetryPolicy,
    call_with_retries,
)

__all__ = [
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "KIND_CRASH",
    "KIND_TIMEOUT",
    "RetryPolicy",
    "DEFAULT_LIFECYCLE_POLICY",
    "call_with_retries",
    "DeploymentJournal",
    "JournalRecord",
    "NULL_JOURNAL",
    "HealthMonitor",
    "FailoverEngine",
    "FailoverReport",
    "InvariantViolation",
    "check_invariants",
    "check_switch_invariants",
    "collect_violations",
    "controller_state_digest",
    "ChaosReport",
    "SCENARIOS",
    "run_scenario",
    "run_all",
    "FaultError",
    "TransientFaultError",
    "FaultTimeoutError",
    "RetryExhaustedError",
    "PlatformDownError",
]
