"""IPv4 address and prefix arithmetic.

Addresses are represented as plain ``int`` throughout the library (fast to
hash, compare, and range-constrain in the symbolic engine).  This module
converts between dotted-quad strings and integers and provides prefix
(CIDR) helpers used by routing tables and the policy language.
"""

from __future__ import annotations

from typing import Tuple

from repro.common.errors import ConfigError

#: Largest representable IPv4 address (255.255.255.255).
MAX_IP = (1 << 32) - 1


def parse_ip(text: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer.

    >>> parse_ip("10.0.0.1")
    167772161
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise ConfigError("invalid IPv4 address: %r" % (text,))
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ConfigError("invalid IPv4 address: %r" % (text,))
        octet = int(part)
        if octet > 255:
            raise ConfigError("invalid IPv4 address: %r" % (text,))
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Format an integer as a dotted-quad IPv4 address.

    >>> format_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= MAX_IP:
        raise ConfigError("IPv4 address out of range: %r" % (value,))
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_prefix(text: str) -> Tuple[int, int]:
    """Parse ``a.b.c.d/len`` (or a bare address, meaning ``/32``).

    Returns ``(network, prefix_length)`` with host bits cleared.

    >>> parse_prefix("10.0.0.0/8")
    (167772160, 8)
    """
    text = text.strip()
    if "/" in text:
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise ConfigError("invalid prefix length in %r" % (text,))
        plen = int(len_text)
        if plen > 32:
            raise ConfigError("invalid prefix length in %r" % (text,))
    else:
        addr_text, plen = text, 32
    addr = parse_ip(addr_text)
    mask = prefix_mask(plen)
    return addr & mask, plen


def prefix_mask(plen: int) -> int:
    """Return the netmask for a prefix length as an integer."""
    if not 0 <= plen <= 32:
        raise ConfigError("invalid prefix length: %r" % (plen,))
    if plen == 0:
        return 0
    return MAX_IP ^ ((1 << (32 - plen)) - 1)


def format_prefix(network: int, plen: int) -> str:
    """Format ``(network, plen)`` as ``a.b.c.d/len``."""
    return "%s/%d" % (format_ip(network), plen)


def prefix_range(network: int, plen: int) -> Tuple[int, int]:
    """Return the inclusive ``(low, high)`` address range of a prefix."""
    mask = prefix_mask(plen)
    low = network & mask
    return low, low | (MAX_IP ^ mask)


def prefix_contains(network: int, plen: int, addr: int) -> bool:
    """Return whether ``addr`` falls inside the prefix."""
    return (addr & prefix_mask(plen)) == (network & prefix_mask(plen))
