"""Canonical packet header field names and IP protocol numbers.

These constants are the shared vocabulary of the whole library: the
concrete dataplane (:mod:`repro.click`), the symbolic engine
(:mod:`repro.symexec`), and the policy language (:mod:`repro.policy`)
all constrain, rewrite, and compare the *same* field names.  They live
in :mod:`repro.common` so every subsystem can import them without
circular dependencies.
"""

# Header field names --------------------------------------------------------
IP_SRC = "ip_src"
IP_DST = "ip_dst"
IP_PROTO = "ip_proto"
IP_TTL = "ip_ttl"
IP_TOS = "ip_tos"
TP_SRC = "tp_src"
TP_DST = "tp_dst"
TCP_FLAGS = "tcp_flags"
PAYLOAD = "payload"

#: Every field the symbolic engine tracks by default.
HEADER_FIELDS = (
    IP_SRC,
    IP_DST,
    IP_PROTO,
    IP_TTL,
    IP_TOS,
    TP_SRC,
    TP_DST,
    TCP_FLAGS,
    PAYLOAD,
)

# IP protocol numbers --------------------------------------------------------
ICMP = 1
TCP = 6
UDP = 17
GRE = 47
SCTP = 132

PROTO_NAMES = {ICMP: "icmp", TCP: "tcp", UDP: "udp", GRE: "gre", SCTP: "sctp"}
PROTO_NUMBERS = {name: num for num, name in PROTO_NAMES.items()}

# TCP flag bits ---------------------------------------------------------------
TH_FIN = 0x01
TH_SYN = 0x02
TH_RST = 0x04
TH_ACK = 0x10
