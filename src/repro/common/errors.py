"""Exception hierarchy for the In-Net reproduction.

All library errors derive from :class:`InNetError` so callers can catch a
single base class at API boundaries.
"""


class InNetError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(InNetError):
    """A Click configuration (or element argument list) failed to parse."""


class PolicyError(InNetError):
    """A requirement / flow specification failed to parse."""


class VerificationError(InNetError):
    """Static analysis could not be completed (not a policy violation)."""


class SecurityError(InNetError):
    """A processing module violates the In-Net security rules."""


class DeploymentError(InNetError):
    """The controller could not deploy a verified processing module."""


class SimulationError(InNetError):
    """The discrete-event simulator was driven into an invalid state."""


class ShardingError(InNetError):
    """The sharded dataplane could not run or merge a configuration.

    Raised when a caller demands sharding (``fallback=False``) for a
    configuration that cannot be flow-partitioned, or when a shard
    worker fails mid-run.
    """


class FaultError(InNetError):
    """An infrastructure fault (injected or detected) hit an operation.

    The failure model (:mod:`repro.resilience`) distinguishes
    *transient* faults -- which a retry policy may absorb -- from
    *permanent* ones, which surface to the caller as one of the
    subclasses below.
    """


class TransientFaultError(FaultError):
    """A fault a retry may absorb (flaky toolstack operation)."""


class FaultTimeoutError(TransientFaultError):
    """An operation exceeded its per-operation timeout."""


class RetryExhaustedError(FaultError):
    """Every retry attempt (or the retry deadline) was spent."""


class PlatformDownError(FaultError):
    """The target platform is crashed or marked failed."""
