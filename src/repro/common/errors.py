"""Exception hierarchy for the In-Net reproduction.

All library errors derive from :class:`InNetError` so callers can catch a
single base class at API boundaries.
"""


class InNetError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(InNetError):
    """A Click configuration (or element argument list) failed to parse."""


class PolicyError(InNetError):
    """A requirement / flow specification failed to parse."""


class VerificationError(InNetError):
    """Static analysis could not be completed (not a policy violation)."""


class SecurityError(InNetError):
    """A processing module violates the In-Net security rules."""


class DeploymentError(InNetError):
    """The controller could not deploy a verified processing module."""


class SimulationError(InNetError):
    """The discrete-event simulator was driven into an invalid state."""
