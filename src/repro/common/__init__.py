"""Shared low-level utilities used across the In-Net reproduction.

This package holds the pieces that every other subsystem builds on:

* :mod:`repro.common.addr` -- IPv4 address and prefix arithmetic,
* :mod:`repro.common.intervals` -- integer interval sets used as symbolic
  variable domains,
* :mod:`repro.common.errors` -- the exception hierarchy.
"""

from repro.common.addr import (
    format_ip,
    format_prefix,
    parse_ip,
    parse_prefix,
    prefix_contains,
    prefix_range,
)
from repro.common.errors import (
    ConfigError,
    DeploymentError,
    InNetError,
    PolicyError,
    SecurityError,
    VerificationError,
)
from repro.common.intervals import FULL_RANGE, IntervalSet

__all__ = [
    "parse_ip",
    "format_ip",
    "parse_prefix",
    "format_prefix",
    "prefix_range",
    "prefix_contains",
    "IntervalSet",
    "FULL_RANGE",
    "InNetError",
    "ConfigError",
    "PolicyError",
    "SecurityError",
    "VerificationError",
    "DeploymentError",
]
