"""Integer interval sets.

The symbolic execution engine represents the domain of every packet header
field as a set of disjoint inclusive integer intervals.  This keeps
satisfiability checks linear (SYMNET's central scalability trick: no SMT
solver, just interval arithmetic), which is what makes Figure 10 of the
paper linear in network size.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

Interval = Tuple[int, int]


class IntervalSet:
    """An immutable set of integers stored as sorted disjoint intervals.

    Instances are value objects: all operations return new sets.

    >>> s = IntervalSet.from_interval(10, 20) | IntervalSet.single(25)
    >>> 15 in s, 22 in s, 25 in s
    (True, False, True)
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        self._intervals: Tuple[Interval, ...] = tuple(
            _normalize(list(intervals))
        )

    # -- constructors ----------------------------------------------------
    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty set."""
        return _EMPTY

    @classmethod
    def single(cls, value: int) -> "IntervalSet":
        """The singleton set ``{value}``."""
        return cls([(value, value)])

    @classmethod
    def from_interval(cls, low: int, high: int) -> "IntervalSet":
        """The inclusive range ``[low, high]`` (empty if ``low > high``)."""
        if low > high:
            return _EMPTY
        return cls([(low, high)])

    @classmethod
    def from_values(cls, values: Iterable[int]) -> "IntervalSet":
        """A set holding exactly ``values``."""
        return cls([(v, v) for v in values])

    # -- queries ----------------------------------------------------------
    @property
    def intervals(self) -> Tuple[Interval, ...]:
        """The sorted, disjoint intervals backing this set."""
        return self._intervals

    def is_empty(self) -> bool:
        """Whether the set contains no values."""
        return not self._intervals

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __contains__(self, value: int) -> bool:
        # Binary search over disjoint sorted intervals.
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            a, b = self._intervals[mid]
            if value < a:
                hi = mid - 1
            elif value > b:
                lo = mid + 1
            else:
                return True
        return False

    def size(self) -> int:
        """Number of integers in the set."""
        return sum(b - a + 1 for a, b in self._intervals)

    def singleton_value(self) -> Optional[int]:
        """The sole member if the set has exactly one element, else None."""
        if len(self._intervals) == 1:
            a, b = self._intervals[0]
            if a == b:
                return a
        return None

    def min(self) -> int:
        """Smallest member (raises ValueError on the empty set)."""
        if not self._intervals:
            raise ValueError("empty IntervalSet has no minimum")
        return self._intervals[0][0]

    def max(self) -> int:
        """Largest member (raises ValueError on the empty set)."""
        if not self._intervals:
            raise ValueError("empty IntervalSet has no maximum")
        return self._intervals[-1][1]

    def __iter__(self) -> Iterator[int]:
        for a, b in self._intervals:
            yield from range(a, b + 1)

    # -- algebra ----------------------------------------------------------
    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """Set intersection."""
        result: List[Interval] = []
        i = j = 0
        left, right = self._intervals, other._intervals
        while i < len(left) and j < len(right):
            a1, b1 = left[i]
            a2, b2 = right[j]
            low, high = max(a1, a2), min(b1, b2)
            if low <= high:
                result.append((low, high))
            if b1 < b2:
                i += 1
            else:
                j += 1
        out = IntervalSet.__new__(IntervalSet)
        out._intervals = tuple(result)
        return out

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Set union."""
        return IntervalSet(self._intervals + other._intervals)

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        """Set difference ``self - other``."""
        result: List[Interval] = []
        pending = list(self._intervals)
        cut = other._intervals
        for a, b in pending:
            pieces = [(a, b)]
            for c, d in cut:
                next_pieces: List[Interval] = []
                for x, y in pieces:
                    if d < x or c > y:
                        next_pieces.append((x, y))
                        continue
                    if x < c:
                        next_pieces.append((x, c - 1))
                    if y > d:
                        next_pieces.append((d + 1, y))
                pieces = next_pieces
                if not pieces:
                    break
            result.extend(pieces)
        return IntervalSet(result)

    def complement(self, low: int, high: int) -> "IntervalSet":
        """Complement of the set within the universe ``[low, high]``."""
        return IntervalSet.from_interval(low, high).subtract(self)

    def __or__(self, other: "IntervalSet") -> "IntervalSet":
        return self.union(other)

    def __and__(self, other: "IntervalSet") -> "IntervalSet":
        return self.intersect(other)

    def __sub__(self, other: "IntervalSet") -> "IntervalSet":
        return self.subtract(other)

    def is_subset(self, other: "IntervalSet") -> bool:
        """Whether every member of ``self`` is in ``other``."""
        return self.subtract(other).is_empty()

    def overlaps(self, other: "IntervalSet") -> bool:
        """Whether the sets share at least one member."""
        return not self.intersect(other).is_empty()

    # -- dunder -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        parts = ", ".join(
            "%d" % a if a == b else "%d-%d" % (a, b)
            for a, b in self._intervals
        )
        return "IntervalSet{%s}" % parts


def _normalize(intervals: Sequence[Interval]) -> List[Interval]:
    """Sort, validate, and coalesce adjacent/overlapping intervals."""
    cleaned = [(int(a), int(b)) for a, b in intervals if a <= b]
    cleaned.sort()
    merged: List[Interval] = []
    for a, b in cleaned:
        if merged and a <= merged[-1][1] + 1:
            prev_a, prev_b = merged[-1]
            merged[-1] = (prev_a, max(prev_b, b))
        else:
            merged.append((a, b))
    return merged


_EMPTY = IntervalSet(())

#: Domain of a 32-bit field (IPv4 addresses) and general default universe.
FULL_RANGE = IntervalSet.from_interval(0, (1 << 32) - 1)
