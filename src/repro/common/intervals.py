"""Integer interval sets.

The symbolic execution engine represents the domain of every packet header
field as a set of disjoint inclusive integer intervals.  This keeps
satisfiability checks linear (SYMNET's central scalability trick: no SMT
solver, just interval arithmetic), which is what makes Figure 10 of the
paper linear in network size.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

Interval = Tuple[int, int]


# ---------------------------------------------------------------------------
# Hash-consing and operation-result caching
# ---------------------------------------------------------------------------
#
# IntervalSet instances are immutable value objects, so identical values
# can be shared (hash-consed) and the results of the binary operations
# can be cached: the symbolic engine narrows the *same* (domain, clause)
# pair across thousands of forked flows, and with the cache on each
# distinct pair is computed exactly once.  Caching is transparent --
# results are content-equal to what the uncached code paths produce --
# and can be switched off (``set_result_cache(False)``) to recover the
# allocate-per-call seed behavior, which the symexec differential tests
# and the ``symexec_speedup_check`` benchmark use as their baseline.


class _CacheStats:
    """Mutable counters for the interning/result caches."""

    __slots__ = ("hits", "misses", "interned")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.interned = 0


_STATS = _CacheStats()
_CACHE_ENABLED = True
#: interval tuple -> the canonical IntervalSet carrying it.
_INTERN: Dict[Tuple[Interval, ...], "IntervalSet"] = {}
#: Per-operation result caches keyed on ``(left id, right id)``.  Keys
#: are pairs of small intern ids, not interval tuples: CPython rehashes
#: tuple contents on every lookup, so content keys would make each hit
#: cost O(intervals) -- measurably slow for wide sets like the 32-bit
#: egress complement.
_AND_RESULTS: Dict[Tuple[int, int], "IntervalSet"] = {}
_OR_RESULTS: Dict[Tuple[int, int], "IntervalSet"] = {}
_SUB_RESULTS: Dict[Tuple[int, int], "IntervalSet"] = {}
#: Intern ids are handed out by a never-reset monotonic counter, so an
#: id names one interval tuple forever: clearing the caches can orphan
#: ids but can never alias two values to one key.
_NEXT_ID = 0
#: Caches are cleared wholesale when they exceed this bound; real
#: workloads stay far below it, so this is an anti-leak backstop, not an
#: eviction policy.
_MAX_ENTRIES = 1 << 16


def set_result_cache(enabled: bool) -> None:
    """Switch interning + operation-result caching on or off.

    Disabling also clears both caches so re-enabling starts cold.

    >>> set_result_cache(False)
    >>> a = IntervalSet.from_interval(0, 9)
    >>> b = IntervalSet.from_interval(5, 20)
    >>> a.intersect(b) is a.intersect(b)
    False
    >>> set_result_cache(True)
    >>> a.intersect(b) is a.intersect(b)
    True
    """
    global _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)
    if not _CACHE_ENABLED:
        clear_result_cache()


def result_cache_enabled() -> bool:
    """Whether interning + result caching is currently on."""
    return _CACHE_ENABLED


def clear_result_cache() -> None:
    """Drop every cached value and result (counters are kept)."""
    _INTERN.clear()
    _AND_RESULTS.clear()
    _OR_RESULTS.clear()
    _SUB_RESULTS.clear()


def result_cache_stats() -> Dict[str, int]:
    """Counters: result-cache hits/misses and interned value count."""
    return {
        "enabled": int(_CACHE_ENABLED),
        "hits": _STATS.hits,
        "misses": _STATS.misses,
        "interned": _STATS.interned,
        "results_cached": (
            len(_AND_RESULTS) + len(_OR_RESULTS) + len(_SUB_RESULTS)
        ),
    }


def intern(value: "IntervalSet") -> "IntervalSet":
    """The canonical shared instance for ``value`` (hash-consing).

    Returns ``value`` itself when it is the first carrier of its
    interval tuple, or the previously seen instance otherwise.  Either
    way ``value`` leaves with the content's intern id stamped on it,
    so later operations on a non-canonical duplicate still hit the
    result caches.  With caching disabled this is the identity
    function.
    """
    global _NEXT_ID
    if not _CACHE_ENABLED:
        return value
    key = value._intervals
    cached = _INTERN.get(key)
    if cached is not None:
        value._intern_id = cached._intern_id
        return cached
    if len(_INTERN) >= _MAX_ENTRIES:
        _INTERN.clear()
    value._intern_id = _NEXT_ID
    _NEXT_ID += 1
    _INTERN[key] = value
    _STATS.interned += 1
    return value


class IntervalSet:
    """An immutable set of integers stored as sorted disjoint intervals.

    Instances are value objects: all operations return new sets.

    >>> s = IntervalSet.from_interval(10, 20) | IntervalSet.single(25)
    >>> 15 in s, 22 in s, 25 in s
    (True, False, True)
    """

    __slots__ = ("_intervals", "_intern_id")

    def __init__(self, intervals: Iterable[Interval] = ()):
        self._intervals: Tuple[Interval, ...] = tuple(
            _normalize(list(intervals))
        )
        #: Small id stamped by :func:`intern`; None until interned.
        self._intern_id: Optional[int] = None

    # -- constructors ----------------------------------------------------
    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty set."""
        return _EMPTY

    @classmethod
    def single(cls, value: int) -> "IntervalSet":
        """The singleton set ``{value}``."""
        if _CACHE_ENABLED:
            cached = _INTERN.get(((value, value),))
            if cached is not None:
                return cached
            return intern(cls([(value, value)]))
        return cls([(value, value)])

    @classmethod
    def from_interval(cls, low: int, high: int) -> "IntervalSet":
        """The inclusive range ``[low, high]`` (empty if ``low > high``)."""
        if low > high:
            return _EMPTY
        if _CACHE_ENABLED:
            cached = _INTERN.get(((low, high),))
            if cached is not None:
                return cached
            return intern(cls([(low, high)]))
        return cls([(low, high)])

    @classmethod
    def from_values(cls, values: Iterable[int]) -> "IntervalSet":
        """A set holding exactly ``values``."""
        return cls([(v, v) for v in values])

    # -- queries ----------------------------------------------------------
    @property
    def intervals(self) -> Tuple[Interval, ...]:
        """The sorted, disjoint intervals backing this set."""
        return self._intervals

    def is_empty(self) -> bool:
        """Whether the set contains no values."""
        return not self._intervals

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __contains__(self, value: int) -> bool:
        # Binary search over disjoint sorted intervals.
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            a, b = self._intervals[mid]
            if value < a:
                hi = mid - 1
            elif value > b:
                lo = mid + 1
            else:
                return True
        return False

    def size(self) -> int:
        """Number of integers in the set."""
        return sum(b - a + 1 for a, b in self._intervals)

    def singleton_value(self) -> Optional[int]:
        """The sole member if the set has exactly one element, else None."""
        if len(self._intervals) == 1:
            a, b = self._intervals[0]
            if a == b:
                return a
        return None

    def min(self) -> int:
        """Smallest member (raises ValueError on the empty set)."""
        if not self._intervals:
            raise ValueError("empty IntervalSet has no minimum")
        return self._intervals[0][0]

    def max(self) -> int:
        """Largest member (raises ValueError on the empty set)."""
        if not self._intervals:
            raise ValueError("empty IntervalSet has no maximum")
        return self._intervals[-1][1]

    def __iter__(self) -> Iterator[int]:
        for a, b in self._intervals:
            yield from range(a, b + 1)

    # -- algebra ----------------------------------------------------------
    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """Set intersection."""
        if _CACHE_ENABLED:
            lid = self._intern_id
            if lid is None:
                lid = intern(self)._intern_id
            rid = other._intern_id
            if rid is None:
                rid = intern(other)._intern_id
            key = (lid, rid)
            cached = _AND_RESULTS.get(key)
            if cached is not None:
                _STATS.hits += 1
                return cached
            result = intern(self._intersect(other))
            _STATS.misses += 1
            if len(_AND_RESULTS) >= _MAX_ENTRIES:
                _AND_RESULTS.clear()
            _AND_RESULTS[key] = result
            return result
        return self._intersect(other)

    def _intersect(self, other: "IntervalSet") -> "IntervalSet":
        result: List[Interval] = []
        i = j = 0
        left, right = self._intervals, other._intervals
        while i < len(left) and j < len(right):
            a1, b1 = left[i]
            a2, b2 = right[j]
            low, high = max(a1, a2), min(b1, b2)
            if low <= high:
                result.append((low, high))
            if b1 < b2:
                i += 1
            else:
                j += 1
        out = IntervalSet.__new__(IntervalSet)
        out._intervals = tuple(result)
        out._intern_id = None
        return out

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Set union."""
        if _CACHE_ENABLED:
            lid = self._intern_id
            if lid is None:
                lid = intern(self)._intern_id
            rid = other._intern_id
            if rid is None:
                rid = intern(other)._intern_id
            key = (lid, rid)
            cached = _OR_RESULTS.get(key)
            if cached is not None:
                _STATS.hits += 1
                return cached
            result = intern(IntervalSet(self._intervals + other._intervals))
            _STATS.misses += 1
            if len(_OR_RESULTS) >= _MAX_ENTRIES:
                _OR_RESULTS.clear()
            _OR_RESULTS[key] = result
            return result
        return IntervalSet(self._intervals + other._intervals)

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        """Set difference ``self - other``."""
        if _CACHE_ENABLED:
            lid = self._intern_id
            if lid is None:
                lid = intern(self)._intern_id
            rid = other._intern_id
            if rid is None:
                rid = intern(other)._intern_id
            key = (lid, rid)
            cached = _SUB_RESULTS.get(key)
            if cached is not None:
                _STATS.hits += 1
                return cached
            result = intern(self._subtract(other))
            _STATS.misses += 1
            if len(_SUB_RESULTS) >= _MAX_ENTRIES:
                _SUB_RESULTS.clear()
            _SUB_RESULTS[key] = result
            return result
        return self._subtract(other)

    def _subtract(self, other: "IntervalSet") -> "IntervalSet":
        result: List[Interval] = []
        pending = list(self._intervals)
        cut = other._intervals
        for a, b in pending:
            pieces = [(a, b)]
            for c, d in cut:
                next_pieces: List[Interval] = []
                for x, y in pieces:
                    if d < x or c > y:
                        next_pieces.append((x, y))
                        continue
                    if x < c:
                        next_pieces.append((x, c - 1))
                    if y > d:
                        next_pieces.append((d + 1, y))
                pieces = next_pieces
                if not pieces:
                    break
            result.extend(pieces)
        return IntervalSet(result)

    def complement(self, low: int, high: int) -> "IntervalSet":
        """Complement of the set within the universe ``[low, high]``."""
        return IntervalSet.from_interval(low, high).subtract(self)

    def __or__(self, other: "IntervalSet") -> "IntervalSet":
        return self.union(other)

    def __and__(self, other: "IntervalSet") -> "IntervalSet":
        return self.intersect(other)

    def __sub__(self, other: "IntervalSet") -> "IntervalSet":
        return self.subtract(other)

    def is_subset(self, other: "IntervalSet") -> bool:
        """Whether every member of ``self`` is in ``other``."""
        return self.subtract(other).is_empty()

    def overlaps(self, other: "IntervalSet") -> bool:
        """Whether the sets share at least one member."""
        return not self.intersect(other).is_empty()

    # -- dunder -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        parts = ", ".join(
            "%d" % a if a == b else "%d-%d" % (a, b)
            for a, b in self._intervals
        )
        return "IntervalSet{%s}" % parts


def _normalize(intervals: Sequence[Interval]) -> List[Interval]:
    """Sort, validate, and coalesce adjacent/overlapping intervals."""
    cleaned = [(int(a), int(b)) for a, b in intervals if a <= b]
    cleaned.sort()
    merged: List[Interval] = []
    for a, b in cleaned:
        if merged and a <= merged[-1][1] + 1:
            prev_a, prev_b = merged[-1]
            merged[-1] = (prev_a, max(prev_b, b))
        else:
            merged.append((a, b))
    return merged


_EMPTY = IntervalSet(())

#: Domain of a 32-bit field (IPv4 addresses) and general default universe.
FULL_RANGE = IntervalSet.from_interval(0, (1 << 32) - 1)
