"""tcpdump-style flow specifications.

The paper's API constrains flows with tcpdump syntax (Section 4.2), e.g.
``udp dst port 1500``, ``tcp src port 80``, ``dst 172.16.15.133``.  This
module parses that syntax into a :class:`FlowSpec`: a disjunction of
:class:`Clause` objects, each a conjunction of per-field
:class:`~repro.common.intervals.IntervalSet` constraints.

The same object serves three masters:

* the concrete dataplane (``IPFilter``/``IPClassifier`` call
  :meth:`FlowSpec.matches` per packet),
* the symbolic engine (classifier models call :meth:`Clause.constraints`
  to split symbolic flows),
* the controller's requirement checks (a symbolic flow *satisfies* a spec
  if its domains fit inside some clause; see
  :mod:`repro.symexec.reachability`).

Supported grammar::

    expr     := or_expr
    or_expr  := and_expr (("or" | "||") and_expr)*
    and_expr := unary (("and" | "&&")? unary)*      # juxtaposition = and
    unary    := ("not" | "!") unary | "(" expr ")" | primitive

Primitives: protocol names (``tcp udp icmp sctp gre ip``),
``proto N``, ``[src|dst] port N[-M]``, ``[src|dst] [host|net] ADDR[/LEN]``,
bare ``src ADDR`` / ``dst ADDR``, ``ttl N``, ``tos N``, ``syn``, and the
catch-alls ``any``/``all``/``true``.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common import fields as pkt
from repro.common.addr import parse_ip, parse_prefix, prefix_range
from repro.common.errors import PolicyError
from repro.common.intervals import IntervalSet

#: Universe (full domain) for each canonical field, used to complement
#: constraints under negation and to decide when a constraint is vacuous.
FIELD_UNIVERSES: Dict[str, IntervalSet] = {
    pkt.IP_SRC: IntervalSet.from_interval(0, (1 << 32) - 1),
    pkt.IP_DST: IntervalSet.from_interval(0, (1 << 32) - 1),
    pkt.IP_PROTO: IntervalSet.from_interval(0, 255),
    pkt.IP_TTL: IntervalSet.from_interval(0, 255),
    pkt.IP_TOS: IntervalSet.from_interval(0, 255),
    pkt.TP_SRC: IntervalSet.from_interval(0, 65535),
    pkt.TP_DST: IntervalSet.from_interval(0, 65535),
    pkt.TCP_FLAGS: IntervalSet.from_interval(0, 255),
}

_PROTO_WORDS = {
    "tcp": pkt.TCP,
    "udp": pkt.UDP,
    "icmp": pkt.ICMP,
    "sctp": pkt.SCTP,
    "gre": pkt.GRE,
}

# Clause negation is a pure function of the clause's (immutable)
# constraint map, so the DNF complement each symbolic classifier model
# computes per flow can be cached on the clause itself.  The switch
# exists so the symexec seed-mode baseline (repro.symexec.tuning) can
# restore compute-per-call behavior for differential comparison.
_NEGATION_CACHE_ENABLED = True
_NEGATION_CACHE_HITS = 0


def set_negation_cache(enabled: bool) -> None:
    """Switch per-clause negation memoization on or off."""
    global _NEGATION_CACHE_ENABLED
    _NEGATION_CACHE_ENABLED = bool(enabled)


def negation_cache_hits() -> int:
    """How many times a memoized clause negation was reused."""
    return _NEGATION_CACHE_HITS


class Clause:
    """A conjunction of per-field membership constraints.

    An empty constraint map means "match everything".
    """

    __slots__ = ("_constraints", "_negated")

    def __init__(self, constraints: Optional[Dict[str, IntervalSet]] = None):
        self._constraints: Dict[str, IntervalSet] = dict(constraints or {})
        #: Memoized result of :meth:`negated_clauses` (None = not yet).
        self._negated: Optional[List["Clause"]] = None

    @property
    def constraints(self) -> Dict[str, IntervalSet]:
        """field name -> allowed IntervalSet."""
        return dict(self._constraints)

    def fields(self) -> Set[str]:
        """Fields this clause constrains."""
        return set(self._constraints)

    def conjoin(self, other: "Clause") -> Optional["Clause"]:
        """AND two clauses; None when the result is unsatisfiable."""
        merged = dict(self._constraints)
        for field, allowed in other._constraints.items():
            if field in merged:
                allowed = merged[field].intersect(allowed)
                if allowed.is_empty():
                    return None
            merged[field] = allowed
        return Clause(merged)

    def matches(self, packet) -> bool:
        """Whether a concrete packet satisfies every constraint."""
        for field, allowed in self._constraints.items():
            if packet.get(field, 0) not in allowed:
                return False
        return True

    def constraint_items(self) -> Tuple[Tuple[str, IntervalSet], ...]:
        """The (field, allowed IntervalSet) pairs, without copying.

        Hot-path accessor for vectorized packet classifiers: unlike the
        :attr:`constraints` property it does not rebuild a dict per
        call, so callers can hoist the tuple once per batch.
        """
        return tuple(self._constraints.items())

    def negated_clauses(self) -> List["Clause"]:
        """De Morgan: NOT(a AND b) = (NOT a) OR (NOT b).

        Memoized on the clause (constraints are fixed at construction);
        callers must treat the returned list as read-only.
        """
        global _NEGATION_CACHE_HITS
        if _NEGATION_CACHE_ENABLED and self._negated is not None:
            _NEGATION_CACHE_HITS += 1
            return self._negated
        out = []
        for field, allowed in self._constraints.items():
            universe = FIELD_UNIVERSES[field]
            complement = universe.subtract(allowed)
            out.append(Clause({field: complement}))
        if _NEGATION_CACHE_ENABLED:
            self._negated = out
        return out

    def __repr__(self) -> str:
        inner = ", ".join(
            "%s in %r" % (f, s) for f, s in sorted(self._constraints.items())
        )
        return "Clause(%s)" % (inner or "any",)


class FlowSpec:
    """A disjunction of clauses plus the source text it came from."""

    def __init__(self, clauses: Sequence[Clause], source: str = ""):
        self.clauses = [c for c in clauses]
        self.source = source

    @classmethod
    def any(cls) -> "FlowSpec":
        """The spec matching every packet."""
        return cls([Clause()], "any")

    def matches(self, packet) -> bool:
        """Whether a concrete packet satisfies some clause."""
        return any(clause.matches(packet) for clause in self.clauses)

    def compiled(self) -> Tuple[Tuple[Tuple[str, IntervalSet], ...], ...]:
        """The DNF as nested tuples of (field, IntervalSet) pairs.

        One tuple per clause, in clause order.  Vectorized matchers
        (``IPFilter.push_batch`` and friends) hoist this once and loop
        over plain tuples per packet instead of paying the
        ``matches()`` call and dict iteration per packet.
        """
        return tuple(
            clause.constraint_items() for clause in self.clauses
        )

    def constrained_fields(self) -> Set[str]:
        """Union of fields constrained by any clause."""
        fields: Set[str] = set()
        for clause in self.clauses:
            fields |= clause.fields()
        return fields

    def is_satisfiable(self) -> bool:
        """Whether at least one clause is non-contradictory."""
        return bool(self.clauses)

    def __repr__(self) -> str:
        return "FlowSpec(%r)" % (self.source,)


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_WORD_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<and>&&)
  | (?P<or>\|\|)
  | (?P<not>!)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<cidr>\d+\.\d+\.\d+\.\d+/\d+)
  | (?P<ip>\d+\.\d+\.\d+\.\d+)
  | (?P<range>\d+-\d+)
  | (?P<number>\d+)
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _WORD_RE.match(text, pos)
        if match is None:
            raise PolicyError(
                "unexpected character %r in flow spec %r" % (text[pos], text)
            )
        kind = match.lastgroup
        if kind == "word":
            word = match.group().lower()
            if word == "and":
                kind = "and"
            elif word == "or":
                kind = "or"
            elif word == "not":
                kind = "not"
            tokens.append((kind, word))
        elif kind != "ws":
            tokens.append((kind, match.group()))
        pos = match.end()
    return tokens


# ---------------------------------------------------------------------------
# Parser (produces DNF directly)
# ---------------------------------------------------------------------------


class _SpecParser:
    def __init__(self, tokens: List[Tuple[str, str]], source: str):
        self.tokens = tokens
        self.index = 0
        self.source = source

    def _peek(self) -> Optional[Tuple[str, str]]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise PolicyError("flow spec %r ended unexpectedly" % self.source)
        self.index += 1
        return token

    def _error(self, message: str):
        raise PolicyError("%s in flow spec %r" % (message, self.source))

    # Each production returns a DNF: List[Clause].
    def parse(self) -> List[Clause]:
        dnf = self._or_expr()
        if self._peek() is not None:
            self._error("trailing tokens %r" % (self._peek()[1],))
        return dnf

    def _or_expr(self) -> List[Clause]:
        dnf = self._and_expr()
        while self._peek() is not None and self._peek()[0] == "or":
            self._next()
            dnf = dnf + self._and_expr()
        return dnf

    def _and_expr(self) -> List[Clause]:
        dnf = self._unary()
        while True:
            token = self._peek()
            if token is None or token[0] in ("or", "rparen"):
                break
            if token[0] == "and":
                self._next()
            dnf = _conjoin_dnf(dnf, self._unary())
        return dnf

    def _unary(self) -> List[Clause]:
        token = self._peek()
        if token is None:
            self._error("expected a predicate")
        if token[0] == "not":
            self._next()
            return _negate_dnf(self._unary())
        if token[0] == "lparen":
            self._next()
            dnf = self._or_expr()
            closing = self._next()
            if closing[0] != "rparen":
                self._error("expected ')'")
            return dnf
        return self._primitive()

    # -- primitives ----------------------------------------------------------
    def _primitive(self) -> List[Clause]:
        kind, text = self._next()
        if kind == "word":
            if text in _PROTO_WORDS:
                return [
                    Clause(
                        {pkt.IP_PROTO: IntervalSet.single(_PROTO_WORDS[text])}
                    )
                ]
            if text in ("ip", "any", "all", "true"):
                return [Clause()]
            if text == "syn":
                # Set is coarse: any flags value with the SYN bit; matching
                # exact bitmask sets is approximated by the common values.
                return [
                    Clause(
                        {
                            pkt.TCP_FLAGS: IntervalSet.from_values(
                                [
                                    v
                                    for v in range(256)
                                    if v & pkt.TH_SYN
                                ]
                            )
                        }
                    )
                ]
            if text in ("src", "dst"):
                return self._directional(text)
            if text in ("port", "host", "net"):
                return self._bidirectional(text)
            if text == "proto":
                return [Clause({pkt.IP_PROTO: self._number_set(255)})]
            if text == "ttl":
                return [Clause({pkt.IP_TTL: self._number_set(255)})]
            if text == "tos":
                return [Clause({pkt.IP_TOS: self._number_set(255)})]
            self._error("unknown predicate %r" % (text,))
        if kind in ("ip", "cidr"):
            # A bare address means "host ADDR" (either direction).
            addresses = _address_set(text)
            return [
                Clause({pkt.IP_SRC: addresses}),
                Clause({pkt.IP_DST: addresses}),
            ]
        self._error("unexpected token %r" % (text,))

    def _directional(self, direction: str) -> List[Clause]:
        """`src ...` / `dst ...` primitives."""
        token = self._peek()
        if token is None:
            self._error("dangling %r" % (direction,))
        kind, text = token
        if kind == "word" and text == "port":
            self._next()
            field = pkt.TP_SRC if direction == "src" else pkt.TP_DST
            return [Clause({field: self._number_set(65535)})]
        if kind == "word" and text in ("host", "net"):
            self._next()
            kind, text = self._peek() or (None, None)
        if kind in ("ip", "cidr"):
            self._next()
            field = pkt.IP_SRC if direction == "src" else pkt.IP_DST
            return [Clause({field: _address_set(text)})]
        self._error("expected port/host/net after %r" % (direction,))

    def _bidirectional(self, keyword: str) -> List[Clause]:
        """`port N` / `host A` / `net A` match either direction."""
        if keyword == "port":
            values = self._number_set(65535)
            return [
                Clause({pkt.TP_SRC: values}),
                Clause({pkt.TP_DST: values}),
            ]
        kind, text = self._next()
        if kind not in ("ip", "cidr"):
            self._error("expected address after %r" % (keyword,))
        addresses = _address_set(text)
        return [
            Clause({pkt.IP_SRC: addresses}),
            Clause({pkt.IP_DST: addresses}),
        ]

    def _number_set(self, maximum: int) -> IntervalSet:
        kind, text = self._next()
        if kind == "number":
            value = int(text)
            if value > maximum:
                self._error("value %d out of range" % value)
            return IntervalSet.single(value)
        if kind == "range":
            low_text, _, high_text = text.partition("-")
            low, high = int(low_text), int(high_text)
            if high > maximum or low > high:
                self._error("bad range %r" % (text,))
            return IntervalSet.from_interval(low, high)
        self._error("expected a number, got %r" % (text,))


def _address_set(text: str) -> IntervalSet:
    if "/" in text:
        network, plen = parse_prefix(text)
        low, high = prefix_range(network, plen)
        return IntervalSet.from_interval(low, high)
    return IntervalSet.single(parse_ip(text))


def _conjoin_dnf(
    left: List[Clause], right: List[Clause]
) -> List[Clause]:
    out: List[Clause] = []
    for a in left:
        for b in right:
            merged = a.conjoin(b)
            if merged is not None:
                out.append(merged)
    return out


def _negate_dnf(dnf: List[Clause]) -> List[Clause]:
    # NOT(c1 OR c2 ...) = NOT c1 AND NOT c2 ...; each NOT ci is a DNF.
    result: List[Clause] = [Clause()]
    for clause in dnf:
        result = _conjoin_dnf(result, clause.negated_clauses())
    return result


def parse_flowspec(text: str) -> FlowSpec:
    """Parse a tcpdump-style flow specification.

    >>> spec = parse_flowspec("udp dst port 1500")
    >>> from repro.click import Packet, UDP
    >>> spec.matches(Packet(ip_proto=UDP, tp_dst=1500))
    True
    """
    text = text.strip()
    if not text:
        return FlowSpec.any()
    clauses = _SpecParser(_tokenize(text), text).parse()
    return FlowSpec(clauses, text)


# ---------------------------------------------------------------------------
# const-field lists
# ---------------------------------------------------------------------------

#: Mapping from the paper's const-field vocabulary to canonical fields.
_CONST_FIELD_WORDS: Dict[str, Tuple[str, ...]] = {
    "proto": (pkt.IP_PROTO,),
    "payload": (pkt.PAYLOAD,),
    "ttl": (pkt.IP_TTL,),
    "tos": (pkt.IP_TOS,),
    "flags": (pkt.TCP_FLAGS,),
    "src port": (pkt.TP_SRC,),
    "dst port": (pkt.TP_DST,),
    "port": (pkt.TP_SRC, pkt.TP_DST),
    "src host": (pkt.IP_SRC,),
    "dst host": (pkt.IP_DST,),
    "src": (pkt.IP_SRC,),
    "dst": (pkt.IP_DST,),
    "host": (pkt.IP_SRC, pkt.IP_DST),
}


def parse_const_fields(text: str) -> Set[str]:
    """Parse a const-field list like ``proto && dst port && payload``.

    Returns the set of canonical field names that must stay invariant.

    >>> sorted(parse_const_fields("proto && dst port && payload"))
    ['ip_proto', 'payload', 'tp_dst']
    """
    fields: Set[str] = set()
    for chunk in re.split(r"&&|,| and ", text):
        chunk = " ".join(chunk.split()).lower()
        if not chunk:
            continue
        if chunk not in _CONST_FIELD_WORDS:
            raise PolicyError("unknown const field %r" % (chunk,))
        fields.update(_CONST_FIELD_WORDS[chunk])
    return fields
