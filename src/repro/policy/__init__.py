"""The In-Net policy and requirements language (Section 4.2).

Two small languages live here:

* **flow specifications** -- a tcpdump-like predicate syntax
  (``udp dst port 1500 and src net 10.0.0.0/8``) parsed by
  :mod:`repro.policy.flowspec` into disjunctions of per-field interval
  constraints, usable both to match concrete packets and to constrain
  symbolic ones;
* **reachability requirements** -- the paper's
  ``reach from <node> [flow] {-> <node> [flow] [const fields]}+``
  statements, parsed by :mod:`repro.policy.grammar`.

Clients and operators use the same API: clients state how they want the
network to behave without knowing topology or operator policy; operators
state rules that must always hold (e.g. all HTTP traffic traverses the
HTTP optimizer).
"""

from repro.policy.flowspec import (
    FIELD_UNIVERSES,
    Clause,
    FlowSpec,
    parse_const_fields,
    parse_flowspec,
)
from repro.policy.grammar import (
    Hop,
    NodeRef,
    ReachRequirement,
    parse_requirement,
    parse_requirements,
)

__all__ = [
    "FlowSpec",
    "Clause",
    "parse_flowspec",
    "parse_const_fields",
    "FIELD_UNIVERSES",
    "ReachRequirement",
    "Hop",
    "NodeRef",
    "parse_requirement",
    "parse_requirements",
]
