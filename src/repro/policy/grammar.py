"""Parser for In-Net reachability requirements (Section 4.2).

The API supports checks of the form::

    reach from <node> [flow]
        {-> <node> [flow] [const <fields>]}+

where a *node* is an IP address or subnet, the keyword ``client``
(operator's residential clients), the keyword ``internet`` (arbitrary
outside traffic), a named operator middlebox, or a port of a Click
element in a processing module (``module:element:port``).

The ``flow`` after a node constrains the traffic *departing* that node in
tcpdump syntax; ``const`` names header fields that must be invariant on
the hop arriving at that node.  Example from the paper (Figure 4)::

    reach from internet udp
        -> Batcher:dst:0 dst 172.16.15.133
        -> client dst port 1500
           const proto && dst port && payload
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.common.addr import parse_prefix
from repro.common.errors import PolicyError
from repro.policy.flowspec import (
    FlowSpec,
    parse_const_fields,
    parse_flowspec,
)

# Node reference kinds.
KIND_ADDRESS = "address"      # IP or subnet
KIND_CLIENT = "client"        # operator's residential client subnets
KIND_INTERNET = "internet"    # arbitrary outside traffic
KIND_NAME = "name"            # a named node in the operator topology
KIND_ELEMENT = "element"      # module:element[:port] inside a module


@dataclass(frozen=True)
class NodeRef:
    """A reference to a vertex of the network graph in a requirement."""

    kind: str
    #: For KIND_ADDRESS: (network, prefix_len).
    prefix: Optional[Tuple[int, int]] = None
    #: For KIND_NAME: the node name.  For KIND_ELEMENT: the module name.
    name: Optional[str] = None
    #: For KIND_ELEMENT.
    element: Optional[str] = None
    port: int = 0

    def __str__(self) -> str:
        if self.kind == KIND_ADDRESS:
            from repro.common.addr import format_prefix

            network, plen = self.prefix
            if plen == 32:
                from repro.common.addr import format_ip

                return format_ip(network)
            return format_prefix(network, plen)
        if self.kind == KIND_ELEMENT:
            return "%s:%s:%d" % (self.name, self.element, self.port)
        if self.kind == KIND_NAME:
            return self.name
        return self.kind


@dataclass(frozen=True)
class Hop:
    """One node of a reach statement with its flow/const annotations."""

    node: NodeRef
    #: Constraint on the flow departing this node (None = unconstrained).
    flow: Optional[FlowSpec] = None
    #: Fields that must be invariant on the hop *arriving* at this node.
    const_fields: FrozenSet[str] = field(default_factory=frozenset)


#: Requirement modes.
MODE_REACH = "reach"       # EXISTS a conforming flow
MODE_ISOLATE = "isolate"   # NO flow realizes the hops
MODE_ALWAYS = "always"     # EVERY flow reaching the target traversed
#                            every waypoint, in order (Section 2.2's
#                            "all HTTP traffic must go through the
#                            HTTP middlebox")


@dataclass(frozen=True)
class ReachRequirement:
    """A parsed ``reach`` / ``isolate`` / ``always`` statement.

    * ``reach from ...``: satisfied when at least one symbolic flow
      conforms (the paper's API),
    * ``isolate from ...``: satisfied when NO symbolic flow realizes
      the hop sequence,
    * ``always from ...``: satisfied when every flow from the origin
      that reaches the final hop has traversed all waypoints in order
      -- universal waypointing, the Section 2.2 placement policy.
    """

    hops: Tuple[Hop, ...]
    source: str = ""
    #: False for `isolate` statements (kept for compatibility).
    expect_reachable: bool = True
    mode: str = MODE_REACH

    @property
    def origin(self) -> Hop:
        """The ``from`` node."""
        return self.hops[0]

    @property
    def waypoints(self) -> Tuple[Hop, ...]:
        """Intermediate nodes (everything between origin and target)."""
        return self.hops[1:-1]

    @property
    def target(self) -> Hop:
        """The final node traffic must reach."""
        return self.hops[-1]

    def __str__(self) -> str:
        return self.source or "reach from %s" % (self.hops[0].node,)


_NODE_TOKEN_RE = re.compile(r"^\S+")
_IP_LIKE_RE = re.compile(r"^\d+\.\d+\.\d+\.\d+(/\d+)?$")

#: Placeholder the controller substitutes with the module under
#: verification (Section 2.2: per-tenant placement policy).
MODULE_PLACEHOLDER = "$module"


def _parse_node(token: str) -> NodeRef:
    if token == "client":
        return NodeRef(KIND_CLIENT)
    if token == "internet":
        return NodeRef(KIND_INTERNET)
    if token == MODULE_PLACEHOLDER:
        return NodeRef(KIND_NAME, name=MODULE_PLACEHOLDER)
    if _IP_LIKE_RE.match(token):
        return NodeRef(KIND_ADDRESS, prefix=parse_prefix(token))
    if ":" in token:
        parts = token.split(":")
        if len(parts) == 2:
            module, element = parts
            port = 0
        elif len(parts) == 3:
            module, element, port_text = parts
            if not port_text.isdigit():
                raise PolicyError("bad element port in %r" % (token,))
            port = int(port_text)
        else:
            raise PolicyError("bad element reference %r" % (token,))
        if not module or not element:
            raise PolicyError("bad element reference %r" % (token,))
        return NodeRef(KIND_ELEMENT, name=module, element=element, port=port)
    if re.match(r"^[A-Za-z_][\w.-]*$", token):
        return NodeRef(KIND_NAME, name=token)
    raise PolicyError("cannot parse node reference %r" % (token,))


def _parse_segment(segment: str, is_origin: bool) -> Hop:
    segment = segment.strip()
    if not segment:
        raise PolicyError("empty hop in reach statement")
    node_match = _NODE_TOKEN_RE.match(segment)
    node = _parse_node(node_match.group())
    rest = segment[node_match.end():].strip()
    const_fields: FrozenSet[str] = frozenset()
    # `const` splits the remainder into flow-spec and const-field parts.
    const_match = re.search(r"(?:^|\s)const\s", rest)
    if const_match:
        const_text = rest[const_match.end():].strip()
        rest = rest[: const_match.start()].strip()
        if is_origin:
            raise PolicyError(
                "const fields are not allowed on the origin node"
            )
        const_fields = frozenset(parse_const_fields(const_text))
    flow = parse_flowspec(rest) if rest else None
    return Hop(node=node, flow=flow, const_fields=const_fields)


def parse_requirement(text: str) -> ReachRequirement:
    """Parse a ``reach from ...`` / ``isolate from ...`` statement.

    >>> req = parse_requirement(
    ...     "reach from internet udp -> client dst port 1500")
    >>> req.origin.node.kind, req.target.node.kind
    ('internet', 'client')
    >>> parse_requirement(
    ...     "isolate from internet -> client").expect_reachable
    False
    """
    source = " ".join(text.split())
    body = source
    mode = None
    for verb in (MODE_REACH, MODE_ISOLATE, MODE_ALWAYS):
        if body.startswith(verb):
            mode = verb
            body = body[len(verb):].strip()
            break
    if mode is None:
        raise PolicyError(
            "requirement must start with 'reach', 'isolate' or "
            "'always': %r" % text
        )
    if not body.startswith("from"):
        raise PolicyError("expected 'from': %r" % text)
    body = body[len("from"):].strip()
    segments = body.split("->")
    if len(segments) < 2:
        raise PolicyError(
            "requirement needs at least one '->' hop: %r" % text
        )
    hops = [_parse_segment(segments[0], is_origin=True)]
    hops.extend(_parse_segment(s, is_origin=False) for s in segments[1:])
    if mode == MODE_ALWAYS and len(hops) < 3:
        raise PolicyError(
            "'always' needs at least one waypoint between origin and "
            "target: %r" % text
        )
    return ReachRequirement(
        hops=tuple(hops), source=source,
        expect_reachable=(mode != MODE_ISOLATE),
        mode=mode,
    )


def parse_requirements(text: str) -> List[ReachRequirement]:
    """Parse a block of newline-separated reach statements.

    Statements may span multiple lines; a new statement starts whenever a
    line begins with ``reach``.  Blank lines and ``#`` comments are
    ignored.
    """
    statements: List[str] = []
    current: List[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if (
            stripped.startswith(("reach", "isolate", "always"))
            and current
        ):
            statements.append(" ".join(current))
            current = []
        current.append(stripped)
    if current:
        statements.append(" ".join(current))
    return [parse_requirement(s) for s in statements]
