"""The push-notification use case (Sections 4.5 and 8, Figure 13).

A mobile customer asks the operator to batch incoming UDP notifications
on port 1500.  The flow end to end:

1. the client submits the Figure 4 request; the controller verifies it
   (platforms 1 and 2 fail the reachability check; platform 3 is
   picked) and returns the module's external address,
2. notification servers send 1 KB UDP messages every 30 s to that
   address; the module's ``TimedUnqueue`` batches them,
3. the device's radio only wakes per *batch*: the RRC energy model
   turns the delivery schedule into average power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.click import Packet, Runtime, UDP
from repro.common.addr import parse_ip
from repro.common.errors import DeploymentError
from repro.core import ClientRequest, Controller, ROLE_CLIENT
from repro.netmodel.examples import CLIENT_ADDR, figure3_network
from repro.sim.energy import RadioEnergyModel

#: The Figure 4 client request, verbatim modulo whitespace.
FIGURE4_CONFIG = """
    FromNetfront() ->
    IPFilter(allow udp port 1500) ->
    IPRewriter(pattern - - %s - 0 0)
    -> TimedUnqueue(%s, 100)
    -> dst :: ToNetfront();
"""

FIGURE4_REQUIREMENTS = (
    "reach from internet udp"
    " -> batcher:dst:0 dst %s"
    " -> client dst port 1500"
    "    const proto && dst port && payload"
)

#: Request execution time observed by the paper's mobile client: the
#: controller answers in ~0.1 s; the rest is waking the 3G interface.
CONTROLLER_LATENCY_S = 0.106
RADIO_WAKE_S = 2.9


@dataclass
class PushDeployment:
    """Result of setting up the batcher module."""

    module_address: str
    platform: str
    request_latency_s: float
    runtime: Runtime = None


@dataclass
class EnergySample:
    """One point of the Figure 13 sweep."""

    batch_interval_s: float
    average_power_mw: float
    batches_delivered: int
    messages_delivered: int


class PushNotificationScenario:
    """Drives the full push-notification pipeline."""

    def __init__(
        self,
        controller: Optional[Controller] = None,
        client_addr: str = CLIENT_ADDR,
        message_interval_s: float = 30.0,
    ):
        self.controller = controller or Controller(figure3_network())
        self.client_addr = client_addr
        self.message_interval_s = message_interval_s
        self.energy_model = RadioEnergyModel()

    # -- step 1: deployment ------------------------------------------------
    def deploy(self, batch_interval_s: float = 120.0) -> PushDeployment:
        """Submit the Figure 4 request and instantiate the module.

        Re-deploying replaces the previous batcher (the client kills it
        and submits a fresh request, e.g. to change the interval).
        """
        if "batcher" in self.controller.deployed:
            self.controller.kill("batcher")
        request = ClientRequest(
            client_id="mobile-client",
            role=ROLE_CLIENT,
            config_source=FIGURE4_CONFIG
            % (self.client_addr, batch_interval_s),
            requirements=FIGURE4_REQUIREMENTS % (self.client_addr,),
            owned_addresses=(self.client_addr,),
            module_name="batcher",
        )
        result = self.controller.request(request)
        if not result:
            raise DeploymentError(
                "push-notification request denied: %s" % result.reason
            )
        record = self.controller.deployed["batcher"]
        runtime = Runtime(record.config)
        return PushDeployment(
            module_address=result.address,
            platform=result.platform,
            request_latency_s=CONTROLLER_LATENCY_S + RADIO_WAKE_S,
            runtime=runtime,
        )

    # -- step 2: traffic through the deployed module -----------------------
    def run_traffic(
        self,
        deployment: PushDeployment,
        window_s: float = 3600.0,
        payload_bytes: int = 1024,
    ) -> Tuple[List[Tuple[float, int]], int]:
        """Send a notification every ``message_interval_s`` through the
        real Click runtime of the deployed configuration.

        Returns ``(delivery_bursts, messages_delivered)`` where each
        burst is ``(time, message_count)`` as observed at the module's
        egress -- the schedule the device's radio actually sees.
        """
        runtime = deployment.runtime
        source = runtime.config.sources()[0]
        module_addr = parse_ip(deployment.module_address)
        t = self.message_interval_s
        seq = 0
        while t <= window_s:
            packet = Packet(
                ip_src=parse_ip("203.0.113.7"),  # notification server
                ip_dst=module_addr,
                ip_proto=UDP,
                tp_src=40000 + (seq % 1000),
                tp_dst=1500,
                length=payload_bytes,
                payload=b"notify-%d" % seq,
            )
            runtime.inject(source, packet, at=t)
            seq += 1
            t += self.message_interval_s
        runtime.run(until=window_s + 1.0)
        bursts: Dict[float, int] = {}
        for record in runtime.output:
            bursts[record.time] = bursts.get(record.time, 0) + 1
        schedule = sorted(bursts.items())
        delivered = sum(count for _t, count in schedule)
        return schedule, delivered

    # -- step 3: energy ------------------------------------------------------
    def energy_sweep(
        self,
        batch_intervals: Tuple[float, ...] = (30.0, 60.0, 120.0, 240.0),
        window_s: float = 3600.0,
    ) -> List[EnergySample]:
        """Figure 13: average power per batching interval.

        Each point re-deploys the batcher with the new interval, runs an
        hour of notifications through the Click runtime, and feeds the
        observed delivery schedule to the radio model.
        """
        samples: List[EnergySample] = []
        for interval in batch_intervals:
            controller = Controller(figure3_network())
            scenario = PushNotificationScenario(
                controller, self.client_addr, self.message_interval_s
            )
            deployment = scenario.deploy(batch_interval_s=interval)
            schedule, delivered = scenario.run_traffic(
                deployment, window_s=window_s
            )
            power = self.energy_model.average_power_mw(schedule, window_s)
            samples.append(
                EnergySample(
                    batch_interval_s=interval,
                    average_power_mw=power,
                    batches_delivered=len(schedule),
                    messages_delivered=delivered,
                )
            )
        return samples

    def unbatched_power_mw(self, window_s: float = 3600.0) -> float:
        """Baseline: every notification wakes the radio immediately."""
        schedule = []
        t = self.message_interval_s
        while t <= window_s:
            schedule.append((t, 1))
            t += self.message_interval_s
        return self.energy_model.average_power_mw(schedule, window_s)
