"""The Section 8 use cases, end to end.

Each module wires the In-Net pieces -- controller, platforms, dataplane,
simulators -- into one of the paper's demonstrations:

* :mod:`repro.usecases.push_notifications` -- batching mobile push
  traffic to save radio energy (Figures 4 and 13),
* :mod:`repro.usecases.tunneling` -- running SCTP over UDP vs TCP
  tunnels, and picking the right one via an In-Net reachability query
  instead of a 3-second timeout (Figure 14),
* :mod:`repro.usecases.dos_protection` -- defending a web server
  against Slowloris with on-demand reverse proxies (Figure 15),
* :mod:`repro.usecases.cdn` -- a small content-distribution network of
  sandboxed x86 caches with geolocation steering (Figure 16).
"""

from repro.usecases.amplification import (
    AmplificationScenario,
    compare_mitigations,
)
from repro.usecases.cdn import CdnScenario
from repro.usecases.dos_protection import SlowlorisScenario
from repro.usecases.push_notifications import PushNotificationScenario
from repro.usecases.tunneling import TunnelScenario

__all__ = [
    "AmplificationScenario",
    "compare_mitigations",
    "PushNotificationScenario",
    "TunnelScenario",
    "SlowlorisScenario",
    "CdnScenario",
]
