"""The DoS-protection use case (Section 8, Figure 15).

Slowloris starves a web server by holding as many connections open as
possible, trickling request bytes so the server never times them out.
The In-Net defense: when under attack, the origin instantiates stock
reverse-proxy modules on remote operators' platforms and redirects new
connections to them via geolocation DNS -- ramping up effective
capacity without touching the origin's hardware.

The simulation reports valid requests served per second before, during,
and after the defense kicks in, for a single server vs the In-Net
deployment -- Figure 15's two series.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.errors import DeploymentError
from repro.core import ClientRequest, Controller, ROLE_THIRD_PARTY
from repro.netmodel.examples import figure3_network
from repro.sim.events import EventLoop
from repro.sim.http import HttpServer


@dataclass
class SlowlorisTimeline:
    """Figure 15 output: valid requests served per second over time."""

    times: List[float]
    single_server: List[float]
    with_innet: List[float]
    attack_start: float
    attack_end: float
    defense_at: float
    proxies_deployed: int


class SlowlorisScenario:
    """Simulates the attack and the In-Net defense."""

    def __init__(
        self,
        valid_rate_per_s: float = 300.0,
        attack_connections: int = 4000,
        attack_hold_s: float = 120.0,
        origin_slots: int = 400,
        proxy_slots: int = 2000,
        n_proxies: int = 3,
        origin_addr: str = "198.51.100.1",
        seed: int = 7,
    ):
        self.valid_rate_per_s = valid_rate_per_s
        self.attack_connections = attack_connections
        self.attack_hold_s = attack_hold_s
        self.origin_slots = origin_slots
        self.proxy_slots = proxy_slots
        self.n_proxies = n_proxies
        self.origin_addr = origin_addr
        self.seed = seed

    # -- controller interaction --------------------------------------------
    def deploy_proxies(self, controller: Controller) -> int:
        """Instantiate the stock reverse proxies via the controller.

        The content provider is an untrusted third party: the request
        passes because the proxy's egress is implicitly authorized
        (responses) or goes to its registered origin address.
        """
        deployed = 0
        for index in range(self.n_proxies):
            request = ClientRequest(
                client_id="webshield",
                role=ROLE_THIRD_PARTY,
                stock="reverse-proxy",
                stock_params=(self.origin_addr, "80"),
                owned_addresses=(self.origin_addr,),
                module_name="shield%d" % index,
            )
            result = controller.request(request)
            if not result:
                raise DeploymentError(
                    "proxy deployment denied: %s" % result.reason
                )
            deployed += 1
        return deployed

    # -- the attack ------------------------------------------------------------
    def run(
        self,
        duration_s: float = 900.0,
        attack_start: float = 120.0,
        defense_delay_s: float = 180.0,
        bin_s: float = 10.0,
        controller: Optional[Controller] = None,
    ) -> SlowlorisTimeline:
        """Run both timelines and return the Figure 15 series."""
        attack_end = attack_start + 480.0
        defense_at = attack_start + defense_delay_s
        single = self._run_one(
            duration_s, attack_start, attack_end, None, bin_s
        )
        controller = controller or Controller(figure3_network())
        proxies = self.deploy_proxies(controller)
        defended = self._run_one(
            duration_s, attack_start, attack_end, defense_at, bin_s
        )
        times = [i * bin_s for i in range(len(single))]
        return SlowlorisTimeline(
            times=times,
            single_server=single,
            with_innet=defended,
            attack_start=attack_start,
            attack_end=attack_end,
            defense_at=defense_at,
            proxies_deployed=proxies,
        )

    # -- internals ----------------------------------------------------------------
    def _run_one(
        self,
        duration_s: float,
        attack_start: float,
        attack_end: float,
        defense_at: Optional[float],
        bin_s: float,
    ) -> List[float]:
        loop = EventLoop()
        rng = random.Random(self.seed)
        origin = HttpServer(loop, max_connections=self.origin_slots)
        proxies: List[HttpServer] = []

        def activate_defense() -> None:
            for _ in range(self.n_proxies):
                proxies.append(
                    HttpServer(loop, max_connections=self.proxy_slots)
                )

        if defense_at is not None:
            loop.schedule_at(defense_at, activate_defense)

        # Valid clients: Poisson arrivals; geolocation DNS steers them
        # to a proxy once the defense is live.
        def schedule_valid(t: float) -> None:
            while t < duration_s:
                t += rng.expovariate(self.valid_rate_per_s)
                loop.schedule_at(min(t, duration_s), _valid_request)

        def _valid_request() -> None:
            if proxies:
                target = rng.choice(proxies)
            else:
                target = origin
            target.try_open()

        # Attacker: floods connections at attack_start, re-opens any
        # rejected/expired ones every few seconds until attack_end.
        def attack_wave() -> None:
            if loop.now >= attack_end:
                return
            targets = [origin] + proxies
            for _ in range(self.attack_connections // 10):
                # The attacker spreads over whatever DNS points at.
                rng.choice(targets).try_open(hold_s=self.attack_hold_s)
            loop.schedule(5.0, attack_wave)

        schedule_valid(0.0)
        loop.schedule_at(attack_start, attack_wave)
        loop.run_until(duration_s)
        return origin_and_proxy_rate(origin, proxies, bin_s, duration_s)


def origin_and_proxy_rate(
    origin: HttpServer,
    proxies: List[HttpServer],
    bin_s: float,
    until: float,
) -> List[float]:
    """Combined valid-request completion rate across all servers."""
    series = origin.served_per_second(bin_s, until)
    for proxy in proxies:
        extra = proxy.served_per_second(bin_s, until)
        series = [a + b for a, b in zip(series, extra)]
    return series
