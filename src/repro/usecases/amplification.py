"""The amplification-attack analysis of Section 7.

The implicit-authorization rule has a caveat: "an attacker can send
packets to a processing module using packets with spoofed source
addresses.  This implicitly (and fakely) authorizes the processing
module to communicate with the traffic source" -- the classic DNS
amplification pattern (small spoofed queries, large responses to the
victim).

The paper's mitigations, both implemented here:

* **ingress filtering** on the Internet and client links: outsiders
  can then only spoof other outsiders, and clients other clients, so
  the operator's customers cannot be amplified against from outside;
* **banning connectionless traffic**: with TCP, the attacker cannot
  complete the three-way handshake from a spoofed source, so no
  response traffic is ever elicited.  ("Operators must choose between
  flexibility of client processing and security.")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.click import Packet, TCP, UDP, parse_config
from repro.common.addr import format_ip, parse_ip
from repro.netmodel.forwarding import ForwardingPlane
from repro.netmodel.topology import Network

VICTIM_ADDR = "172.16.15.133"
REPLICAS = ("198.51.100.1", "198.51.100.2")
QUERY_BYTES = 64


@dataclass
class AmplificationReport:
    """Outcome of one attack run."""

    queries_sent: int
    attacker_bytes: int
    victim_packets: int
    victim_bytes: int
    dropped_spoofed: int

    @property
    def amplification_factor(self) -> float:
        """Bytes hitting the victim per attacker byte."""
        if not self.attacker_bytes:
            return 0.0
        return self.victim_bytes / self.attacker_bytes


class AmplificationScenario:
    """DNS-style amplification against an In-Net stock module."""

    def __init__(self, ingress_filtering: bool = False):
        self.ingress_filtering = ingress_filtering
        self.network = self._build_network(ingress_filtering)
        self.module_address = self._deploy_dns()
        self.plane = ForwardingPlane(self.network)

    # -- topology --------------------------------------------------------
    def _build_network(self, filtered: bool) -> Network:
        net = Network("amplification")
        net.add_internet()
        net.add_router("r")
        net.add_client_subnet("clients", "172.16.0.0/16")
        net.add_platform("platform", "192.0.2.0/24")
        if filtered:
            net.add_middlebox(
                "ingress", "IngressFilter",
                "172.16.0.0/16", "192.0.2.0/24",
            )
            net.link("internet", "ingress", b_port=0)   # inbound side
            net.link("ingress", "r", a_port=1)
        else:
            net.link("internet", "r")
        net.link("r", "clients")
        net.link("r", "platform")
        net.compute_routes()
        return net

    def _deploy_dns(self) -> int:
        platform = self.network.node("platform")
        address = platform.allocate_address()
        platform.deploy("geodns", address, parse_config("""
            src :: FromNetfront();
            dns :: GeoDNSServer(%s);
            out :: ToNetfront();
            src -> dns -> out;
        """ % ", ".join(REPLICAS)))
        self.network.compute_routes()
        return address

    # -- the attack ----------------------------------------------------------
    def attack(
        self, queries: int = 100, proto: int = UDP
    ) -> AmplificationReport:
        """Send spoofed queries from the internet; count victim bytes.

        With ``proto=TCP`` the queries model bare SYNs: a spoofed
        source can never complete the handshake, so the DNS module
        never sees an established query and sends nothing.
        """
        victim = parse_ip(VICTIM_ADDR)
        attacker_bytes = 0
        for seq in range(queries):
            if proto == TCP:
                # The SYN/ACK goes to the victim, who RSTs it; the
                # handshake never completes and no query is made, so
                # the attack reduces to a 40-byte SYN reflection.
                attacker_bytes += 40
                continue
            packet = Packet(
                ip_src=victim,                     # spoofed!
                ip_dst=self.module_address,
                ip_proto=proto,
                tp_src=30000 + seq,
                tp_dst=53,
                length=QUERY_BYTES,
                payload=b"query",
            )
            attacker_bytes += QUERY_BYTES
            self.plane.send("internet", packet)
        deliveries = self.plane.deliveries_at("clients")
        dropped = 0
        if self.ingress_filtering:
            dropped = self.plane.middlebox_element(
                "ingress"
            ).dropped_spoofed
        return AmplificationReport(
            queries_sent=queries,
            attacker_bytes=attacker_bytes,
            victim_packets=len(deliveries),
            victim_bytes=sum(d.packet.length for d in deliveries),
            dropped_spoofed=dropped,
        )


def compare_mitigations(queries: int = 100) -> List[tuple]:
    """The Section 7 comparison table.

    Returns ``[(scenario label, amplification factor, victim pkts)]``
    for: unfiltered UDP, ingress-filtered UDP, and TCP-only.
    """
    rows = []
    open_udp = AmplificationScenario(ingress_filtering=False)
    report = open_udp.attack(queries, proto=UDP)
    rows.append(("UDP, no ingress filtering",
                 report.amplification_factor, report.victim_packets))
    filtered = AmplificationScenario(ingress_filtering=True)
    report = filtered.attack(queries, proto=UDP)
    rows.append(("UDP, ingress filtering",
                 report.amplification_factor, report.victim_packets))
    tcp_only = AmplificationScenario(ingress_filtering=False)
    report = tcp_only.attack(queries, proto=TCP)
    rows.append(("TCP only (connectionless banned)",
                 report.amplification_factor, report.victim_packets))
    return rows
