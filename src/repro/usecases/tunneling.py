"""The protocol-tunneling use case (Section 8, Figure 14).

Deploying SCTP natively is impossible (middleboxes drop non-TCP/UDP);
tunneling over UDP performs well but may be firewalled; tunneling over
TCP always works but stacks congestion-control loops.  The experiment
measures SCTP goodput through both tunnels on a 100 Mb/s, 20 ms-RTT
emulated WAN link across loss rates, and the use case shows how an
In-Net reachability query replaces the 3-second timeout fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core import Controller
from repro.netmodel.examples import figure3_network
from repro.policy import parse_requirement
from repro.sim.tcp import (
    SCTP_INIT_TIMEOUT_S,
    reachability_probe_time_s,
    sctp_over_tcp_goodput,
    sctp_over_udp_goodput,
)


@dataclass
class TunnelSample:
    """One point of the Figure 14 sweep."""

    loss: float
    udp_goodput_bps: float
    tcp_goodput_bps: float

    @property
    def ratio(self) -> float:
        """How many times faster the UDP tunnel is."""
        if self.tcp_goodput_bps <= 0:
            return float("inf")
        return self.udp_goodput_bps / self.tcp_goodput_bps


class TunnelScenario:
    """The SCTP-tunnel experiment and the tunnel-selection query."""

    def __init__(
        self,
        capacity_bps: float = 100e6,
        rtt_s: float = 0.020,
        controller: Optional[Controller] = None,
    ):
        self.capacity_bps = capacity_bps
        self.rtt_s = rtt_s
        self.controller = controller or Controller(figure3_network())

    def sweep(
        self,
        losses: Tuple[float, ...] = (0.0, 0.01, 0.02, 0.03, 0.04, 0.05),
    ) -> List[TunnelSample]:
        """Figure 14: goodput of both tunnels across loss rates."""
        return [
            TunnelSample(
                loss=loss,
                udp_goodput_bps=sctp_over_udp_goodput(
                    self.capacity_bps, self.rtt_s, loss
                ),
                tcp_goodput_bps=sctp_over_tcp_goodput(
                    self.capacity_bps, self.rtt_s, loss
                ),
            )
            for loss in losses
        ]

    # -- tunnel selection via the In-Net API --------------------------------
    def udp_reachable(self, destination: str, port: int = 9899) -> bool:
        """Ask the controller whether UDP reaches the destination.

        This is the Section 8 reachability requirement the sender
        submits before choosing a tunnel (~200 ms) instead of waiting
        for SCTP's three-second init timeout.
        """
        requirement = parse_requirement(
            "reach from client udp dst port %d -> internet" % port
        )
        from repro.netmodel.symgraph import NetworkCompiler
        from repro.symexec.reachability import ReachabilityChecker

        compiled = NetworkCompiler(self.controller.network).compile()
        checker = ReachabilityChecker(compiled.resolver)
        exploration = compiled.explore_from(
            requirement.origin.node, requirement.origin.flow
        )
        return bool(checker.check(requirement, exploration))

    def selection_latency_s(self, with_innet: bool) -> float:
        """Time until the sender knows which tunnel to use.

        Without In-Net the sender tries UDP and falls back after the
        SCTP init timeout; with In-Net one API round trip suffices.
        """
        if with_innet:
            return reachability_probe_time_s()
        return SCTP_INIT_TIMEOUT_S
