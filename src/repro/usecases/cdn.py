"""The content-distribution-network use case (Section 8, Figure 16).

The paper runs squid reverse proxies inside sandboxed x86 VMs on In-Net
platforms in Romania, Germany and Italy, with the origin in Italy, and
measures 1 KB downloads from 75 PlanetLab clients across Europe,
steering each client to its nearest cache via geolocation.

We substitute a geographic latency model for PlanetLab: clients and
sites are points on a plane (scaled to European distances), and RTT is
propagation (great-circle-ish distance at 2/3 c) plus a per-hop jitter.
The download delay of a 1 KB file is handshake + request/response, i.e.
~2 RTTs to whichever server answers.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import DeploymentError
from repro.core import ClientRequest, Controller, ROLE_THIRD_PARTY
from repro.core.federation import Federation
from repro.netmodel.examples import figure3_network

#: Rough city coordinates (degrees) for the sites involved.
SITES = {
    "origin-italy": (45.46, 9.19),     # Milan
    "cache-romania": (44.43, 26.10),   # Bucharest
    "cache-germany": (52.52, 13.40),   # Berlin
    "cache-italy": (41.90, 12.50),     # Rome
}

#: Propagation speed in fibre, km/s.
FIBRE_KM_PER_S = 200_000.0
#: Fixed per-connection overhead (server processing, last hop), s.
BASE_DELAY_S = 0.004
def _distance_km(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Equirectangular approximation, good enough at European scale."""
    lat1, lon1 = map(math.radians, a)
    lat2, lon2 = map(math.radians, b)
    x = (lon2 - lon1) * math.cos((lat1 + lat2) / 2)
    y = lat2 - lat1
    return 6371.0 * math.sqrt(x * x + y * y)


def _path_stretch(distance_km: float) -> float:
    """Fibre path stretch over the geodesic.

    Short paths stay within one provider (~1.3x); international paths
    detour through peering points, and the stretch grows with distance
    (Bucharest-Milan style paths routinely triple the geodesic).
    """
    return min(2.6, 1.3 + 0.0008 * distance_km)


def rtt_s(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Round-trip time between two points."""
    distance = _distance_km(a, b)
    stretched = distance * _path_stretch(distance)
    return 2.0 * stretched / FIBRE_KM_PER_S + BASE_DELAY_S


@dataclass
class CdnResult:
    """Figure 16 output: per-client download delays, both setups."""

    origin_delays_s: List[float]
    cdn_delays_s: List[float]
    client_assignments: Dict[int, str]

    def percentile(self, series: List[float], q: float) -> float:
        """Interpolation-free percentile of a delay series."""
        ordered = sorted(series)
        index = min(
            len(ordered) - 1, max(0, int(q / 100.0 * len(ordered)))
        )
        return ordered[index]


class CdnScenario:
    """A 75-client European CDN on In-Net platforms."""

    def __init__(
        self,
        n_clients: int = 75,
        downloads_per_client: int = 20,
        seed: int = 16,
        federation: Optional[Federation] = None,
    ):
        self.n_clients = n_clients
        self.downloads_per_client = downloads_per_client
        self.seed = seed
        if federation is None:
            # One access operator per cache country, as in the paper's
            # wide-area deployment (Romania / Germany / Italy).
            federation = Federation()
            for name in ("cache-romania", "cache-germany",
                         "cache-italy"):
                country = name.split("-", 1)[1]
                federation.add_operator(
                    "operator-%s" % country,
                    Controller(figure3_network()),
                    SITES[name],
                )
        self.federation = federation
        #: Back-compat alias: the first operator's controller.
        self.controller = next(
            iter(self.federation.operators.values())
        ).controller

    # -- deployment ---------------------------------------------------------
    def deploy_caches(self) -> int:
        """Deploy the three x86 cache VMs, each at its nearest operator.

        x86 VMs cannot be statically certified, so every deployment must
        come back with ``sandboxed=True`` -- the paper's point that
        legacy code still runs, it just pays the enforcer.
        """
        deployed = 0
        for name in ("cache-romania", "cache-germany", "cache-italy"):
            request = ClientRequest(
                client_id="smallcdn",
                role=ROLE_THIRD_PARTY,
                stock="x86-vm",
                stock_params=("squid-reverse-proxy",),
                owned_addresses=(SITES_ADDRESSES[name],),
                module_name=name,
            )
            outcome = self.federation.deploy_near(request, SITES[name])
            if not outcome:
                raise DeploymentError(
                    "cache deployment denied: %s"
                    % outcome.result.reason
                )
            if not outcome.result.sandboxed:
                raise DeploymentError(
                    "x86 cache unexpectedly certified without sandbox"
                )
            deployed += 1
        return deployed

    # -- measurement ---------------------------------------------------------
    def run(self) -> CdnResult:
        """Measure 1 KB downloads from origin vs the nearest cache."""
        rng = random.Random(self.seed)
        # PlanetLab nodes cluster around research hubs; we draw clients
        # from gaussians centred near the cache regions (the paper
        # spread its 75 clients "approximately evenly" across caches).
        centres = [
            pos for name, pos in SITES.items()
            if name.startswith("cache-")
        ]
        clients = []
        for index in range(self.n_clients):
            lat, lon = centres[index % len(centres)]
            clients.append(
                (lat + rng.gauss(0.0, 2.5), lon + rng.gauss(0.0, 2.5))
            )
        caches = {
            name: pos
            for name, pos in SITES.items()
            if name.startswith("cache-")
        }
        origin = SITES["origin-italy"]
        origin_delays: List[float] = []
        cdn_delays: List[float] = []
        assignments: Dict[int, str] = {}
        for index, client in enumerate(clients):
            nearest_name = min(
                caches, key=lambda n: rtt_s(client, caches[n])
            )
            assignments[index] = nearest_name
            for _ in range(self.downloads_per_client):
                jitter = rng.uniform(0.0, 0.002)
                origin_delays.append(
                    download_delay_s(rtt_s(client, origin)) + jitter
                )
                cdn_delays.append(
                    download_delay_s(rtt_s(client, caches[nearest_name]))
                    + jitter
                )
        return CdnResult(
            origin_delays_s=origin_delays,
            cdn_delays_s=cdn_delays,
            client_assignments=assignments,
        )


def download_delay_s(connection_rtt_s: float) -> float:
    """Delay of a 1 KB HTTP download: TCP handshake + request/response."""
    return 2.0 * connection_rtt_s


#: Addresses registered for each site (the provider's own servers).
SITES_ADDRESSES = {
    "origin-italy": "198.51.100.1",
    "cache-romania": "198.51.100.11",
    "cache-germany": "198.51.100.12",
    "cache-italy": "198.51.100.13",
}
