"""Columnar (struct-of-arrays) packet batches.

A :class:`PacketColumns` holds one batch of packets as parallel int64
field arrays -- one column per header field -- plus a validity mask, so
vectorized element kernels (``Element.push_columns``) can process the
whole batch with numpy column operations instead of touching one
``Packet`` object per packet.  This is the same list-of-objects to
parallel-arrays move FastClick makes in C++ and SymNet makes for
verification: per-packet attribute traversal becomes a handful of
whole-column operations.

The representation is intentionally *lossless and lazy*:

* **Row identity.**  ``cols.packets[i]`` is row ``i``'s original
  ``Packet`` object.  Annotations, encap stacks, payloads and uids ride
  along untouched; only the numeric header columns are lifted out.
* **One matrix.**  All columns live in a single row-major ``(n, ncols)``
  int64 matrix built with one ``struct.pack_into`` pass (the fastest
  pure-Python path measured; see ``docs/dataplane.md``).  A column is a
  strided view -- writing it writes the matrix.
* **Side-table fallback.**  A column whose values cannot be packed into
  int64 (missing field, ``None``, float, out-of-range int, string) is
  recorded verbatim in :attr:`PacketColumns.side` instead; the runtime
  refuses to run a column plan over a batch with side columns and falls
  back to the exact ``push_batch`` path.
* **Deferred materialization.**  Nothing is written back to the
  ``Packet`` objects until :meth:`to_packets` -- at a segment exit, a
  sink, or a partition point -- and then only *dirty* columns for
  *surviving* rows.  Rows killed mid-plan never materialize their
  writes; a dropped packet is unobservable either way.

``push_columns`` kernels follow the ``push_batch`` contract (no empty
groups, per-group order preserved) plus two columnar rules: a kernel
may take ownership of any mask it passes to :meth:`kill`, and a kernel
that writes a column must mark it dirty (:meth:`set_all` and
:meth:`set_rows` do this automatically).
"""

from __future__ import annotations

import struct
from itertools import chain
from operator import attrgetter, itemgetter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.click.packet import IP_DST, IP_PROTO, IP_SRC, TP_DST, TP_SRC

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - CI images without numpy
    np = None

#: Module-level switch; tests flip it (or pass ``use_columns`` to the
#: runtime) to force the scalar/batch paths.
ENABLED = True

#: Sentinel recorded in the side table for a field a packet lacks.
MISSING = object()

#: Smallest batch worth lifting into columns.  Each kernel pays a fixed
#: few-microsecond numpy dispatch cost per batch; below this the
#: per-packet ``push_batch`` path wins, so the runtime routes smaller
#: batches there (tests lower it to force the columnar path).
MIN_BATCH = 8

#: Fields whose rewrite invalidates a packet's cached flow key/hash.
FLOW_KEY_FIELDS = frozenset((IP_SRC, IP_DST, IP_PROTO, TP_SRC, TP_DST))

_fields_of = attrgetter("fields")
_length_of = attrgetter("length")

#: Values representable in one int64 column cell.
_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def have_numpy() -> bool:
    """Whether numpy is importable in this interpreter."""
    return np is not None


def available() -> bool:
    """Whether the columnar tier can run (numpy present and enabled)."""
    return np is not None and ENABLED


def _packable(value) -> bool:
    return type(value) in (int, bool) and _I64_MIN <= value <= _I64_MAX


class PacketColumns:
    """One batch of packets as parallel int64 field columns.

    Build with :meth:`from_packets`, read columns with :meth:`column`,
    and materialize surviving rows back to ``Packet`` objects with
    :meth:`to_packets`.  Instances are runtime-internal and mutable;
    the runtime owns them the way it owns ``push_batch`` lists.
    """

    __slots__ = (
        "packets", "n", "fields", "side", "alive", "n_alive",
        "dirty", "pending_annots", "_index", "_mat", "_lengths",
    )

    @classmethod
    def from_packets(
        cls,
        packets: Sequence,
        fields: Sequence[str],
        need_length: bool = False,
    ) -> "PacketColumns":
        """Lift ``fields`` of ``packets`` into columns.

        One ``struct.pack_into`` pass builds the whole matrix; any
        unpackable value (missing field, non-int, out of int64 range)
        sends that column -- and only that column -- to the side
        table via the per-column slow path.
        """
        self = cls.__new__(cls)
        packets = packets if type(packets) is list else list(packets)
        n = len(packets)
        fields = tuple(fields)
        ncols = len(fields)
        self.packets = packets
        self.n = n
        self.fields = fields
        self._index = {name: j for j, name in enumerate(fields)}
        self.side: Dict[str, list] = {}
        self.alive = None
        self.n_alive = n
        self.dirty: set = set()
        self.pending_annots: Dict[str, object] = {}
        self._lengths = None
        try:
            if ncols > 1:
                getter = itemgetter(*fields)
                buf = bytearray(8 * n * ncols)
                struct.pack_into(
                    "%dq" % (n * ncols), buf, 0,
                    *chain.from_iterable(map(getter, map(_fields_of,
                                                         packets))),
                )
            elif ncols == 1:
                getter = itemgetter(fields[0])
                buf = bytearray(8 * n)
                struct.pack_into(
                    "%dq" % n, buf, 0,
                    *map(getter, map(_fields_of, packets)),
                )
            else:
                buf = bytearray(0)
            self._mat = np.frombuffer(buf, dtype=np.int64).reshape(n, ncols)
        except (KeyError, TypeError, ValueError, OverflowError,
                struct.error):
            self._build_slow(packets, fields)
        if need_length:
            self._build_lengths()
        return self

    def _build_slow(self, packets: List, fields: Tuple[str, ...]) -> None:
        """Per-column build: good columns into the matrix, bad columns
        (any unpackable cell) verbatim into the side table."""
        n = self.n
        self._mat = np.zeros((n, len(fields)), dtype=np.int64)
        fdicts = [p.fields for p in packets]
        for j, name in enumerate(fields):
            vals = [f.get(name, MISSING) for f in fdicts]
            if all(map(_packable, vals)):
                self._mat[:, j] = vals
            else:
                self.side[name] = vals

    def _build_lengths(self) -> None:
        vals = list(map(_length_of, self.packets))
        if all(map(_packable, vals)):
            self._lengths = np.array(vals, dtype=np.int64)
        else:
            self.side["__length__"] = vals

    # -- column access -----------------------------------------------------
    def column(self, name: str):
        """The int64 column for ``name`` (a writable view; writers must
        mark the column dirty)."""
        return self._mat[:, self._index[name]]

    def lengths(self):
        """The packet-length column (built lazily)."""
        if self._lengths is None:
            self._build_lengths()
        return self._lengths

    def set_all(self, name: str, value: int) -> None:
        """Set every row of ``name`` to ``value`` and mark it dirty."""
        self._mat[:, self._index[name]] = value
        self.dirty.add(name)

    def set_rows(self, name: str, rows, values) -> None:
        """Set ``rows`` of column ``name`` and mark it dirty."""
        self._mat[:, self._index[name]][rows] = values
        self.dirty.add(name)

    def mark_dirty(self, name: str) -> None:
        """Record that column ``name`` was written through a view."""
        self.dirty.add(name)

    def annotate(self, name: str, value) -> None:
        """Stamp annotation ``name`` on every surviving row at
        materialization time (last write wins, like scalar order)."""
        self.pending_annots[name] = value

    # -- liveness ----------------------------------------------------------
    def kill(self, keep) -> None:
        """Restrict liveness to rows where ``keep`` is True.

        ``keep`` is a bool array over all rows; already-dead rows stay
        dead.  The batch may take ownership of ``keep`` -- callers must
        not reuse the mask afterwards.
        """
        alive = self.alive
        if alive is None:
            kept = int(keep.sum())
            if kept != self.n:
                self.alive = keep
                self.n_alive = kept
            return
        alive &= keep
        self.n_alive = int(alive.sum())

    def alive_mask(self):
        """A bool mask over all rows (a fresh copy when all-alive)."""
        if self.alive is None:
            return np.ones(self.n, dtype=bool)
        return self.alive.copy()

    def alive_rows(self):
        """Indices of surviving rows, or ``None`` when all survive."""
        if self.alive is None:
            return None
        return np.flatnonzero(self.alive)

    def bytes_alive(self) -> int:
        """Total packet bytes over surviving rows."""
        lengths = self.lengths()
        if self.alive is None:
            return int(lengths.sum())
        return int(lengths[self.alive].sum())

    def uniform(self) -> bool:
        """Whether every row carries identical column values."""
        return self.n <= 1 or bool((self._mat[1:] == self._mat[0]).all())

    # -- splitting ---------------------------------------------------------
    def split(self, groups) -> List[Tuple[int, "PacketColumns"]]:
        """Partition into compacted per-port children.

        ``groups`` is ``[(port, mask), ...]`` with each mask a bool
        array over all rows, already restricted to alive rows and
        pairwise disjoint.  Children copy their rows out of the parent
        (kernels may then write whole child columns safely).
        """
        out = []
        for port, mask in groups:
            rows = np.flatnonzero(mask)
            child = PacketColumns.__new__(PacketColumns)
            row_list = rows.tolist()
            child.packets = [self.packets[i] for i in row_list]
            child.n = len(row_list)
            child.fields = self.fields
            child._index = self._index
            child._mat = self._mat[rows]
            child.side = {
                name: [vals[i] for i in row_list]
                for name, vals in self.side.items()
            }
            child.alive = None
            child.n_alive = child.n
            child.dirty = set(self.dirty)
            child.pending_annots = dict(self.pending_annots)
            child._lengths = (
                None if self._lengths is None else self._lengths[rows]
            )
            out.append((port, child))
        return out

    # -- materialization ---------------------------------------------------
    def to_packets(self) -> List:
        """Materialize surviving rows back to ``Packet`` objects.

        Dirty columns are written into each survivor's field dict
        (invalidating cached flow keys when a 5-tuple field changed);
        pending annotations are stamped; dead rows are skipped
        entirely.  When no row died the original list object is
        returned (the runtime owns it, per the ``push_batch``
        contract).
        """
        if self.alive is None:
            out = self.packets
            rows = None
        else:
            rows = np.flatnonzero(self.alive)
            out = [self.packets[i] for i in rows.tolist()]
        index = self._index
        for name in self.dirty:
            col = self._mat[:, index[name]]
            if rows is not None:
                col = col[rows]
            # Rewrites usually target a constant (NAT to one address):
            # a uniform column skips the tolist/zip entirely.
            value = int(col[0]) if len(col) else 0
            if bool((col == value).all()):
                if name in FLOW_KEY_FIELDS:
                    for packet in out:
                        packet.fields[name] = value
                        packet._fkey = None
                        packet._fhash = None
                else:
                    for packet in out:
                        packet.fields[name] = value
                continue
            vals = col.tolist()
            if name in FLOW_KEY_FIELDS:
                for packet, value in zip(out, vals):
                    packet.fields[name] = value
                    packet._fkey = None
                    packet._fhash = None
            else:
                for packet, value in zip(out, vals):
                    packet.fields[name] = value
        for name, value in self.pending_annots.items():
            for packet in out:
                packet.annotations[name] = value
        return out

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return "PacketColumns(n=%d, alive=%d, fields=%r%s)" % (
            self.n, self.n_alive, list(self.fields),
            ", side=%r" % sorted(self.side) if self.side else "",
        )


# -- compiled interval matchers ---------------------------------------------

#: Interval count above which a small-domain membership test compiles to
#: a dense lookup table instead of a chain of range comparisons (the
#: ``tcp syn``-style flag sets produce ~64 intervals over 0..255).
DENSE_TABLE_MIN_INTERVALS = 8

#: Largest domain a dense lookup table may span.
DENSE_TABLE_MAX_DOMAIN = 1 << 16


def compile_interval_matcher(interval_set) -> Callable:
    """Compile an :class:`~repro.common.intervals.IntervalSet` into a
    vectorized membership test ``fn(column) -> bool mask``.

    Few intervals compile to an OR-chain of range comparisons; many
    intervals over a small domain (flag sets) compile to one dense
    bool table indexed by clipped column values.
    """
    intervals = interval_set.intervals
    if not intervals:
        return lambda col: np.zeros(len(col), dtype=bool)
    if len(intervals) == 1:
        low, high = intervals[0]
        if low == high:
            return lambda col: col == low
        return lambda col: (col >= low) & (col <= high)
    low_all = intervals[0][0]
    high_all = intervals[-1][1]
    if (
        len(intervals) >= DENSE_TABLE_MIN_INTERVALS
        and low_all >= 0
        and high_all < DENSE_TABLE_MAX_DOMAIN
    ):
        table = np.zeros(high_all + 1, dtype=bool)
        for low, high in intervals:
            table[low:high + 1] = True

        def dense(col, _table=table, _high=high_all):
            clipped = np.clip(col, 0, _high)
            return _table[clipped] & (col >= 0) & (col <= _high)

        return dense

    def chain_match(col, _intervals=intervals):
        mask = None
        for low, high in _intervals:
            part = (col == low) if low == high \
                else (col >= low) & (col <= high)
            mask = part if mask is None else mask | part
        return mask

    return chain_match


def compile_clause_matchers(compiled_dnf):
    """Compile a ``FlowSpec.compiled()`` DNF into columnar matchers.

    Returns a tuple of clauses, each a tuple of ``(field,
    matcher_fn)`` pairs; an empty clause matches everything (mirrors
    the scalar matcher's semantics exactly, including the implicit
    ``fields.get(field, 0)`` default -- a batch whose packets lack the
    field never reaches these matchers, because the missing column
    lands in the side table and the runtime falls back).
    """
    return tuple(
        tuple(
            (field, compile_interval_matcher(allowed_set))
            for field, allowed_set in clause
        )
        for clause in compiled_dnf
    )


def match_dnf(cols: PacketColumns, clause_matchers, n: int):
    """Evaluate compiled DNF clauses over a batch.

    Returns a bool mask over all rows (dead rows included -- callers
    intersect with liveness).
    """
    mask = None
    for clause in clause_matchers:
        clause_mask = None
        for field, matcher in clause:
            part = matcher(cols.column(field))
            clause_mask = part if clause_mask is None \
                else clause_mask & part
        if clause_mask is None:  # empty clause: matches everything
            return np.ones(n, dtype=bool)
        mask = clause_mask if mask is None else mask | clause_mask
    if mask is None:
        return np.zeros(n, dtype=bool)
    return mask
