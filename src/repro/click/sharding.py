"""RSS-style flow-hash sharding: fan the dataplane out across workers.

One Python process runs one Click pipeline on one core.  Real middlebox
platforms scale past that with receive-side scaling: the NIC hashes
each packet's 5-tuple and steers every packet of a flow to the same
worker core.  :class:`ShardedRuntime` is that layer for this dataplane:

* :meth:`~repro.click.packet.Packet.flow_hash` is the shard key -- a
  stable, seed-independent, direction-symmetric 5-tuple hash, so a
  flow (and its reverse direction) always lands on the same shard,
* each shard owns a full, independent :class:`~repro.click.runtime.
  Runtime` -- its own element instances, its own segment-compiled
  batch pipeline, its own :class:`~repro.obs.metrics.MetricsRegistry`,
* egress, drops, element counters, and obs registries are merged
  deterministically (in shard-index order) at collection time.

**Execution backends.**  ``executor="process"`` runs each shard in a
``multiprocessing`` worker (fork-based where available) -- the real
multi-core path.  ``executor="thread"`` runs shard loops in threads
(GIL-bound, but exercises the same message protocol on platforms
without fork), and ``executor="serial"`` executes shards inline in the
calling process, which is what the differential tests use: identical
partition/merge semantics, no concurrency.  ``"auto"`` picks
``process`` when fork is available and more than one shard was asked
for.

**Semantics.**  Sharded egress is a *permutation* of single-process
egress: every flow's packets stay in order (same flow -> same shard ->
same in-order runtime), but packets of different flows may interleave
differently across shards.  Configurations that cannot honor that
contract -- buffering/timer elements, multiplying elements (Tee,
Multicast), joins, elements with cross-flow order-dependent state
(RoundRobinSwitch, Meter, RateLimiter, an allocating IPRewriter) --
**fall back to a single-process runtime with a logged reason** (see
:func:`shard_unsafe_reason`) rather than silently sharding; pass
``fallback=False`` to get a :class:`~repro.common.errors.ShardingError`
instead.  See ``docs/dataplane.md`` for the full contract.
"""

from __future__ import annotations

import logging
import multiprocessing
import pickle
import queue as _queue
import threading
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence

from repro.click.config import ClickConfig
from repro.click.element import create_element
from repro.click.runtime import EgressRecord, Runtime
from repro.common.errors import ConfigError, ShardingError
from repro.obs import MetricsRegistry, Observability

__all__ = [
    "ShardCollection",
    "ShardedRuntime",
    "shard_unsafe_reason",
]

log = logging.getLogger("repro.click.sharding")

#: Packets per ``inject_batch`` call when a shard worker generates its
#: own traffic (:meth:`ShardedRuntime.inject_generated`).
DEFAULT_BATCH_SIZE = 256


def shard_unsafe_reason(config: ClickConfig) -> Optional[str]:
    """Why ``config`` cannot be flow-sharded, or ``None`` if it can.

    Two levels of analysis, mirroring the obs-mode decision in the
    runtime:

    * **element level** -- every element is instantiated and asked
      :meth:`~repro.click.element.Element.shard_unsafe_reason`; any
      non-``None`` answer (buffering, multiplying, cross-flow state)
      disqualifies the configuration,
    * **graph level** -- a true join (more than one edge into the same
      input port) merges streams whose relative order sharding does
      not preserve, and forces the exact-counting obs mode that
      per-shard deferred tallies cannot reconstruct.
    """
    config.validate()
    for name, decl in config.elements.items():
        element = create_element(decl.class_name, name, decl.args)
        reason = element.shard_unsafe_reason()
        if reason is not None:
            return "element %s :: %s %s" % (name, decl.class_name, reason)
    indegree: Dict[tuple, int] = {}
    for edge in config.edges:
        key = (edge.dst, edge.dst_port)
        indegree[key] = indegree.get(key, 0) + 1
        if indegree[key] > 1:
            return "input %d of element %s joins multiple upstream edges" \
                % (edge.dst_port, edge.dst)
    return None


class ShardCollection(NamedTuple):
    """One merged collection pass over every shard."""

    #: Egress records gathered this pass (empty in count-only mode),
    #: concatenated in shard-index order.
    egress: List[EgressRecord]
    #: Number of egress records gathered this pass (also set in
    #: count-only mode, where the records themselves stay worker-side).
    egress_count: int
    #: Total packets dropped since construction, summed over shards.
    dropped: int
    #: Fresh registry holding the merged per-shard metrics (``None``
    #: when the sharded runtime runs without observability).
    metrics: Optional[MetricsRegistry]
    #: Per-shard ``Runtime.numeric_element_state()`` dicts, in shard
    #: order (``None`` in count-only mode).
    element_state: Optional[List[Dict[str, Dict[str, float]]]]


# -- shard backends ---------------------------------------------------------
#
# Every backend speaks the same message protocol:
#
#   ("batch", entry, port, packets)                  no reply
#   ("generate", fn, args, entry, port, batch_size)  no reply
#   ("collect", full)   -> (error, payload, dropped, registry, state)
#   ("close",)                                       worker exits
#
# where ``payload`` is a list of (element, packet, time) tuples when
# ``full`` else the egress record count, ``dropped`` is the worker's
# cumulative drop count, and ``registry`` the shard's MetricsRegistry.


def _execute(runtime: Runtime, message: tuple) -> None:
    """Apply one traffic message to a shard's runtime."""
    op = message[0]
    if op == "batch":
        _op, entry, port, packets = message
        runtime.inject_batch(entry, packets, port)
    elif op == "generate":
        _op, fn, args, entry, port, batch_size = message
        packets = fn(*args)
        inject_batch = runtime.inject_batch
        for index in range(0, len(packets), batch_size):
            inject_batch(entry, packets[index:index + batch_size], port)
    else:  # pragma: no cover - protocol misuse
        raise ShardingError("unknown shard message %r" % (op,))


def _collect_reply(
    runtime: Runtime,
    registry: Optional[MetricsRegistry],
    full: bool,
    error: Optional[str],
) -> tuple:
    records = runtime.take_output()
    if full:
        payload = [(r.element, r.packet, r.time) for r in records]
        state = runtime.numeric_element_state()
    else:
        payload = len(records)
        state = None
    return (error, payload, runtime.dropped, registry, state)


def _make_runtime(config, obs_enabled, start_time, use_columns=None):
    registry = MetricsRegistry(enabled=True) if obs_enabled else None
    obs = Observability(metrics=registry) if obs_enabled else None
    runtime = Runtime(
        config, start_time=start_time, obs=obs, use_columns=use_columns
    )
    return runtime, registry


def _process_worker(conn, config, obs_enabled, start_time,
                    use_columns=None) -> None:
    """Entry point of one shard worker process."""
    runtime, registry = _make_runtime(
        config, obs_enabled, start_time, use_columns
    )
    error: Optional[str] = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent died or closed the pipe
            break
        except Exception as exc:
            # The message arrived but could not be unpickled (e.g. a
            # non-module-level ``inject_generated`` factory).  Each
            # Pipe send is one framed message, so the stream is still
            # in sync: remember the failure and keep serving.
            error = "%s: %s" % (type(exc).__name__, exc)
            continue
        op = message[0]
        if op == "close":
            break
        try:
            if op == "collect":
                conn.send(
                    _collect_reply(runtime, registry, message[1], error)
                )
                error = None
            else:
                _execute(runtime, message)
        except Exception as exc:
            # Remember the failure; the parent raises it at the next
            # collect, keeping the pipe protocol in lockstep.
            error = "%s: %s" % (type(exc).__name__, exc)
    conn.close()


class _SerialShard:
    """Shard executed inline in the calling process."""

    def __init__(self, config, obs_enabled, start_time, use_columns=None):
        self.runtime, self.registry = _make_runtime(
            config, obs_enabled, start_time, use_columns
        )

    def submit(self, message: tuple) -> None:
        _execute(self.runtime, message)

    def collect(self, full: bool) -> tuple:
        return _collect_reply(self.runtime, self.registry, full, None)

    def is_alive(self) -> bool:
        return True

    def close(self) -> None:
        pass


class _ThreadShard:
    """Shard executed by a dedicated thread (same protocol, no fork)."""

    def __init__(self, config, obs_enabled, start_time, use_columns=None):
        self.runtime, self.registry = _make_runtime(
            config, obs_enabled, start_time, use_columns
        )
        self._inbox: _queue.Queue = _queue.Queue()
        self._replies: _queue.Queue = _queue.Queue()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        error: Optional[str] = None
        while True:
            message = self._inbox.get()
            op = message[0]
            if op == "close":
                break
            try:
                if op == "collect":
                    self._replies.put(_collect_reply(
                        self.runtime, self.registry, message[1], error
                    ))
                    error = None
                else:
                    _execute(self.runtime, message)
            except Exception as exc:
                error = "%s: %s" % (type(exc).__name__, exc)

    def submit(self, message: tuple) -> None:
        self._inbox.put(message)

    def collect(self, full: bool) -> tuple:
        self._inbox.put(("collect", full))
        return self._replies.get()

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def close(self) -> None:
        self._inbox.put(("close",))
        self._thread.join(timeout=5.0)


class _ProcessShard:
    """Shard executed by a persistent multiprocessing worker."""

    def __init__(self, config, obs_enabled, start_time, ctx,
                 use_columns=None):
        parent_conn, child_conn = ctx.Pipe()
        self._conn = parent_conn
        self._process = ctx.Process(
            target=_process_worker,
            args=(child_conn, config, obs_enabled, start_time,
                  use_columns),
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    def submit(self, message: tuple) -> None:
        try:
            self._conn.send(message)
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            # pickle raises AttributeError for local functions and
            # TypeError for other unpicklable payloads.
            raise ShardingError(
                "cannot ship %r to a shard worker (is the "
                "inject_generated factory a module-level callable?): %s"
                % (message[0], exc)
            ) from exc
        except (BrokenPipeError, OSError) as exc:
            raise ShardingError("shard worker died: %s" % (exc,)) from exc

    def collect(self, full: bool) -> tuple:
        try:
            self._conn.send(("collect", full))
            return self._conn.recv()
        except (EOFError, ConnectionResetError, BrokenPipeError,
                OSError) as exc:
            raise ShardingError("shard worker died: %s" % (exc,)) from exc

    def is_alive(self) -> bool:
        return self._process.is_alive()

    def close(self) -> None:
        try:
            self._conn.send(("close",))
        except (BrokenPipeError, OSError):
            pass
        self._conn.close()
        self._process.join(timeout=5.0)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()
            self._process.join(timeout=5.0)


_EXECUTORS = ("auto", "process", "thread", "serial")


class ShardedRuntime:
    """N independent runtimes behind one flow-hash packet sharder.

    >>> from repro.click import Packet, parse_config
    >>> cfg = parse_config(
    ...     "src :: FromNetfront(); dst :: ToNetfront(); src -> dst;")
    >>> with ShardedRuntime(cfg, shards=4, executor="serial") as sharded:
    ...     sharded.inject_batch("src", [Packet(ip_src=n) for n in range(8)])
    ...     sharded.collect().egress_count
    8

    ``collect()`` pulls every shard's egress (in shard-index order),
    drops, element counters, and metrics registry, and merges them;
    between collects the shards run independently.  The merged egress
    is a permutation of what a single :class:`Runtime` would emit, with
    per-flow order preserved.
    """

    def __init__(
        self,
        config: ClickConfig,
        shards: int = 2,
        executor: str = "auto",
        obs=None,
        fallback: bool = True,
        start_time: float = 0.0,
        use_columns: Optional[bool] = None,
    ):
        if shards < 1:
            raise ConfigError("ShardedRuntime needs at least one shard")
        if executor not in _EXECUTORS:
            raise ConfigError(
                "unknown shard executor %r (expected one of %s)"
                % (executor, ", ".join(_EXECUTORS))
            )
        config.validate()
        self.config = config
        self.requested_shards = shards
        self.fallback_reason = shard_unsafe_reason(config)
        if self.fallback_reason is not None:
            if not fallback:
                raise ShardingError(self.fallback_reason)
            log.info(
                "config cannot be flow-sharded (%s); "
                "falling back to one single-process shard",
                self.fallback_reason,
            )
            shards = 1
            executor = "serial"
        elif executor == "auto":
            if shards > 1 and \
                    "fork" in multiprocessing.get_all_start_methods():
                executor = "process"
            else:
                executor = "serial"
        self.shards = shards
        self.executor = executor
        self.output: List[EgressRecord] = []
        self.dropped = 0
        self._closed = False
        #: Per shard: batches handed to the backend since its last
        #: successful collect -- work a dying worker takes with it.
        self._unconfirmed = [0] * shards
        obs_enabled = obs is not None and obs.enabled
        if executor == "process":
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else methods[0]
            )
            self._shards = [
                _ProcessShard(config, obs_enabled, start_time, ctx,
                              use_columns)
                for _ in range(shards)
            ]
        elif executor == "thread":
            self._shards = [
                _ThreadShard(config, obs_enabled, start_time, use_columns)
                for _ in range(shards)
            ]
        else:
            self._shards = [
                _SerialShard(config, obs_enabled, start_time, use_columns)
                for _ in range(shards)
            ]
        # Parent-side sharding metrics (the per-dataplane counters live
        # in the per-shard registries and surface via collect()).
        if obs_enabled:
            metrics = obs.metrics
            metrics.gauge(
                "dataplane_shards",
                "Worker shards behind the flow shard{,er}",
            ).set(shards)
            if self.fallback_reason is not None:
                metrics.counter(
                    "dataplane_shard_fallbacks_total",
                    "Configs that fell back to a single-process shard",
                ).inc()
            batches = metrics.counter(
                "dataplane_shard_batches_total",
                "Batches dispatched to each shard", labels=("shard",),
            )
            packets = metrics.counter(
                "dataplane_shard_packets_total",
                "Packets dispatched to each shard", labels=("shard",),
            )
            self._m_shard = [
                (batches.labels(str(i)).inc, packets.labels(str(i)).inc)
                for i in range(shards)
            ]
        else:
            self._m_shard = None

    # -- worker liveness -------------------------------------------------
    def _death_notice(self, shard: int) -> str:
        return (
            "shard %d (%s executor) worker died; %d batch(es) "
            "accepted but unconfirmed (their results were lost with "
            "the worker)"
            % (shard, self.executor, self._unconfirmed[shard])
        )

    def _check_workers(self) -> None:
        """Fail eagerly if any worker died since the last call.

        Without this, a dead worker surfaces only at the next
        :meth:`collect` -- after the caller has poured an arbitrary
        amount of traffic into a pipe nobody reads.  Every
        ``inject_*`` sweeps the backends first, so the failure names
        the dead shard while the caller still knows what it was
        sending.
        """
        for shard, backend in enumerate(self._shards):
            if not backend.is_alive():
                raise ShardingError(self._death_notice(shard))

    def _dispatch(self, shard: int, message: tuple) -> None:
        """Hand one message to a shard, translating transport failures
        into the same death notice the eager sweep raises."""
        backend = self._shards[shard]
        try:
            backend.submit(message)
        except ShardingError:
            if backend.is_alive():
                raise   # not a death (e.g. an unpicklable payload)
            raise ShardingError(self._death_notice(shard)) from None
        self._unconfirmed[shard] += 1

    # -- traffic ---------------------------------------------------------
    def inject(self, element: str, packet, port: int = 0) -> None:
        """Hand one packet to its flow's shard (convenience wrapper)."""
        self.inject_batch(element, [packet], port)

    def inject_batch(self, element: str, packets, port: int = 0) -> None:
        """Partition ``packets`` by flow hash and dispatch to shards.

        Packets whose :meth:`~repro.click.packet.Packet.flow_hash` is
        congruent modulo the shard count go to the same shard, in
        their original relative order -- per-flow order is preserved
        end to end.  The call returns once every sub-batch is handed
        to its shard backend; use :meth:`collect` to gather results.
        """
        if element not in self.config.elements:
            raise ConfigError("inject into unknown element %r" % (element,))
        if self._closed:
            raise ShardingError("inject into a closed ShardedRuntime")
        self._check_workers()
        packets = list(packets)
        if not packets:
            return
        n = self.shards
        if n == 1:
            groups = [packets]
        else:
            groups = [[] for _ in range(n)]
            for packet in packets:
                groups[packet.flow_hash() % n].append(packet)
        for shard, group in enumerate(groups):
            if not group:
                continue
            self._dispatch(shard, ("batch", element, port, group))
            if self._m_shard is not None:
                inc_batches, inc_packets = self._m_shard[shard]
                inc_batches()
                inc_packets(len(group))

    def inject_generated(
        self,
        element: str,
        factory: Callable,
        shard_args: Sequence[tuple],
        port: int = 0,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        """Have each shard generate and inject its own packet train.

        ``factory(*shard_args[i])`` runs *inside* shard ``i`` (in the
        worker process, for the process executor) and must return that
        shard's packet list, which the worker injects in ``batch_size``
        chunks.  This is the zero-copy fan-out path for bulk workloads:
        nothing per-packet crosses the parent/worker boundary, which is
        what lets throughput scale with cores (the parent-side hash
        alone costs more than the compiled pipeline -- see
        ``docs/dataplane.md``).  The caller owns the shard assignment:
        partition work by ``flow_hash() % shards`` (as
        :func:`repro.sim.replay.replay_trace_sharded` does) to keep the
        per-flow contract.  ``factory`` must be a module-level callable
        so the process executor can ship it by reference.
        """
        if element not in self.config.elements:
            raise ConfigError("inject into unknown element %r" % (element,))
        if self._closed:
            raise ShardingError("inject into a closed ShardedRuntime")
        if len(shard_args) != self.shards:
            raise ShardingError(
                "inject_generated needs one args tuple per shard "
                "(%d != %d)" % (len(shard_args), self.shards)
            )
        self._check_workers()
        for shard, args in enumerate(shard_args):
            self._dispatch(
                shard,
                ("generate", factory, tuple(args), element, port,
                 batch_size),
            )
            if self._m_shard is not None:
                self._m_shard[shard][0]()

    # -- collection ------------------------------------------------------
    def collect(self, full: bool = True) -> ShardCollection:
        """Gather and merge every shard's results, in shard order.

        With ``full`` (the default) the shards return their egress
        records -- appended to :attr:`output` -- plus their element
        counter state; with ``full=False`` only the egress *count*
        crosses the boundary, which keeps collection O(shards) for
        throughput runs.  Either way each shard's output buffer is
        drained, :attr:`dropped` becomes the summed cumulative drop
        count, and the per-shard metrics registries are merged into a
        fresh registry (counters/histograms sum, gauges last-write in
        shard order).
        """
        if self._closed:
            raise ShardingError("collect on a closed ShardedRuntime")
        replies = []
        for index, shard in enumerate(self._shards):
            try:
                reply = shard.collect(full)
            except ShardingError:
                if shard.is_alive():
                    raise
                raise ShardingError(self._death_notice(index)) from None
            # The worker answered: everything submitted so far is
            # accounted for, even if it answered with an error.
            self._unconfirmed[index] = 0
            replies.append(reply)
        records: List[EgressRecord] = []
        count = 0
        dropped = 0
        registries = []
        states = []
        for shard, reply in enumerate(replies):
            error, payload, shard_dropped, registry, state = reply
            if error is not None:
                raise ShardingError(
                    "shard %d worker failed: %s" % (shard, error)
                )
            if full:
                records.extend(
                    EgressRecord(element, packet, when)
                    for element, packet, when in payload
                )
                count += len(payload)
                states.append(state)
            else:
                count += payload
            dropped += shard_dropped
            if registry is not None:
                registries.append(registry)
        self.output.extend(records)
        self.dropped = dropped
        merged = None
        if registries:
            merged = MetricsRegistry(enabled=True).merge(*registries)
        return ShardCollection(
            records, count, dropped, merged, states if full else None
        )

    def take_output(self) -> List[EgressRecord]:
        """Return and clear the egress records gathered by collects."""
        records = list(self.output)
        self.output.clear()
        return records

    def merged_metrics(self) -> Optional[MetricsRegistry]:
        """Collect (count-only) and return the merged shard registry."""
        return self.collect(full=False).metrics

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Shut every shard backend down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
