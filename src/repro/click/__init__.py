"""A Python implementation of the Click modular router.

This is the dataplane substrate of the In-Net reproduction: processing
modules submitted by In-Net tenants are Click configurations, and this
package parses, instantiates, and runs them.

The public surface:

* :class:`repro.click.Packet` -- the unit of processing,
* :func:`repro.click.parse_config` -- Click-language parser producing a
  :class:`repro.click.ClickConfig` element graph,
* :class:`repro.click.Runtime` -- event-driven engine that pushes packets
  through an instantiated graph on a simulated clock,
* :class:`repro.click.ShardedRuntime` -- RSS-style flow-hash fan-out of a
  configuration across worker processes (``repro.click.sharding``),
* :mod:`repro.click.elements` -- the element library (filters, rewriters,
  shapers, stateful firewalls, tunnels, the ``ChangeEnforcer`` sandbox...).
"""

from repro.click.columnar import PacketColumns
from repro.click.config import ClickConfig, parse_config
from repro.click.element import (
    Element,
    create_element,
    element_registry,
    register_element,
)
from repro.click.packet import (
    GRE,
    ICMP,
    IP_DST,
    IP_PROTO,
    IP_SRC,
    IP_TOS,
    IP_TTL,
    PAYLOAD,
    SCTP,
    TCP,
    TCP_FLAGS,
    TP_DST,
    TP_SRC,
    UDP,
    Packet,
)
from repro.click.runtime import Runtime
from repro.click.sharding import ShardedRuntime, shard_unsafe_reason

# Importing the element package registers every built-in element class.
import repro.click.elements  # noqa: F401  (import for side effects)

__all__ = [
    "Packet",
    "PacketColumns",
    "Element",
    "register_element",
    "create_element",
    "element_registry",
    "parse_config",
    "ClickConfig",
    "Runtime",
    "ShardedRuntime",
    "shard_unsafe_reason",
    "IP_SRC",
    "IP_DST",
    "IP_PROTO",
    "IP_TTL",
    "IP_TOS",
    "TP_SRC",
    "TP_DST",
    "TCP_FLAGS",
    "PAYLOAD",
    "TCP",
    "UDP",
    "ICMP",
    "SCTP",
    "GRE",
]
