"""Parser for the Click configuration language.

In-Net clients express processing requests as Click configurations
(Section 4.1), e.g.::

    FromNetfront() ->
    IPFilter(allow udp port 1500) ->
    IPRewriter(pattern - - 172.16.15.133 - 0 0)
    -> TimedUnqueue(120, 100)
    -> dst :: ToNetfront()

The grammar supported here covers what the paper uses:

* declarations        ``name :: ClassName(args)`` (also ``a, b :: C``),
* connections         ``expr -> expr -> expr;`` with optional port
  selectors ``name[1]`` / ``[1]name``,
* inline anonymous elements inside connection chains,
* ``//`` and ``/* ... */`` comments; statements separated by ``;`` or
  newlines.

The result is a :class:`ClickConfig`: a named element graph that both the
concrete runtime (:mod:`repro.click.runtime`) and the symbolic engine
(:mod:`repro.symexec`) consume.
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

from repro.common.errors import ConfigError


class ElementDecl(NamedTuple):
    """A declared element: its class and raw textual arguments."""

    class_name: str
    args: Tuple[str, ...]


class Edge(NamedTuple):
    """A directed connection between two element ports."""

    src: str
    src_port: int
    dst: str
    dst_port: int


class ClickConfig:
    """A parsed Click configuration: declarations plus connections."""

    def __init__(self):
        self.elements: Dict[str, ElementDecl] = {}
        self.edges: List[Edge] = []
        self._anon_counter = 0

    # -- construction ------------------------------------------------------
    def declare(
        self, name: str, class_name: str, args: Tuple[str, ...] = ()
    ) -> str:
        """Declare element ``name`` of ``class_name``; returns the name."""
        if name in self.elements:
            raise ConfigError("element %r declared twice" % (name,))
        self.elements[name] = ElementDecl(class_name, tuple(args))
        return name

    def declare_anonymous(
        self, class_name: str, args: Tuple[str, ...] = ()
    ) -> str:
        """Declare an anonymous element, generating a unique name."""
        self._anon_counter += 1
        name = "%s@%d" % (class_name, self._anon_counter)
        while name in self.elements:
            self._anon_counter += 1
            name = "%s@%d" % (class_name, self._anon_counter)
        return self.declare(name, class_name, args)

    def connect(
        self, src: str, dst: str, src_port: int = 0, dst_port: int = 0
    ) -> None:
        """Connect ``src[src_port] -> [dst_port]dst``."""
        for name in (src, dst):
            if name not in self.elements:
                raise ConfigError("connection references undeclared %r" % name)
        self.edges.append(Edge(src, src_port, dst, dst_port))

    # -- queries ---------------------------------------------------------------
    def successors(self, name: str, port: int) -> List[Tuple[str, int]]:
        """Elements fed by output ``port`` of ``name``."""
        return [
            (e.dst, e.dst_port)
            for e in self.edges
            if e.src == name and e.src_port == port
        ]

    def predecessors(self, name: str, port: int) -> List[Tuple[str, int]]:
        """Elements feeding input ``port`` of ``name``."""
        return [
            (e.src, e.src_port)
            for e in self.edges
            if e.dst == name and e.dst_port == port
        ]

    def sources(self) -> List[str]:
        """Elements with no incoming edges (typically FromNetfront)."""
        have_input = {e.dst for e in self.edges}
        return [n for n in self.elements if n not in have_input]

    def sinks(self) -> List[str]:
        """Elements with no outgoing edges (typically ToNetfront)."""
        have_output = {e.src for e in self.edges}
        return [n for n in self.elements if n not in have_output]

    def elements_of_class(self, class_name: str) -> List[str]:
        """Names of every element declared with ``class_name``."""
        return [
            name
            for name, decl in self.elements.items()
            if decl.class_name == class_name
        ]

    def used_output_ports(self, name: str) -> List[int]:
        """Sorted distinct output ports of ``name`` that are connected."""
        return sorted({e.src_port for e in self.edges if e.src == name})

    # -- validation ----------------------------------------------------------
    def validate(self, registry: Optional[Dict[str, type]] = None) -> None:
        """Check element classes exist and port usage fits their arity."""
        if registry is None:
            from repro.click.element import element_registry

            registry = element_registry()
        for name, decl in self.elements.items():
            cls = registry.get(decl.class_name)
            if cls is None:
                raise ConfigError(
                    "element %r uses unknown class %r"
                    % (name, decl.class_name)
                )
            max_out = max(
                (e.src_port for e in self.edges if e.src == name), default=-1
            )
            max_in = max(
                (e.dst_port for e in self.edges if e.dst == name), default=-1
            )
            if cls.n_outputs is not None and max_out >= cls.n_outputs:
                raise ConfigError(
                    "%r (%s) has %d outputs, port %d used"
                    % (name, decl.class_name, cls.n_outputs, max_out)
                )
            if cls.n_inputs is not None and max_in >= cls.n_inputs:
                raise ConfigError(
                    "%r (%s) has %d inputs, port %d used"
                    % (name, decl.class_name, cls.n_inputs, max_in)
                )
        # Any two edges leaving the same (element, port) would duplicate
        # packets implicitly; Click requires an explicit Tee.
        seen_out = set()
        for e in self.edges:
            key = (e.src, e.src_port)
            if key in seen_out:
                raise ConfigError(
                    "output port %s[%d] connected twice (use Tee)" % key
                )
            seen_out.add(key)

    # -- copying -----------------------------------------------------------
    def copy(self) -> "ClickConfig":
        """An independent copy (shared immutable decls, fresh edge list)."""
        clone = ClickConfig()
        clone.elements = dict(self.elements)
        clone.edges = list(self.edges)
        clone._anon_counter = self._anon_counter
        return clone

    # -- fingerprinting ----------------------------------------------------
    def fingerprint(self) -> str:
        """A canonical hash of the configuration's *structure*.

        Two configurations that differ only in element instance names
        (or in declaration/connection order) fingerprint identically;
        any change to an element class, its arguments, or the wiring
        changes the fingerprint.  The controller's security-verdict
        cache keys on this (popular stock modules are verified once,
        Section 4.1), so canonicalization must not depend on the
        user-chosen names.

        Names are canonicalized by Weisfeiler-Lehman-style refinement:
        each element starts from a label derived from its class and
        arguments, then repeatedly absorbs the labels of its neighbors
        (with port numbers), which separates same-class elements by
        their position in the graph.
        """
        state = (len(self.elements), len(self.edges))
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is not None and cached[0] == state:
            return cached[1]
        labels = {
            name: _label_hash(
                "%s(%s)" % (decl.class_name, "\x00".join(decl.args))
            )
            for name, decl in self.elements.items()
        }
        out_edges: Dict[str, List[Edge]] = {}
        in_edges: Dict[str, List[Edge]] = {}
        for edge in self.edges:
            out_edges.setdefault(edge.src, []).append(edge)
            in_edges.setdefault(edge.dst, []).append(edge)
        rounds = min(len(self.elements), 8)
        for _ in range(rounds):
            refined = {}
            for name in self.elements:
                downstream = sorted(
                    (e.src_port, e.dst_port, labels[e.dst])
                    for e in out_edges.get(name, ())
                )
                upstream = sorted(
                    (e.dst_port, e.src_port, labels[e.src])
                    for e in in_edges.get(name, ())
                )
                refined[name] = _label_hash(
                    "%s>%r<%r" % (labels[name], downstream, upstream)
                )
            labels = refined
        # Elements sharing a final label are structurally symmetric at
        # refinement depth `rounds`; any consistent order among them
        # yields the same canonical rendering.
        order = sorted(self.elements, key=lambda n: (labels[n], n))
        index = {name: i for i, name in enumerate(order)}
        decls = [
            "%d=%s(%s)" % (
                index[name],
                self.elements[name].class_name,
                "\x00".join(self.elements[name].args),
            )
            for name in order
        ]
        wires = sorted(
            (index[e.src], e.src_port, index[e.dst], e.dst_port)
            for e in self.edges
        )
        digest = hashlib.sha256(
            ("\n".join(decls) + "\n" + repr(wires)).encode()
        ).hexdigest()
        self._fingerprint_cache = (state, digest)
        return digest

    # -- serialization ----------------------------------------------------------
    def to_click(self) -> str:
        """Render back to Click-language source text."""
        lines = []
        for name, decl in self.elements.items():
            lines.append(
                "%s :: %s(%s);" % (name, decl.class_name, ", ".join(decl.args))
            )
        for e in self.edges:
            lines.append(
                "%s[%d] -> [%d]%s;" % (e.src, e.src_port, e.dst_port, e.dst)
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "ClickConfig(%d elements, %d edges)" % (
            len(self.elements),
            len(self.edges),
        )


def _label_hash(text: str) -> str:
    """Short stable digest used by the fingerprint refinement rounds."""
    return hashlib.sha256(text.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<dcolon>::)
  | (?P<arrow>->)
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<semi>;)
  | (?P<comma>,)
  | (?P<lparen>\()
  | (?P<ident>[A-Za-z_][A-Za-z0-9_/@.-]*)
  | (?P<number>\d+)
    """,
    re.VERBOSE | re.DOTALL,
)


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ConfigError(
                "unexpected character %r at offset %d" % (source[pos], pos)
            )
        kind = match.lastgroup
        text = match.group()
        if kind == "lparen":
            # Consume a balanced argument blob as a single token.
            depth = 1
            end = match.end()
            while end < len(source) and depth:
                if source[end] == "(":
                    depth += 1
                elif source[end] == ")":
                    depth -= 1
                end += 1
            if depth:
                raise ConfigError("unbalanced parentheses at offset %d" % pos)
            tokens.append(_Token("args", source[match.end():end - 1], pos))
            pos = end
            continue
        if kind not in ("ws", "line_comment", "block_comment"):
            tokens.append(_Token(kind, text, pos))
        pos = match.end()
    return tokens


def split_args(blob: str) -> Tuple[str, ...]:
    """Split a Click argument blob on top-level commas.

    >>> split_args("allow udp, deny all")
    ('allow udp', 'deny all')
    """
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in blob:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail or parts:
        parts.append(tail)
    return tuple(p for p in parts if p != "")


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


#: Pseudo element class used for `input`/`output` inside elementclass
#: bodies; removed during expansion.
_PORT_PSEUDO_CLASS = "__compound_port__"


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(
        self,
        tokens: List[_Token],
        classes: Optional[Dict[str, "ClickConfig"]] = None,
        in_elementclass: bool = False,
    ):
        self.tokens = tokens
        self.index = 0
        self.config = ClickConfig()
        #: User-defined compound element classes (elementclass NAME {..}).
        self.classes: Dict[str, ClickConfig] = (
            classes if classes is not None else {}
        )
        self.in_elementclass = in_elementclass
        if in_elementclass:
            # `input` and `output` are implicitly declared pseudo
            # elements inside a compound body.
            self.config.declare("input", _PORT_PSEUDO_CLASS)
            self.config.declare("output", _PORT_PSEUDO_CLASS)

    # -- token helpers ----------------------------------------------------
    def _peek(self, offset: int = 0) -> Optional[_Token]:
        idx = self.index + offset
        if idx < len(self.tokens):
            return self.tokens[idx]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ConfigError("unexpected end of configuration")
        self.index += 1
        return token

    def _accept(self, kind: str) -> Optional[_Token]:
        token = self._peek()
        if token is not None and token.kind == kind:
            self.index += 1
            return token
        return None

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ConfigError(
                "expected %s at offset %d, got %r"
                % (kind, token.pos, token.text)
            )
        return token

    # -- grammar ------------------------------------------------------------
    def parse(self) -> ClickConfig:
        return _expand_compounds(self.parse_raw(), self.classes)

    def parse_raw(self) -> ClickConfig:
        """Parse without expanding user-defined compound elements."""
        while self._peek() is not None:
            if self._accept("semi"):
                continue
            self._statement()
        return self.config

    def _statement(self) -> None:
        token = self._peek()
        if token.kind == "ident" and token.text == "elementclass":
            self._elementclass()
            self._accept("semi")
            return
        # Lookahead to distinguish `a, b :: C(...)` declarations from
        # connection chains.
        if self._is_declaration():
            self._declaration()
        else:
            self._connection_chain()
        # Statements end at `;` or end-of-input.
        self._accept("semi")

    def _elementclass(self) -> None:
        """Parse ``elementclass Name { ...body... }``."""
        self._next()  # the `elementclass` keyword
        name = self._expect("ident").text
        if name in self.classes:
            raise ConfigError("elementclass %r defined twice" % (name,))
        self._expect("lbrace")
        # Collect the body tokens up to the matching closing brace.
        depth = 1
        body: List[_Token] = []
        while depth:
            token = self._next()
            if token.kind == "lbrace":
                depth += 1
            elif token.kind == "rbrace":
                depth -= 1
                if not depth:
                    break
            body.append(token)
        inner = _Parser(body, classes=self.classes,
                        in_elementclass=True)
        self.classes[name] = inner.parse_raw()

    def _is_declaration(self) -> bool:
        """True if the statement starting here is `name[, name]* :: ...`."""
        offset = 0
        while True:
            token = self._peek(offset)
            if token is None or token.kind != "ident":
                return False
            nxt = self._peek(offset + 1)
            if nxt is None:
                return False
            if nxt.kind == "dcolon":
                return True
            if nxt.kind == "comma":
                offset += 2
                continue
            return False

    def _declaration(self) -> None:
        names = [self._expect("ident").text]
        while self._accept("comma"):
            names.append(self._expect("ident").text)
        self._expect("dcolon")
        class_name = self._expect("ident").text
        args_token = self._accept("args")
        args = split_args(args_token.text) if args_token else ()
        for name in names:
            self.config.declare(name, class_name, args)

    def _connection_chain(self) -> None:
        prev_name, prev_out = self._endpoint()
        while self._accept("arrow"):
            in_port = self._port_selector()
            name, out_port = self._endpoint(input_port_known=True)
            self.config.connect(prev_name, name, prev_out, in_port)
            prev_name, prev_out = name, out_port

    def _port_selector(self) -> int:
        if self._accept("lbracket"):
            number = self._expect("number")
            self._expect("rbracket")
            return int(number.text)
        return 0

    def _endpoint(self, input_port_known: bool = False) -> Tuple[str, int]:
        """Parse `name`, `name[p]`, `[p]name`, or `Class(args)` inline.

        Returns ``(element_name, output_port)``.  Leading input-port
        selectors are only consumed when not already parsed by the caller.
        """
        if not input_port_known and self._peek().kind == "lbracket":
            # Chains may not *start* with an input selector.
            raise ConfigError(
                "connection chain cannot start with an input port selector"
            )
        token = self._expect("ident")
        args_token = self._accept("args")
        if args_token is not None:
            # Inline anonymous element: `ClassName(args)`.
            name = self.config.declare_anonymous(
                token.text, split_args(args_token.text)
            )
        elif (
            self._peek() is not None
            and self._peek().kind == "dcolon"
        ):
            # Inline named declaration: `dst :: ToNetfront()`.
            self._next()
            class_name = self._expect("ident").text
            inline_args = self._accept("args")
            name = self.config.declare(
                token.text,
                class_name,
                split_args(inline_args.text) if inline_args else (),
            )
        elif token.text not in self.config.elements:
            # Bare class name used inline: `... -> Discard;`
            from repro.click.element import element_registry

            if (
                token.text in element_registry()
                or token.text in self.classes
            ):
                name = self.config.declare_anonymous(token.text)
            else:
                raise ConfigError(
                    "connection references undeclared element %r"
                    % (token.text,)
                )
        else:
            name = token.text
        out_port = self._port_selector()
        return name, out_port


def _expand_compounds(
    config: ClickConfig,
    classes: Dict[str, ClickConfig],
    depth: int = 0,
) -> ClickConfig:
    """Inline every compound-element instance (``elementclass``).

    Each instance's body elements become ``instance/inner`` elements;
    the body's ``input``/``output`` pseudo elements define the port
    mapping onto the instance's outer connections.  Nested compound
    classes expand recursively.
    """
    if depth > 16:
        raise ConfigError("elementclass nesting too deep (cycle?)")
    compound_names = [
        name
        for name, decl in config.elements.items()
        if decl.class_name in classes
    ]
    if not compound_names:
        return config
    expanded = ClickConfig()
    expanded._anon_counter = config._anon_counter
    for name, decl in config.elements.items():
        if decl.class_name not in classes:
            expanded.elements[name] = decl
    input_maps: Dict[str, Dict[int, Tuple[str, int]]] = {}
    output_maps: Dict[str, Dict[int, Tuple[str, int]]] = {}
    new_edges: List[Edge] = []
    for name in compound_names:
        decl = config.elements[name]
        if decl.args:
            raise ConfigError(
                "compound element %r takes no configuration arguments"
                % (name,)
            )
        body = classes[decl.class_name]
        for inner_name, inner_decl in body.elements.items():
            if inner_decl.class_name == _PORT_PSEUDO_CLASS:
                continue
            expanded.elements["%s/%s" % (name, inner_name)] = inner_decl
        input_map: Dict[int, Tuple[str, int]] = {}
        output_map: Dict[int, Tuple[str, int]] = {}
        for edge in body.edges:
            from_input = edge.src == "input"
            to_output = edge.dst == "output"
            if from_input and to_output:
                raise ConfigError(
                    "elementclass %r wires input straight to output"
                    % (decl.class_name,)
                )
            if from_input:
                if edge.src_port in input_map:
                    raise ConfigError(
                        "elementclass %r input port %d fans out "
                        "(use a Tee)" % (decl.class_name, edge.src_port)
                    )
                input_map[edge.src_port] = (
                    "%s/%s" % (name, edge.dst), edge.dst_port,
                )
            elif to_output:
                if edge.dst_port in output_map:
                    raise ConfigError(
                        "elementclass %r output port %d driven twice"
                        % (decl.class_name, edge.dst_port)
                    )
                output_map[edge.dst_port] = (
                    "%s/%s" % (name, edge.src), edge.src_port,
                )
            else:
                new_edges.append(Edge(
                    "%s/%s" % (name, edge.src), edge.src_port,
                    "%s/%s" % (name, edge.dst), edge.dst_port,
                ))
        input_maps[name] = input_map
        output_maps[name] = output_map
    for edge in config.edges:
        src, src_port = edge.src, edge.src_port
        dst, dst_port = edge.dst, edge.dst_port
        if src in output_maps:
            mapped = output_maps[src].get(src_port)
            if mapped is None:
                raise ConfigError(
                    "compound %r has no output port %d"
                    % (src, src_port)
                )
            src, src_port = mapped
        if dst in input_maps:
            mapped = input_maps[dst].get(dst_port)
            if mapped is None:
                raise ConfigError(
                    "compound %r has no input port %d"
                    % (dst, dst_port)
                )
            dst, dst_port = mapped
        new_edges.append(Edge(src, src_port, dst, dst_port))
    expanded.edges = new_edges
    return _expand_compounds(expanded, classes, depth + 1)


def parse_config(source: str) -> ClickConfig:
    """Parse Click-language ``source`` into a :class:`ClickConfig`.

    Supports ``elementclass`` compound definitions; instances are
    expanded inline, so the returned graph only contains primitive
    elements (and is therefore directly checkable and runnable).
    """
    return _Parser(_tokenize(source)).parse()
