"""Event-driven execution engine for Click configurations.

The runtime instantiates a :class:`~repro.click.config.ClickConfig` into
live elements and drives packets through the graph on a simulated clock.
Time only advances when timer-driven elements (queues, batchers, shapers)
need it to; plain push paths execute synchronously, exactly like Click's
push processing.

Packets that exit through ``ToNetfront``/``ToDevice`` sinks are collected
in :attr:`Runtime.output` as ``(element_name, packet, time)`` records so
tests and the platform simulator can observe egress traffic.

**Observability.**  Passing an :class:`~repro.obs.Observability` bundle
instruments the dataplane: per-element packet/byte/drop counters, an
egress counter and ingress-to-egress latency histogram (in simulated
seconds), and a queue-depth gauge sampled from buffering elements at
snapshot time.  With ``obs=None`` (the default) the per-hop methods are
the uninstrumented originals -- the disabled path costs nothing.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.click import columnar
from repro.click.config import ClickConfig
from repro.click.element import Element, create_element
from repro.common.errors import ConfigError, SimulationError


class EgressRecord(NamedTuple):
    """One packet leaving the configuration through a sink element."""

    element: str
    packet: Any
    time: float


class Runtime:
    """Instantiates and runs one Click configuration.

    >>> from repro.click import parse_config, Packet
    >>> cfg = parse_config(
    ...     "src :: FromNetfront(); dst :: ToNetfront(); src -> dst;")
    >>> rt = Runtime(cfg)
    >>> rt.inject("src", Packet())
    >>> len(rt.output)
    1
    """

    def __init__(
        self,
        config: ClickConfig,
        start_time: float = 0.0,
        obs=None,
        use_columns: Optional[bool] = None,
    ):
        config.validate()
        self.config = config
        self.now = start_time
        self.output: List[EgressRecord] = []
        self.dropped = 0
        self._event_counter = itertools.count()
        self._timers: List[Tuple[float, int, Callable[[], None]]] = []
        self.elements: Dict[str, Element] = {}
        for name, decl in config.elements.items():
            element = create_element(decl.class_name, name, decl.args)
            element.runtime = self
            self.elements[name] = element
        # Adjacency map for fast edge lookup: (src, port) -> (dst, port).
        self._adjacency: Dict[Tuple[str, int], Tuple[str, int]] = {}
        for edge in config.edges:
            self._adjacency[(edge.src, edge.src_port)] = (
                edge.dst,
                edge.dst_port,
            )
        # Hot-path bindings: sink membership is decided once here, and
        # the adjacency lookup is a pre-bound method, so _route does no
        # getattr/attribute chasing per packet.
        self._sink_names = frozenset(
            name for name, element in self.elements.items()
            if getattr(element, "is_sink", False)
        )
        self._adjacency_get = self._adjacency.get
        # Connected output ports per element, for the segment compiler.
        out_ports: Dict[str, List[int]] = {}
        for src, src_port in self._adjacency:
            out_ports.setdefault(src, []).append(src_port)
        self._out_ports = {
            name: tuple(sorted(ports)) for name, ports in out_ports.items()
        }
        # Batch fast path: join-free linear runs of the graph collapse
        # into precompiled segments (flat lists of bound push_batch
        # callables), so a batch crosses a segment with zero adjacency
        # lookups.  Entries are keyed by (element, input port); anything
        # not precompiled here (mid-graph injection) compiles lazily.
        self._batch_segments: Dict[Tuple[str, int], tuple] = {}
        roots = {(name, 0) for name in config.sources()}
        for (src, _sp), dst_key in self._adjacency.items():
            if len(self._out_ports[src]) > 1:
                roots.add(dst_key)
        for entry in roots:
            if entry not in self._batch_segments:
                self._compile_segment(*entry)
        # Columnar tier: segments whose elements all carry vectorized
        # kernels compile (lazily) to column plans; use_columns=None
        # means "on whenever numpy is importable".
        self._use_columns = (
            columnar.available() if use_columns is None
            else bool(use_columns) and columnar.available()
        )
        self._column_plans: Dict[Tuple[str, int], Optional[tuple]] = {}
        self.columnar_batches = 0
        self.columnar_packets = 0
        self.columnar_fallbacks = 0
        self._obs = obs if obs is not None and obs.enabled else None
        self._obs_mode: Optional[str] = None
        if self._obs is not None:
            self._bind_metrics(self._obs.metrics)
            if self._obs_mode == "deferred":
                self.process_batch = self._process_batch_deferred_obs
            else:
                self.process_batch = self._process_batch_exact_obs
        for element in self.elements.values():
            element.initialize(self)

    def _bind_metrics(self, metrics) -> None:
        """Pre-bind per-element metric children and swap in the
        instrumented per-hop methods.

        Two instrumentation strategies, chosen per configuration:

        * **Deferred segment accounting** (the common case, installed
          by ``_install_fast_path``): nothing is counted per hop; each
          packet records one tally when its chain *terminates*, and a
          collector expands those tallies into per-element counters by
          walking the terminator's unique upstream chain.  Exact only
          when every element has at most one upstream edge and none
          duplicates packets, so...
        * **Exact per-hop counting**: graphs with join elements or
          multiplying elements (Tee, Multicast) pay for real counter
          increments on every hop instead.
        """
        packets = metrics.counter(
            "dataplane_packets_total",
            "Packets entering each element", labels=("element",),
        )
        bytes_ = metrics.counter(
            "dataplane_bytes_total",
            "Bytes entering each element", labels=("element",),
        )
        drops = metrics.counter(
            "dataplane_drops_total",
            "Packets dropped by each non-buffering element",
            labels=("element",),
        )
        egress = metrics.counter(
            "dataplane_egress_total",
            "Packets leaving through each sink", labels=("element",),
        )
        self._h_latency = metrics.histogram(
            "dataplane_egress_latency_seconds",
            "Simulated seconds from injection to egress",
        )
        self._m_unrouted = metrics.counter(
            "dataplane_unrouted_drops_total",
            "Packets dropped on unconnected output ports",
        )
        self._q_depth = metrics.gauge(
            "dataplane_queue_depth",
            "Buffered packets per queueing element", labels=("element",),
        )
        metrics.register_collector(self.observe_queue_depths)
        indegree: Dict[str, int] = {}
        for dst, _port in self._adjacency.values():
            indegree[dst] = indegree.get(dst, 0) + 1
        join_free = all(n <= 1 for n in indegree.values())
        multiplies = any(
            element.is_multiplying for element in self.elements.values()
        )
        if join_free and not multiplies:
            self._parent = {
                dst: src
                for (src, _sp), (dst, _dp) in self._adjacency.items()
            }
            self._segments: Dict[tuple, List] = {}
            self._seg_memo: Optional[tuple] = None
            self._lat_counts: Dict[float, int] = {}
            self._cur_entry: object = None
            self._cur_ingress = 0.0
            self._unrouted_flushed = 0
            self._m_children = {}
            for n, e in self.elements.items():
                is_sink = n in self._sink_names
                self._m_children[n] = (
                    packets.labels(n),
                    bytes_.labels(n),
                    None if (is_sink or e.is_buffering)
                    else drops.labels(n),
                    egress.labels(n) if is_sink else None,
                )
            metrics.register_collector(self._flush_segments)
            self._obs_mode = "deferred"
            self._install_fast_path()
            return
        # Exact per-hop counting: one dict lookup per hop yielding the
        # (inc packets, inc bytes) bound methods.
        self._m_hop = {
            n: (packets.labels(n).inc, bytes_.labels(n).inc)
            for n in self.elements
        }
        # Buffering elements legitimately return no packets from push();
        # only non-buffering ones count an empty result as a drop.
        self._m_drops = {
            n: drops.labels(n) for n, e in self.elements.items()
            if not e.is_buffering
        }
        self._m_egress = {n: egress.labels(n) for n in self._sink_names}
        self._obs_mode = "exact"
        self._push = self._push_observed
        self._route = self._route_observed
        self.inject = self._inject_observed

    def observe_queue_depths(self) -> None:
        """Sample buffered-packet counts into the queue-depth gauge."""
        if self._obs is None:
            return
        for name, element in self.elements.items():
            buffer = getattr(element, "buffer", None)
            if buffer is not None:
                self._q_depth.labels(name).set(len(buffer))
            elif hasattr(element, "backlog"):
                self._q_depth.labels(name).set(element.backlog)

    # -- time ------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError("cannot schedule in the past")
        heapq.heappush(
            self._timers,
            (self.now + delay, next(self._event_counter), callback),
        )

    def run(self, until: Optional[float] = None) -> None:
        """Fire pending timers, advancing the clock, up to ``until``."""
        while self._timers:
            when, _, callback = self._timers[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._timers)
            self.now = max(self.now, when)
            callback()
        if until is not None:
            self.now = max(self.now, until)

    def pending_timers(self) -> int:
        """Number of timers not yet fired."""
        return len(self._timers)

    # -- traffic ---------------------------------------------------------
    def inject(
        self,
        element: str,
        packet,
        port: int = 0,
        at: Optional[float] = None,
    ) -> None:
        """Hand ``packet`` to input ``port`` of ``element``.

        With ``at`` set, injection is deferred to that simulated time
        (timers scheduled before it fire first).
        """
        if element not in self.elements:
            raise ConfigError("inject into unknown element %r" % (element,))
        if at is not None:
            if at < self.now:
                raise SimulationError("cannot inject in the past")
            self.schedule(
                at - self.now, lambda: self._push(element, port, packet)
            )
            return
        self._push(element, port, packet)

    def deliver_from(self, element: Element, port: int, packet) -> None:
        """Route a packet emitted asynchronously by ``element``."""
        self._route(element.name, port, packet)

    # -- batch traffic ------------------------------------------------------
    def inject_batch(
        self,
        element: str,
        packets,
        port: int = 0,
        at: Optional[float] = None,
    ) -> None:
        """Hand a whole batch of packets to input ``port`` of ``element``.

        The batch path drives packets through precompiled segments of
        the element graph (see :meth:`_compile_segment`), calling each
        element's :meth:`~repro.click.element.Element.push_batch` once
        per batch instead of scalar ``push()`` once per packet.
        Semantics match looping :meth:`inject` over ``packets``, with
        one caveat: when the batch partitions at a multi-output
        element, packets taking different branches may interleave
        differently at the sinks than strict per-packet order (order
        *within* each branch is preserved).

        With ``at`` set, the whole batch is deferred to that simulated
        time (timers scheduled before it fire first).
        """
        if element not in self.elements:
            raise ConfigError("inject into unknown element %r" % (element,))
        packets = list(packets)
        if not packets:
            return
        if at is not None:
            if at < self.now:
                raise SimulationError("cannot inject in the past")
            self.schedule(
                at - self.now,
                lambda: self.process_batch(element, packets, port),
            )
            return
        self.process_batch(element, packets, port)

    def process_batch(self, element: str, packets: List, port: int = 0):
        """Drive ``packets`` synchronously from ``element``'s ``port``.

        Uninstrumented segment executor; when observability is enabled
        the constructor rebinds this name to an instrumented variant
        (deferred tallies, or a per-packet scalar fallback when the
        graph needs exact per-hop counting).
        """
        segments = self._batch_segments
        adjacency_get = self._adjacency_get
        output_append = self.output.append
        record = EgressRecord
        now = self.now
        dropped = 0
        use_columns = self._use_columns
        column_plans = self._column_plans
        min_batch = columnar.MIN_BATCH
        run_plan = self._run_column_plan
        work = [(element, port, packets)]
        pop = work.pop
        while work:
            name, in_port, pkts = pop()
            if use_columns and len(pkts) >= min_batch:
                try:
                    plan = column_plans[(name, in_port)]
                except KeyError:
                    plan = self._compile_column_plan((name, in_port))
                if plan is not None and run_plan(
                    plan, pkts, work, None, now
                ):
                    continue
            try:
                steps, terminal = segments[(name, in_port)]
            except KeyError:
                steps, terminal = self._compile_segment(name, in_port)
            for push_batch, step_port, cont, step_name, _buf in steps:
                groups = push_batch(step_port, pkts)
                if not groups:
                    break
                if cont is not None and len(groups) == 1 \
                        and groups[0][0] == cont:
                    pkts = groups[0][1]
                    continue
                # Partition point, or an off-chain emission (e.g.
                # DecIPTTL's expiry port): dispatch each group through
                # the adjacency map as a fresh work item.  Reversed, so
                # the first group is popped (and fully processed)
                # first, like depth-first scalar routing.
                for out_port, sub in reversed(groups):
                    nxt = adjacency_get((step_name, out_port))
                    if nxt is None:
                        dropped += len(sub)
                    else:
                        work.append((nxt[0], nxt[1], sub))
                break
            else:
                if terminal[0] == "sink":
                    _kind, sink_push_batch, sink_name, sink_port = terminal
                    for _out_port, sub in sink_push_batch(sink_port, pkts):
                        for pkt in sub:
                            output_append(record(sink_name, pkt, now))
                else:  # "enter": the chain loops back into the graph
                    work.append((terminal[1], terminal[2], pkts))
        if dropped:
            self.dropped += dropped

    def _process_batch_exact_obs(
        self, element: str, packets: List, port: int = 0
    ) -> None:
        """Batch entry for exact per-hop counting mode.

        Graphs with joins or multiplying elements need real counter
        increments on every hop, which per-batch accounting cannot
        reconstruct; correctness wins over speed, so the batch falls
        back to per-packet scalar injection.
        """
        inject = self.inject
        for packet in packets:
            inject(element, packet, port)

    def _process_batch_deferred_obs(
        self, element: str, packets: List, port: int = 0
    ) -> None:
        """Batch executor for the deferred-accounting fast path.

        One ``[packets, bytes]`` tally is recorded per batch
        *termination* -- an egress group, a shrink at a dropping or
        buffering step, an unconnected port -- instead of one per
        packet, so obs-enabled batch mode keeps the per-batch cost
        profile of the plain executor.  Tallies land in the same
        ``(entry, terminator, kind)`` table the scalar fast path uses
        and are expanded by ``_flush_segments`` unchanged.  Byte
        attribution for mid-segment shrinks is the before/after length
        difference, which is exact unless an element both rewrites
        packet lengths and drops in the same step (no registered
        element does).
        """
        ingress = self.now
        self._cur_entry = element
        self._cur_ingress = ingress
        segments = self._batch_segments
        seg_tallies = self._segments
        lat_counts = self._lat_counts
        adjacency_get = self._adjacency_get
        output_append = self.output.append
        record = EgressRecord
        now = self.now
        dropped = 0
        work = [(element, port, packets)]
        pop = work.pop

        def tally(term, kind, n, nbytes):
            key = (element, term, kind)
            try:
                seg = seg_tallies[key]
            except KeyError:
                seg = seg_tallies[key] = [0, 0]
            seg[0] += n
            seg[1] += nbytes

        use_columns = self._use_columns
        column_plans = self._column_plans
        min_batch = columnar.MIN_BATCH
        run_plan = self._run_column_plan
        while work:
            name, in_port, pkts = pop()
            if use_columns and len(pkts) >= min_batch:
                try:
                    plan = column_plans[(name, in_port)]
                except KeyError:
                    plan = self._compile_column_plan((name, in_port))
                if plan is not None and run_plan(
                    plan, pkts, work, tally, ingress
                ):
                    continue
            try:
                steps, terminal = segments[(name, in_port)]
            except KeyError:
                steps, terminal = self._compile_segment(name, in_port)
            for push_batch, step_port, cont, step_name, buffering in steps:
                n_in = len(pkts)
                if buffering:
                    # End-to-end latency must survive the buffer: the
                    # drain path (deliver_from) reads this stamp back.
                    for pkt in pkts:
                        pkt.annotations["obs.ingress"] = ingress
                groups = push_batch(step_port, pkts)
                n_out = 0
                for _out_port, sub in groups:
                    n_out += len(sub)
                if n_out != n_in:
                    lost_bytes = sum(p.length for p in pkts)
                    for _out_port, sub in groups:
                        for p in sub:
                            lost_bytes -= p.length
                    tally(
                        step_name,
                        "pass" if buffering else "drop",
                        n_in - n_out,
                        lost_bytes,
                    )
                if not groups:
                    break
                if cont is not None and len(groups) == 1 \
                        and groups[0][0] == cont:
                    pkts = groups[0][1]
                    continue
                for out_port, sub in reversed(groups):
                    nxt = adjacency_get((step_name, out_port))
                    if nxt is None:
                        dropped += len(sub)
                        tally(
                            step_name, "pass", len(sub),
                            sum(p.length for p in sub),
                        )
                    else:
                        work.append((nxt[0], nxt[1], sub))
                break
            else:
                if terminal[0] == "sink":
                    _kind, sink_push_batch, sink_name, sink_port = terminal
                    for _out_port, sub in sink_push_batch(sink_port, pkts):
                        n = 0
                        nbytes = 0
                        for pkt in sub:
                            output_append(record(sink_name, pkt, now))
                            n += 1
                            nbytes += pkt.length
                        tally(sink_name, "egress", n, nbytes)
                        if now != ingress:
                            lat = now - ingress
                            try:
                                lat_counts[lat] += n
                            except KeyError:
                                lat_counts[lat] = n
                else:
                    work.append((terminal[1], terminal[2], pkts))
        if dropped:
            self.dropped += dropped

    def _compile_segment(self, name: str, port: int) -> tuple:
        """Compile the linear run of the graph starting at (name, port).

        A segment is a flat tuple of ``(push_batch, in_port,
        continue_port, element_name, is_buffering)`` steps plus a
        terminal.  While an element has exactly one connected output
        port the walk follows its adjacency edge, so the batch executor
        crosses the whole run with zero adjacency lookups (each step's
        ``continue_port`` says which port the batch is expected on; any
        deviation falls back to generic dispatch).  The walk stops at
        sinks (terminal ``("sink", push_batch, name, port)``), at
        elements without exactly one connected output (the last step's
        ``continue_port`` is None and the executor dispatches its
        groups generically), and at cycles (terminal ``("enter", name,
        port)`` re-enters the executor's worklist).  Segments are
        compiled for source entries and partition targets at
        construction, and lazily for any other injection point.
        """
        key = (name, port)
        steps: List[tuple] = []
        terminal: Optional[tuple] = None
        seen = set()
        cur = key
        while True:
            cur_name, cur_port = cur
            element = self.elements[cur_name]
            if cur_name in self._sink_names:
                terminal = ("sink", element.push_batch, cur_name, cur_port)
                break
            if cur in seen:
                terminal = ("enter", cur_name, cur_port)
                break
            seen.add(cur)
            outs = self._out_ports.get(cur_name, ())
            if len(outs) == 1:
                steps.append((
                    element.push_batch, cur_port, outs[0], cur_name,
                    element.is_buffering,
                ))
                cur = self._adjacency[(cur_name, outs[0])]
            else:
                steps.append((
                    element.push_batch, cur_port, None, cur_name,
                    element.is_buffering,
                ))
                break
        segment = (tuple(steps), terminal)
        self._batch_segments[key] = segment
        return segment

    # -- columnar fast path --------------------------------------------------
    def _compile_column_plan(self, key: Tuple[str, int]) -> Optional[tuple]:
        """Compile the batch segment at ``key`` into a column plan.

        A plan exists only when *every* step of the segment (and its
        sink, if any) carries a vectorized kernel and none buffers --
        otherwise batches cross the segment via ``push_batch``.  The
        plan is ``(steps, terminal, fields, need_length)``: steps are
        ``(push_columns, in_port, continue_port, element_name)``,
        ``fields`` is the union of every kernel's column needs, and
        ``need_length`` says whether the packet-length column must be
        lifted up front (counters, or deferred byte accounting).
        """
        try:
            steps, terminal = self._batch_segments[key]
        except KeyError:
            steps, terminal = self._compile_segment(*key)
        fields: set = set()
        need_length = self._obs_mode == "deferred"
        kernel_steps: List[tuple] = []
        plan: Optional[tuple] = None
        for _push_batch, step_port, cont, step_name, buffering in steps:
            element = self.elements[step_name]
            if buffering or not element.has_column_kernel:
                break
            kernel_steps.append(
                (element.push_columns, step_port, cont, step_name)
            )
            fields.update(element.column_fields)
            need_length = need_length or element.needs_length_column
        else:
            if terminal is not None and terminal[0] == "sink":
                sink_name = terminal[2]
                sink = self.elements[sink_name]
                if sink.has_column_kernel:
                    fields.update(sink.column_fields)
                    need_length = need_length or sink.needs_length_column
                    plan = (
                        tuple(kernel_steps),
                        ("sink", sink.push_columns, sink_name, terminal[3]),
                        tuple(sorted(fields)),
                        need_length,
                    )
            else:
                plan = (
                    tuple(kernel_steps), terminal,
                    tuple(sorted(fields)), need_length,
                )
        self._column_plans[key] = plan
        return plan

    def _run_column_plan(
        self, plan: tuple, pkts: List, work: List, tally, ingress: float
    ) -> bool:
        """Drive one batch through a column plan.

        Returns False (without side effects) when the batch cannot be
        lifted -- a side-table column -- so the caller falls back to
        the ``push_batch`` segment.  ``work`` receives materialized
        batches for ports leaving the plan; ``tally`` is the deferred
        accounting closure (or None when obs is off), fed exactly like
        the batch executor feeds it: one drop tally per shrinking step
        with byte-diff attribution, one pass tally per unrouted group,
        one egress tally per sink group.
        """
        steps, terminal, fields, need_length = plan
        cols = columnar.PacketColumns.from_packets(
            pkts, fields, need_length
        )
        if cols.side:
            self.columnar_fallbacks += 1
            return False
        self.columnar_batches += 1
        self.columnar_packets += cols.n
        adjacency_get = self._adjacency_get
        output_append = self.output.append
        record = EgressRecord
        now = self.now
        for push_columns, step_port, cont, step_name in steps:
            if tally is not None:
                before_n = cols.n_alive
                before_b = cols.bytes_alive()
            groups = push_columns(step_port, cols)
            if tally is not None:
                after_n = 0
                after_b = 0
                for _out_port, sub in groups:
                    after_n += sub.n_alive
                    after_b += sub.bytes_alive()
                if after_n != before_n:
                    tally(
                        step_name, "drop",
                        before_n - after_n, before_b - after_b,
                    )
            if not groups:
                return True
            if cont is not None and len(groups) == 1 \
                    and groups[0][0] == cont:
                cols = groups[0][1]
                continue
            # The plan ends here: dispatch each group through the
            # adjacency map, materializing rows back to packets.
            for out_port, sub in reversed(groups):
                nxt = adjacency_get((step_name, out_port))
                if nxt is None:
                    self.dropped += sub.n_alive
                    if tally is not None:
                        tally(
                            step_name, "pass",
                            sub.n_alive, sub.bytes_alive(),
                        )
                else:
                    work.append((nxt[0], nxt[1], sub.to_packets()))
            return True
        if terminal[0] == "sink":
            _kind, sink_push_columns, sink_name, sink_port = terminal
            output_extend = self.output.extend
            repeat = itertools.repeat
            for _out_port, sub in sink_push_columns(sink_port, cols):
                out = sub.to_packets()
                # tuple.__new__ over a zipped iterator is the cheapest
                # way to mint NamedTuple records in bulk (~2x faster
                # than _make or a comprehension on this path).
                output_extend(map(
                    tuple.__new__, repeat(record),
                    zip(repeat(sink_name), out, repeat(now)),
                ))
                if tally is not None:
                    n = len(out)
                    tally(sink_name, "egress", n, sub.bytes_alive())
                    if now != ingress:
                        lat_counts = self._lat_counts
                        lat = now - ingress
                        try:
                            lat_counts[lat] += n
                        except KeyError:
                            lat_counts[lat] = n
        else:  # "enter": the chain loops back into the graph
            work.append((terminal[1], terminal[2], cols.to_packets()))
        return True

    # -- internals ---------------------------------------------------------
    def _push(self, name: str, port: int, packet) -> None:
        element = self.elements[name]
        results = element.push(port, packet)
        for out_port, out_packet in results:
            self._route(name, out_port, out_packet)

    def _route(self, src: str, port: int, packet) -> None:
        # Iterative worklist rather than _route/_push mutual recursion,
        # so arbitrarily deep linear configurations cannot blow the
        # interpreter stack.  The stack holds pending *route* operations
        # and later siblings are appended in reverse, which reproduces
        # the recursive depth-first order exactly: an element's first
        # emission (and its entire downstream subtree) resolves before
        # its second emission.
        elements = self.elements
        sink_names = self._sink_names
        adjacency_get = self._adjacency_get
        output_append = self.output.append
        stack = [(src, port, packet)]
        pop = stack.pop
        while stack:
            src, port, packet = pop()
            if src in sink_names:
                output_append(EgressRecord(src, packet, self.now))
                continue
            nxt = adjacency_get((src, port))
            if nxt is None:
                # Unconnected output port: Click would refuse to
                # initialize; we count it as a drop to keep
                # partially-wired tests simple.
                self.dropped += 1
                continue
            name = nxt[0]
            results = elements[name].push(nxt[1], packet)
            if not results:
                continue
            if len(results) == 1:
                stack.append((name, results[0][0], results[0][1]))
            else:
                stack.extend(
                    (name, out_port, out_packet)
                    for out_port, out_packet in reversed(results)
                )

    # -- instrumented variants (installed by _bind_metrics) ----------------
    def _inject_observed(
        self,
        element: str,
        packet,
        port: int = 0,
        at: Optional[float] = None,
    ) -> None:
        # Stamp the ingress time once, at injection, so the egress
        # latency histogram costs nothing on the per-hop path.
        annotations = getattr(packet, "annotations", None)
        if annotations is not None and "obs.ingress" not in annotations:
            annotations["obs.ingress"] = self.now if at is None else at
        Runtime.inject(self, element, packet, port=port, at=at)

    def _push_observed(self, name: str, port: int, packet) -> None:
        inc_packets, inc_bytes = self._m_hop[name]
        inc_packets()
        inc_bytes(packet.length)
        element = self.elements[name]
        results = element.push(port, packet)
        if not results:
            drop = self._m_drops.get(name)
            if drop is not None:
                drop.inc()
            return
        for out_port, out_packet in results:
            self._route(name, out_port, out_packet)

    def _route_observed(self, src: str, port: int, packet) -> None:
        # Same worklist shape as the uninstrumented _route (exact
        # depth-first order, no recursion), with per-hop counters.
        elements = self.elements
        sink_names = self._sink_names
        adjacency_get = self._adjacency_get
        output_append = self.output.append
        m_hop = self._m_hop
        m_drops_get = self._m_drops.get
        stack = [(src, port, packet)]
        pop = stack.pop
        while stack:
            src, port, packet = pop()
            if src in sink_names:
                output_append(EgressRecord(src, packet, self.now))
                self._m_egress[src].inc()
                ingress = packet.annotations.get("obs.ingress")
                if ingress is not None:
                    self._h_latency.observe(self.now - ingress)
                continue
            nxt = adjacency_get((src, port))
            if nxt is None:
                self.dropped += 1
                self._m_unrouted.inc()
                continue
            name = nxt[0]
            inc_packets, inc_bytes = m_hop[name]
            inc_packets()
            inc_bytes(packet.length)
            results = elements[name].push(nxt[1], packet)
            if not results:
                drop = m_drops_get(name)
                if drop is not None:
                    drop.inc()
                continue
            if len(results) == 1:
                stack.append((name, results[0][0], results[0][1]))
            else:
                stack.extend(
                    (name, out_port, out_packet)
                    for out_port, out_packet in reversed(results)
                )

    # -- deferred-segment fast path (join-free graphs) ----------------------
    def _install_fast_path(self) -> None:
        """Install closure-based hot-path handlers.

        The engine is synchronous and single-threaded, so "which packet
        is in flight" is runtime state, not per-packet state: injection
        sets the current entry element and ingress time, and nothing is
        recorded until the packet's chain terminates (egress, drop,
        buffer entry, or an unconnected port).  Each termination bumps
        one ``[packets, bytes]`` tally keyed by ``(entry, terminator,
        kind)``; ``_flush_segments`` expands the tallies into the real
        counters.  Everything hot is bound as a closure variable so the
        instrumented path pays no ``self`` attribute chasing.
        """
        rt = self
        elements = self.elements
        sink_names = self._sink_names
        adjacency_get = self._adjacency_get
        segments = self._segments
        lat_counts = self._lat_counts
        output_append = self.output.append
        record = EgressRecord

        def end_segment(name, kind, packet):
            key = (rt._cur_entry, name, kind)
            try:
                seg = segments[key]
            except KeyError:
                seg = segments[key] = [0, 0]
            seg[0] += 1
            seg[1] += packet.length

        def push(name, port, packet):
            element = elements[name]
            results = element.push(port, packet)
            if results:
                for out_port, out_packet in results:
                    route(name, out_port, out_packet)
                return
            # The chain ends here: a drop, or entry into a buffer.
            if element.is_buffering:
                end_segment(name, "pass", packet)
                # Remember the original ingress so end-to-end latency
                # survives the buffer (read back in deliver_from).
                packet.annotations["obs.ingress"] = rt._cur_ingress
            else:
                end_segment(name, "drop", packet)

        def route(src, port, packet):
            # Iterative worklist (same shape and ordering argument as
            # the uninstrumented _route): no recursion on deep chains.
            stack = [(src, port, packet)]
            pop = stack.pop
            while stack:
                src, port, packet = pop()
                if src in sink_names:
                    now = rt.now
                    output_append(record(src, packet, now))
                    # One-entry memo: a train of packets from the same
                    # entry to the same sink skips the keyed lookup.
                    memo = rt._seg_memo
                    if memo is not None and memo[1] is src \
                            and memo[0] is rt._cur_entry:
                        seg = memo[2]
                    else:
                        key = (rt._cur_entry, src, "egress")
                        try:
                            seg = segments[key]
                        except KeyError:
                            seg = segments[key] = [0, 0]
                        rt._seg_memo = (rt._cur_entry, src, seg)
                    seg[0] += 1
                    seg[1] += packet.length
                    ingress = rt._cur_ingress
                    if now != ingress:
                        lat = now - ingress
                        try:
                            lat_counts[lat] += 1
                        except KeyError:
                            lat_counts[lat] = 1
                    # Zero-latency observations are not recorded per
                    # packet: the flush derives them as (egress
                    # packets) minus (non-zero latency observations).
                    continue
                nxt = adjacency_get((src, port))
                if nxt is None:
                    rt.dropped += 1
                    end_segment(src, "pass", packet)
                    continue
                name = nxt[0]
                element = elements[name]
                results = element.push(nxt[1], packet)
                if not results:
                    # The chain ends here: a drop, or buffer entry.
                    if element.is_buffering:
                        end_segment(name, "pass", packet)
                        packet.annotations["obs.ingress"] = \
                            rt._cur_ingress
                    else:
                        end_segment(name, "drop", packet)
                    continue
                if len(results) == 1:
                    stack.append((name, results[0][0], results[0][1]))
                else:
                    stack.extend(
                        (name, out_port, out_packet)
                        for out_port, out_packet in reversed(results)
                    )

        def inject(element, packet, port=0, at=None):
            if element not in elements:
                raise ConfigError(
                    "inject into unknown element %r" % (element,)
                )
            if at is not None:
                if at < rt.now:
                    raise SimulationError("cannot inject in the past")

                def fire():
                    rt._cur_entry = element
                    rt._cur_ingress = rt.now
                    push(element, port, packet)

                rt.schedule(at - rt.now, fire)
                return
            rt._cur_entry = element
            rt._cur_ingress = rt.now
            push(element, port, packet)

        def deliver_from(element, port, packet):
            # A buffered packet re-enters the graph: the new segment
            # starts *after* the buffering element (already counted
            # when the packet entered it), and the original ingress
            # time is read back from the buffer-entry annotation.
            rt._cur_entry = ("x", element.name)
            rt._cur_ingress = packet.annotations.get(
                "obs.ingress", rt.now
            )
            route(element.name, port, packet)

        self._push = push
        self._route = route
        self.inject = inject
        self.deliver_from = deliver_from

    def _flush_segments(self) -> None:
        """Expand the recorded segments into the metric children.

        Runs as a registry collector, so every snapshot/export sees
        up-to-date counters.  For each segment the terminator's unique
        upstream chain is walked back to the entry element; every
        element on it receives the segment's packet and byte counts.
        Drop terminations also feed the terminator's drop counter, and
        egress terminations its egress counter plus the latency
        histogram.  The hot path only records *non-zero* latencies, so
        the zero-latency (synchronous traversal) count is derived here
        as egress packets minus non-zero observations -- both tallies
        cover the same flush interval, so the difference is exact.
        """
        egress_n = 0
        segments = self._segments
        if segments:
            parent_get = self._parent.get
            children = self._m_children
            max_len = len(self.elements)
            for (entry, term, kind), seg in segments.items():
                n, nbytes = seg
                exclusive = type(entry) is tuple
                target = entry[1] if exclusive else entry
                path = [term]
                node = term
                while node != target and len(path) <= max_len:
                    node = parent_get(node)
                    if node is None:
                        break
                    path.append(node)
                if exclusive and path[-1] == target:
                    path.pop()
                for name in path:
                    pc, bc, _dc, _ec = children[name]
                    pc.inc(n)
                    bc.inc(nbytes)
                if kind == "drop":
                    dc = children[term][2]
                    if dc is not None:
                        dc.inc(n)
                elif kind == "egress":
                    egress_n += n
                    ec = children[term][3]
                    if ec is not None:
                        ec.inc(n)
            segments.clear()
            self._seg_memo = None
        if self.dropped > self._unrouted_flushed:
            self._m_unrouted.inc(self.dropped - self._unrouted_flushed)
            self._unrouted_flushed = self.dropped
        lat_counts = self._lat_counts
        nonzero = 0
        if lat_counts:
            observe_count = self._h_latency.observe_count
            while lat_counts:
                value, count = lat_counts.popitem()
                nonzero += count
                observe_count(value, count)
        zero = egress_n - nonzero
        if zero > 0:
            self._h_latency.observe_count(0.0, zero)

    # -- introspection -----------------------------------------------------
    def numeric_element_state(self) -> Dict[str, Dict[str, float]]:
        """Public int/float attributes (plus buffer depths) per element.

        The observable counter state of the dataplane -- what the
        differential tests compare between execution modes, and what
        sharded workers (:mod:`repro.click.sharding`) report back so
        per-shard element counters can be merged.  Private
        (underscore-prefixed) attributes are excluded.
        """
        state: Dict[str, Dict[str, float]] = {}
        for name, element in self.elements.items():
            attrs = {
                key: value for key, value in vars(element).items()
                if not key.startswith("_")
                and isinstance(value, (int, float))
            }
            buffer = getattr(element, "buffer", None)
            if buffer is not None:
                attrs["buffered"] = len(buffer)
            state[name] = attrs
        return state

    def take_output(self) -> List[EgressRecord]:
        """Return and clear the collected egress records."""
        records = list(self.output)
        # Clear in place: the fast path pre-binds ``output.append``, so
        # the list object must stay the same across the runtime's life.
        self.output.clear()
        return records

    def element(self, name: str) -> Element:
        """The live element instance for ``name``."""
        return self.elements[name]
