"""Event-driven execution engine for Click configurations.

The runtime instantiates a :class:`~repro.click.config.ClickConfig` into
live elements and drives packets through the graph on a simulated clock.
Time only advances when timer-driven elements (queues, batchers, shapers)
need it to; plain push paths execute synchronously, exactly like Click's
push processing.

Packets that exit through ``ToNetfront``/``ToDevice`` sinks are collected
in :attr:`Runtime.output` as ``(element_name, packet, time)`` records so
tests and the platform simulator can observe egress traffic.

**Observability.**  Passing an :class:`~repro.obs.Observability` bundle
instruments the dataplane: per-element packet/byte/drop counters, an
egress counter and ingress-to-egress latency histogram (in simulated
seconds), and a queue-depth gauge sampled from buffering elements at
snapshot time.  With ``obs=None`` (the default) the per-hop methods are
the uninstrumented originals -- the disabled path costs nothing.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.click.config import ClickConfig
from repro.click.element import Element, create_element
from repro.common.errors import ConfigError, SimulationError


class EgressRecord(NamedTuple):
    """One packet leaving the configuration through a sink element."""

    element: str
    packet: Any
    time: float


class Runtime:
    """Instantiates and runs one Click configuration.

    >>> from repro.click import parse_config, Packet
    >>> cfg = parse_config(
    ...     "src :: FromNetfront(); dst :: ToNetfront(); src -> dst;")
    >>> rt = Runtime(cfg)
    >>> rt.inject("src", Packet())
    >>> len(rt.output)
    1
    """

    def __init__(
        self,
        config: ClickConfig,
        start_time: float = 0.0,
        obs=None,
    ):
        config.validate()
        self.config = config
        self.now = start_time
        self.output: List[EgressRecord] = []
        self.dropped = 0
        self._event_counter = itertools.count()
        self._timers: List[Tuple[float, int, Callable[[], None]]] = []
        self.elements: Dict[str, Element] = {}
        for name, decl in config.elements.items():
            element = create_element(decl.class_name, name, decl.args)
            element.runtime = self
            self.elements[name] = element
        # Adjacency map for fast edge lookup: (src, port) -> (dst, port).
        self._adjacency: Dict[Tuple[str, int], Tuple[str, int]] = {}
        for edge in config.edges:
            self._adjacency[(edge.src, edge.src_port)] = (
                edge.dst,
                edge.dst_port,
            )
        # Hot-path bindings: sink membership is decided once here, and
        # the adjacency lookup is a pre-bound method, so _route does no
        # getattr/attribute chasing per packet.
        self._sink_names = frozenset(
            name for name, element in self.elements.items()
            if getattr(element, "is_sink", False)
        )
        self._adjacency_get = self._adjacency.get
        self._obs = obs if obs is not None and obs.enabled else None
        if self._obs is not None:
            self._bind_metrics(self._obs.metrics)
        for element in self.elements.values():
            element.initialize(self)

    def _bind_metrics(self, metrics) -> None:
        """Pre-bind per-element metric children and swap in the
        instrumented per-hop methods.

        Two instrumentation strategies, chosen per configuration:

        * **Deferred segment accounting** (the common case, installed
          by ``_install_fast_path``): nothing is counted per hop; each
          packet records one tally when its chain *terminates*, and a
          collector expands those tallies into per-element counters by
          walking the terminator's unique upstream chain.  Exact only
          when every element has at most one upstream edge and none
          duplicates packets, so...
        * **Exact per-hop counting**: graphs with join elements or
          multiplying elements (Tee, Multicast) pay for real counter
          increments on every hop instead.
        """
        packets = metrics.counter(
            "dataplane_packets_total",
            "Packets entering each element", labels=("element",),
        )
        bytes_ = metrics.counter(
            "dataplane_bytes_total",
            "Bytes entering each element", labels=("element",),
        )
        drops = metrics.counter(
            "dataplane_drops_total",
            "Packets dropped by each non-buffering element",
            labels=("element",),
        )
        egress = metrics.counter(
            "dataplane_egress_total",
            "Packets leaving through each sink", labels=("element",),
        )
        self._h_latency = metrics.histogram(
            "dataplane_egress_latency_seconds",
            "Simulated seconds from injection to egress",
        )
        self._m_unrouted = metrics.counter(
            "dataplane_unrouted_drops_total",
            "Packets dropped on unconnected output ports",
        )
        self._q_depth = metrics.gauge(
            "dataplane_queue_depth",
            "Buffered packets per queueing element", labels=("element",),
        )
        metrics.register_collector(self.observe_queue_depths)
        indegree: Dict[str, int] = {}
        for dst, _port in self._adjacency.values():
            indegree[dst] = indegree.get(dst, 0) + 1
        join_free = all(n <= 1 for n in indegree.values())
        multiplies = any(
            element.is_multiplying for element in self.elements.values()
        )
        if join_free and not multiplies:
            self._parent = {
                dst: src
                for (src, _sp), (dst, _dp) in self._adjacency.items()
            }
            self._segments: Dict[tuple, List] = {}
            self._seg_memo: Optional[tuple] = None
            self._lat_counts: Dict[float, int] = {}
            self._cur_entry: object = None
            self._cur_ingress = 0.0
            self._unrouted_flushed = 0
            self._m_children = {}
            for n, e in self.elements.items():
                is_sink = n in self._sink_names
                self._m_children[n] = (
                    packets.labels(n),
                    bytes_.labels(n),
                    None if (is_sink or e.is_buffering)
                    else drops.labels(n),
                    egress.labels(n) if is_sink else None,
                )
            metrics.register_collector(self._flush_segments)
            self._install_fast_path()
            return
        # Exact per-hop counting: one dict lookup per hop yielding the
        # (inc packets, inc bytes) bound methods.
        self._m_hop = {
            n: (packets.labels(n).inc, bytes_.labels(n).inc)
            for n in self.elements
        }
        # Buffering elements legitimately return no packets from push();
        # only non-buffering ones count an empty result as a drop.
        self._m_drops = {
            n: drops.labels(n) for n, e in self.elements.items()
            if not e.is_buffering
        }
        self._m_egress = {n: egress.labels(n) for n in self._sink_names}
        self._push = self._push_observed
        self._route = self._route_observed
        self.inject = self._inject_observed

    def observe_queue_depths(self) -> None:
        """Sample buffered-packet counts into the queue-depth gauge."""
        if self._obs is None:
            return
        for name, element in self.elements.items():
            buffer = getattr(element, "buffer", None)
            if buffer is not None:
                self._q_depth.labels(name).set(len(buffer))
            elif hasattr(element, "backlog"):
                self._q_depth.labels(name).set(element.backlog)

    # -- time ------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError("cannot schedule in the past")
        heapq.heappush(
            self._timers,
            (self.now + delay, next(self._event_counter), callback),
        )

    def run(self, until: Optional[float] = None) -> None:
        """Fire pending timers, advancing the clock, up to ``until``."""
        while self._timers:
            when, _, callback = self._timers[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._timers)
            self.now = max(self.now, when)
            callback()
        if until is not None:
            self.now = max(self.now, until)

    def pending_timers(self) -> int:
        """Number of timers not yet fired."""
        return len(self._timers)

    # -- traffic ---------------------------------------------------------
    def inject(
        self,
        element: str,
        packet,
        port: int = 0,
        at: Optional[float] = None,
    ) -> None:
        """Hand ``packet`` to input ``port`` of ``element``.

        With ``at`` set, injection is deferred to that simulated time
        (timers scheduled before it fire first).
        """
        if element not in self.elements:
            raise ConfigError("inject into unknown element %r" % (element,))
        if at is not None:
            if at < self.now:
                raise SimulationError("cannot inject in the past")
            self.schedule(
                at - self.now, lambda: self._push(element, port, packet)
            )
            return
        self._push(element, port, packet)

    def deliver_from(self, element: Element, port: int, packet) -> None:
        """Route a packet emitted asynchronously by ``element``."""
        self._route(element.name, port, packet)

    # -- internals ---------------------------------------------------------
    def _push(self, name: str, port: int, packet) -> None:
        element = self.elements[name]
        results = element.push(port, packet)
        for out_port, out_packet in results:
            self._route(name, out_port, out_packet)

    def _route(self, src: str, port: int, packet) -> None:
        if src in self._sink_names:
            self.output.append(EgressRecord(src, packet, self.now))
            return
        nxt = self._adjacency_get((src, port))
        if nxt is None:
            # Unconnected output port: Click would refuse to initialize;
            # we count it as a drop to keep partially-wired tests simple.
            self.dropped += 1
            return
        self._push(nxt[0], nxt[1], packet)

    # -- instrumented variants (installed by _bind_metrics) ----------------
    def _inject_observed(
        self,
        element: str,
        packet,
        port: int = 0,
        at: Optional[float] = None,
    ) -> None:
        # Stamp the ingress time once, at injection, so the egress
        # latency histogram costs nothing on the per-hop path.
        annotations = getattr(packet, "annotations", None)
        if annotations is not None and "obs.ingress" not in annotations:
            annotations["obs.ingress"] = self.now if at is None else at
        Runtime.inject(self, element, packet, port=port, at=at)

    def _push_observed(self, name: str, port: int, packet) -> None:
        inc_packets, inc_bytes = self._m_hop[name]
        inc_packets()
        inc_bytes(packet.length)
        element = self.elements[name]
        results = element.push(port, packet)
        if not results:
            drop = self._m_drops.get(name)
            if drop is not None:
                drop.inc()
            return
        for out_port, out_packet in results:
            self._route(name, out_port, out_packet)

    def _route_observed(self, src: str, port: int, packet) -> None:
        if src in self._sink_names:
            self.output.append(EgressRecord(src, packet, self.now))
            self._m_egress[src].inc()
            ingress = packet.annotations.get("obs.ingress")
            if ingress is not None:
                self._h_latency.observe(self.now - ingress)
            return
        nxt = self._adjacency_get((src, port))
        if nxt is None:
            self.dropped += 1
            self._m_unrouted.inc()
            return
        self._push(nxt[0], nxt[1], packet)

    # -- deferred-segment fast path (join-free graphs) ----------------------
    def _install_fast_path(self) -> None:
        """Install closure-based hot-path handlers.

        The engine is synchronous and single-threaded, so "which packet
        is in flight" is runtime state, not per-packet state: injection
        sets the current entry element and ingress time, and nothing is
        recorded until the packet's chain terminates (egress, drop,
        buffer entry, or an unconnected port).  Each termination bumps
        one ``[packets, bytes]`` tally keyed by ``(entry, terminator,
        kind)``; ``_flush_segments`` expands the tallies into the real
        counters.  Everything hot is bound as a closure variable so the
        instrumented path pays no ``self`` attribute chasing.
        """
        rt = self
        elements = self.elements
        sink_names = self._sink_names
        adjacency_get = self._adjacency_get
        segments = self._segments
        lat_counts = self._lat_counts
        output_append = self.output.append
        record = EgressRecord

        def end_segment(name, kind, packet):
            key = (rt._cur_entry, name, kind)
            try:
                seg = segments[key]
            except KeyError:
                seg = segments[key] = [0, 0]
            seg[0] += 1
            seg[1] += packet.length

        def push(name, port, packet):
            element = elements[name]
            results = element.push(port, packet)
            if results:
                for out_port, out_packet in results:
                    route(name, out_port, out_packet)
                return
            # The chain ends here: a drop, or entry into a buffer.
            if element.is_buffering:
                end_segment(name, "pass", packet)
                # Remember the original ingress so end-to-end latency
                # survives the buffer (read back in deliver_from).
                packet.annotations["obs.ingress"] = rt._cur_ingress
            else:
                end_segment(name, "drop", packet)

        def route(src, port, packet):
            if src in sink_names:
                now = rt.now
                output_append(record(src, packet, now))
                # One-entry memo: a train of packets from the same
                # entry to the same sink skips the keyed lookup.
                memo = rt._seg_memo
                if memo is not None and memo[1] is src \
                        and memo[0] is rt._cur_entry:
                    seg = memo[2]
                else:
                    key = (rt._cur_entry, src, "egress")
                    try:
                        seg = segments[key]
                    except KeyError:
                        seg = segments[key] = [0, 0]
                    rt._seg_memo = (rt._cur_entry, src, seg)
                seg[0] += 1
                seg[1] += packet.length
                ingress = rt._cur_ingress
                if now != ingress:
                    lat = now - ingress
                    try:
                        lat_counts[lat] += 1
                    except KeyError:
                        lat_counts[lat] = 1
                # Zero-latency observations are not recorded per
                # packet: the flush derives them as (egress packets)
                # minus (non-zero latency observations).
                return
            nxt = adjacency_get((src, port))
            if nxt is None:
                rt.dropped += 1
                end_segment(src, "pass", packet)
                return
            push(nxt[0], nxt[1], packet)

        def inject(element, packet, port=0, at=None):
            if element not in elements:
                raise ConfigError(
                    "inject into unknown element %r" % (element,)
                )
            if at is not None:
                if at < rt.now:
                    raise SimulationError("cannot inject in the past")

                def fire():
                    rt._cur_entry = element
                    rt._cur_ingress = rt.now
                    push(element, port, packet)

                rt.schedule(at - rt.now, fire)
                return
            rt._cur_entry = element
            rt._cur_ingress = rt.now
            push(element, port, packet)

        def deliver_from(element, port, packet):
            # A buffered packet re-enters the graph: the new segment
            # starts *after* the buffering element (already counted
            # when the packet entered it), and the original ingress
            # time is read back from the buffer-entry annotation.
            rt._cur_entry = ("x", element.name)
            rt._cur_ingress = packet.annotations.get(
                "obs.ingress", rt.now
            )
            route(element.name, port, packet)

        self._push = push
        self._route = route
        self.inject = inject
        self.deliver_from = deliver_from

    def _flush_segments(self) -> None:
        """Expand the recorded segments into the metric children.

        Runs as a registry collector, so every snapshot/export sees
        up-to-date counters.  For each segment the terminator's unique
        upstream chain is walked back to the entry element; every
        element on it receives the segment's packet and byte counts.
        Drop terminations also feed the terminator's drop counter, and
        egress terminations its egress counter plus the latency
        histogram.  The hot path only records *non-zero* latencies, so
        the zero-latency (synchronous traversal) count is derived here
        as egress packets minus non-zero observations -- both tallies
        cover the same flush interval, so the difference is exact.
        """
        egress_n = 0
        segments = self._segments
        if segments:
            parent_get = self._parent.get
            children = self._m_children
            max_len = len(self.elements)
            for (entry, term, kind), seg in segments.items():
                n, nbytes = seg
                exclusive = type(entry) is tuple
                target = entry[1] if exclusive else entry
                path = [term]
                node = term
                while node != target and len(path) <= max_len:
                    node = parent_get(node)
                    if node is None:
                        break
                    path.append(node)
                if exclusive and path[-1] == target:
                    path.pop()
                for name in path:
                    pc, bc, _dc, _ec = children[name]
                    pc.inc(n)
                    bc.inc(nbytes)
                if kind == "drop":
                    dc = children[term][2]
                    if dc is not None:
                        dc.inc(n)
                elif kind == "egress":
                    egress_n += n
                    ec = children[term][3]
                    if ec is not None:
                        ec.inc(n)
            segments.clear()
            self._seg_memo = None
        if self.dropped > self._unrouted_flushed:
            self._m_unrouted.inc(self.dropped - self._unrouted_flushed)
            self._unrouted_flushed = self.dropped
        lat_counts = self._lat_counts
        nonzero = 0
        if lat_counts:
            observe_count = self._h_latency.observe_count
            while lat_counts:
                value, count = lat_counts.popitem()
                nonzero += count
                observe_count(value, count)
        zero = egress_n - nonzero
        if zero > 0:
            self._h_latency.observe_count(0.0, zero)

    # -- introspection -----------------------------------------------------
    def take_output(self) -> List[EgressRecord]:
        """Return and clear the collected egress records."""
        records = list(self.output)
        # Clear in place: the fast path pre-binds ``output.append``, so
        # the list object must stay the same across the runtime's life.
        self.output.clear()
        return records

    def element(self, name: str) -> Element:
        """The live element instance for ``name``."""
        return self.elements[name]
