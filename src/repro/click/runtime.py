"""Event-driven execution engine for Click configurations.

The runtime instantiates a :class:`~repro.click.config.ClickConfig` into
live elements and drives packets through the graph on a simulated clock.
Time only advances when timer-driven elements (queues, batchers, shapers)
need it to; plain push paths execute synchronously, exactly like Click's
push processing.

Packets that exit through ``ToNetfront``/``ToDevice`` sinks are collected
in :attr:`Runtime.output` as ``(element_name, packet, time)`` records so
tests and the platform simulator can observe egress traffic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.click.config import ClickConfig
from repro.click.element import Element, create_element
from repro.common.errors import ConfigError, SimulationError


class EgressRecord(NamedTuple):
    """One packet leaving the configuration through a sink element."""

    element: str
    packet: Any
    time: float


class Runtime:
    """Instantiates and runs one Click configuration.

    >>> from repro.click import parse_config, Packet
    >>> cfg = parse_config(
    ...     "src :: FromNetfront(); dst :: ToNetfront(); src -> dst;")
    >>> rt = Runtime(cfg)
    >>> rt.inject("src", Packet())
    >>> len(rt.output)
    1
    """

    def __init__(self, config: ClickConfig, start_time: float = 0.0):
        config.validate()
        self.config = config
        self.now = start_time
        self.output: List[EgressRecord] = []
        self.dropped = 0
        self._event_counter = itertools.count()
        self._timers: List[Tuple[float, int, Callable[[], None]]] = []
        self.elements: Dict[str, Element] = {}
        for name, decl in config.elements.items():
            element = create_element(decl.class_name, name, decl.args)
            element.runtime = self
            self.elements[name] = element
        # Adjacency map for fast edge lookup: (src, port) -> (dst, port).
        self._adjacency: Dict[Tuple[str, int], Tuple[str, int]] = {}
        for edge in config.edges:
            self._adjacency[(edge.src, edge.src_port)] = (
                edge.dst,
                edge.dst_port,
            )
        # Hot-path bindings: sink membership is decided once here, and
        # the adjacency lookup is a pre-bound method, so _route does no
        # getattr/attribute chasing per packet.
        self._sink_names = frozenset(
            name for name, element in self.elements.items()
            if getattr(element, "is_sink", False)
        )
        self._adjacency_get = self._adjacency.get
        for element in self.elements.values():
            element.initialize(self)

    # -- time ------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError("cannot schedule in the past")
        heapq.heappush(
            self._timers,
            (self.now + delay, next(self._event_counter), callback),
        )

    def run(self, until: Optional[float] = None) -> None:
        """Fire pending timers, advancing the clock, up to ``until``."""
        while self._timers:
            when, _, callback = self._timers[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._timers)
            self.now = max(self.now, when)
            callback()
        if until is not None:
            self.now = max(self.now, until)

    def pending_timers(self) -> int:
        """Number of timers not yet fired."""
        return len(self._timers)

    # -- traffic ---------------------------------------------------------
    def inject(
        self,
        element: str,
        packet,
        port: int = 0,
        at: Optional[float] = None,
    ) -> None:
        """Hand ``packet`` to input ``port`` of ``element``.

        With ``at`` set, injection is deferred to that simulated time
        (timers scheduled before it fire first).
        """
        if element not in self.elements:
            raise ConfigError("inject into unknown element %r" % (element,))
        if at is not None:
            if at < self.now:
                raise SimulationError("cannot inject in the past")
            self.schedule(
                at - self.now, lambda: self._push(element, port, packet)
            )
            return
        self._push(element, port, packet)

    def deliver_from(self, element: Element, port: int, packet) -> None:
        """Route a packet emitted asynchronously by ``element``."""
        self._route(element.name, port, packet)

    # -- internals ---------------------------------------------------------
    def _push(self, name: str, port: int, packet) -> None:
        element = self.elements[name]
        results = element.push(port, packet)
        for out_port, out_packet in results:
            self._route(name, out_port, out_packet)

    def _route(self, src: str, port: int, packet) -> None:
        if src in self._sink_names:
            self.output.append(EgressRecord(src, packet, self.now))
            return
        nxt = self._adjacency_get((src, port))
        if nxt is None:
            # Unconnected output port: Click would refuse to initialize;
            # we count it as a drop to keep partially-wired tests simple.
            self.dropped += 1
            return
        self._push(nxt[0], nxt[1], packet)

    # -- introspection -----------------------------------------------------
    def take_output(self) -> List[EgressRecord]:
        """Return and clear the collected egress records."""
        records, self.output = self.output, []
        return records

    def element(self, name: str) -> Element:
        """The live element instance for ``name``."""
        return self.elements[name]
