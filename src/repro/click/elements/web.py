"""Application endpoints used in the paper's walkthroughs.

``EchoResponder`` is the content-provider server of Figure 2: it answers
each request by swapping the source and destination addresses of the
incoming packet -- the canonical case where symbolic execution proves
that an in-network deployment only replies to implicitly-authorized
destinations (``IPdst = IPsrc``).
"""

from __future__ import annotations

from typing import List

from repro.click.element import Element, PushResult, register_element
from repro.click.packet import (
    IP_DST,
    IP_PROTO,
    IP_SRC,
    PAYLOAD,
    TP_DST,
    TP_SRC,
    UDP,
)


@register_element("EchoResponder")
class EchoResponder(Element):
    """The Figure 2 server: reply to UDP by swapping src and dst.

    Non-UDP packets are dropped, exactly like the paper's pseudocode.
    An optional payload argument replaces the response payload.
    """

    cycle_cost = 1.0

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 1)
        self.response_payload = args[0].encode() if args else None
        self.replies = 0

    def push(self, port: int, packet) -> PushResult:
        if packet[IP_PROTO] != UDP:
            return []
        packet[IP_SRC], packet[IP_DST] = packet[IP_DST], packet[IP_SRC]
        packet[TP_SRC], packet[TP_DST] = packet[TP_DST], packet[TP_SRC]
        if self.response_payload is not None:
            packet[PAYLOAD] = self.response_payload
        self.replies += 1
        return [(0, packet)]


@register_element("ReverseProxy")
class ReverseProxy(Element):
    """Stock reverse-HTTP-proxy processing module (squid-based in the
    paper).  Forwards requests to a configured origin, rewriting the
    destination; responses are relayed back to the original client.

    ``ReverseProxy(ORIGIN_ADDR, ORIGIN_PORT)``.
    """

    n_inputs = 2
    n_outputs = 2
    stateful = True
    cycle_cost = 2.5

    CLIENT_SIDE = 0
    ORIGIN_SIDE = 1

    def configure(self, args: List[str]) -> None:
        from repro.click.element import parse_int_arg
        from repro.common.addr import parse_ip

        self.require_args(args, 2)
        self.origin_addr = parse_ip(args[0])
        self.origin_port = parse_int_arg(args[1], "origin port")
        # upstream source port -> (client addr, client port, own addr);
        # the proxy reuses the client's source port upstream, so the
        # origin's response port identifies the session.
        self.sessions = {}

    def push(self, port: int, packet) -> PushResult:
        if port == self.CLIENT_SIDE:
            own_addr = packet[IP_DST]  # the address the client contacted
            self.sessions[packet[TP_SRC]] = (
                packet[IP_SRC], packet[TP_SRC], own_addr,
            )
            packet[IP_SRC] = own_addr
            packet[IP_DST] = self.origin_addr
            packet[TP_DST] = self.origin_port
            return [(self.ORIGIN_SIDE, packet)]
        # Response from the origin: relay to the recorded client,
        # sourced from the proxy's own address.
        session = self.sessions.get(packet[TP_DST])
        if session is None:
            return []
        client_addr, client_port, own_addr = session
        packet[IP_SRC] = own_addr
        packet[IP_DST] = client_addr
        packet[TP_DST] = client_port
        return [(self.CLIENT_SIDE, packet)]


@register_element("GeoDNSServer")
class GeoDNSServer(Element):
    """Stock geolocation DNS server: answers queries with the replica
    nearest to the querying client.

    ``GeoDNSServer(REPLICA1, REPLICA2, ...)``.  "Nearest" is modelled
    by numeric distance between address integers, standing in for the
    geolocation database of the real appliance; the CDN use case
    (:mod:`repro.usecases.cdn`) supplies a real latency matrix instead.
    """

    cycle_cost = 1.2

    def configure(self, args: List[str]) -> None:
        from repro.common.addr import parse_ip
        from repro.common.errors import ConfigError

        if not args:
            raise ConfigError("GeoDNSServer needs at least one replica")
        self.replicas = [parse_ip(a) for a in args]
        self.answers = 0

    def nearest_replica(self, client_addr: int) -> int:
        """The replica with minimal address distance to the client."""
        return min(self.replicas, key=lambda r: abs(r - client_addr))

    #: DNS responses are much larger than queries -- the property
    #: amplification attacks exploit (Section 7).
    RESPONSE_BYTES = 512

    def push(self, port: int, packet) -> PushResult:
        replica = self.nearest_replica(packet[IP_SRC])
        packet[IP_SRC], packet[IP_DST] = packet[IP_DST], packet[IP_SRC]
        packet[TP_SRC], packet[TP_DST] = packet[TP_DST], packet[TP_SRC]
        packet[PAYLOAD] = ("A %s" % replica).encode()
        packet.length = max(packet.length, self.RESPONSE_BYTES)
        self.answers += 1
        return [(0, packet)]


@register_element("LoadBalancer")
class LoadBalancer(Element):
    """Spreads flows across a fixed list of backend addresses.

    ``LoadBalancer(BACKEND1, BACKEND2, ...)``.  The backend is chosen
    per flow (hash of the 5-tuple), so a flow's packets stick to one
    backend.  Because the backend set is a static constant list,
    static analysis can check every possible destination against the
    requester's white-list -- a content provider may deploy one in
    front of its own replicas.
    """

    stateful = False  # flow->backend is a pure hash, no stored state
    cycle_cost = 1.6

    def configure(self, args: List[str]) -> None:
        from repro.common.addr import parse_ip
        from repro.common.errors import ConfigError

        if not args:
            raise ConfigError("LoadBalancer needs at least one backend")
        self.backends = [parse_ip(a) for a in args]
        self.assignments = {}

    def push(self, port: int, packet) -> PushResult:
        key = packet.flow_key()
        index = hash(key) % len(self.backends)
        self.assignments[key] = index
        packet[IP_DST] = self.backends[index]
        return [(0, packet)]


@register_element("ExplicitProxy")
class ExplicitProxy(Element):
    """Stock explicit (forward) proxy: clients address it directly and
    it fetches arbitrary destinations on their behalf.

    ``ExplicitProxy(PROXY_ADDR)``.  The upstream destination is taken
    from the request payload at run time, so static analysis cannot
    bound it: allowed for the operator's own clients (who may reach any
    destination anyway) but sandboxed for third parties.
    """

    stateful = True
    cycle_cost = 2.5

    def configure(self, args: List[str]) -> None:
        from repro.common.addr import parse_ip

        self.require_args(args, 1)
        self.proxy_addr = parse_ip(args[0])
        self.fetches = 0

    def push(self, port: int, packet) -> PushResult:
        import re

        from repro.common.addr import parse_ip
        from repro.common.errors import ConfigError

        payload = packet.get(PAYLOAD) or b""
        if isinstance(payload, bytes):
            payload = payload.decode(errors="ignore")
        upstream = None
        for match in re.finditer(r"\d+\.\d+\.\d+\.\d+", payload):
            try:
                upstream = parse_ip(match.group())
                break
            except ConfigError:
                continue
        if upstream is None:
            return []
        packet[IP_SRC] = self.proxy_addr
        packet[IP_DST] = upstream
        self.fetches += 1
        return [(0, packet)]


@register_element("X86VM")
class X86VM(Element):
    """An opaque x86 virtual machine running arbitrary tenant code.

    The dataplane behaviour is a configurable passthrough, but the
    element's *symbolic model* is "anything can happen": every header
    field becomes unconstrained, so static analysis can never certify
    it and the controller always sandboxes it (Table 1, last row).
    """

    stateful = True
    cycle_cost = 10.0

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 1)
        self.image = args[0] if args else "generic"

    def push(self, port: int, packet) -> PushResult:
        return [(0, packet)]
