"""I/O endpoint elements.

``FromNetfront``/``ToNetfront`` are the ClickOS paravirtualized NIC
endpoints the paper's configurations use; ``FromDevice``/``ToDevice`` are
accepted as aliases.  ``Discard`` and ``Idle`` are the usual Click
traffic sinks.
"""

from __future__ import annotations

from typing import List

from repro.click.element import (
    Element,
    PushBatchResult,
    PushColumnsResult,
    PushResult,
    register_element,
)


@register_element("FromNetfront")
class FromNetfront(Element):
    """Ingress endpoint: packets are injected here by the platform.

    Takes an optional interface-name argument (ignored, kept for
    fidelity with real configurations).
    """

    n_inputs = 1  # the runtime injects via input port 0
    n_outputs = 1
    cycle_cost = 0.6
    has_column_kernel = True

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 1)
        self.interface = args[0] if args else "0"

    def push(self, port: int, packet) -> PushResult:
        return [(0, packet)]

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        return [(0, packets)]

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        return [(0, cols)]


@register_element("ToNetfront")
class ToNetfront(Element):
    """Egress endpoint: packets pushed here leave the configuration.

    The runtime records them in :attr:`Runtime.output`.
    """

    n_inputs = 1
    n_outputs = 0
    is_sink = True
    cycle_cost = 0.6
    has_column_kernel = True

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 1)
        self.interface = args[0] if args else "0"
        self.count = 0

    def push(self, port: int, packet) -> PushResult:
        self.count += 1
        # Routed by the runtime straight into the egress record list.
        return [(0, packet)]

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        self.count += len(packets)
        return [(0, packets)]

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        self.count += cols.n_alive
        return [(0, cols)]


@register_element("FromDevice")
class FromDevice(FromNetfront):
    """Alias of :class:`FromNetfront` for vanilla Click configs."""


@register_element("ToDevice")
class ToDevice(ToNetfront):
    """Alias of :class:`ToNetfront` for vanilla Click configs."""


@register_element("Discard")
class Discard(Element):
    """Swallows every packet."""

    n_inputs = 1
    n_outputs = 0
    cycle_cost = 0.2
    has_column_kernel = True

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 0)
        self.count = 0

    def push(self, port: int, packet) -> PushResult:
        self.count += 1
        return []

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        self.count += len(packets)
        return []

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        self.count += cols.n_alive
        return []


@register_element("Idle")
class Idle(Element):
    """Never emits and silently drops anything pushed to it."""

    n_inputs = None
    n_outputs = None
    cycle_cost = 0.0
    has_column_kernel = True

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 0)

    def push(self, port: int, packet) -> PushResult:
        return []

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        return []

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        return []
