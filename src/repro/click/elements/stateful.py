"""Stateful elements: the connection-tracking firewall of Figures 1-2.

The paper's example firewall allows outgoing UDP traffic and only the
related inbound traffic.  ``StatefulFirewall`` generalizes this: any
flow-spec for the outbound direction; inbound packets pass only when
they reverse an established outbound flow that has not idled out.

Per the paper's modelling discipline, the firewall's symbolic model does
not enumerate state: it pushes the state into the flow itself as a tag
(see :mod:`repro.symexec.models`), so verification stays oblivious to
flow arrival order.
"""

from __future__ import annotations

from typing import Dict, List

from repro.click.element import (
    Element,
    PushResult,
    parse_float_arg,
    register_element,
)
from repro.common.errors import ConfigError
from repro.policy.flowspec import FlowSpec, parse_flowspec


@register_element("StatefulFirewall")
class StatefulFirewall(Element):
    """Two-sided connection-tracking firewall.

    * input/output 0 -- outbound (protected side to outside),
    * input/output 1 -- inbound (outside to protected side).

    Arguments: an ``allow <spec>`` rule for the outbound direction
    (default ``allow any``) and an optional ``timeout <seconds>`` for
    idle state expiry (default 300 s, matching typical middlebox NAT/
    firewall timeouts the paper's push-notification use case fights).
    """

    n_inputs = 2
    n_outputs = 2
    stateful = True
    cycle_cost = 1.5

    OUTBOUND = 0
    INBOUND = 1

    def configure(self, args: List[str]) -> None:
        self.allow_spec: FlowSpec = FlowSpec.any()
        self.timeout = 300.0
        for arg in args:
            keyword, _, rest = arg.strip().partition(" ")
            keyword = keyword.lower()
            if keyword == "allow":
                self.allow_spec = parse_flowspec(rest)
            elif keyword == "timeout":
                self.timeout = parse_float_arg(rest, "timeout")
            else:
                raise ConfigError(
                    "bad StatefulFirewall argument %r" % (arg,)
                )
        # flow key (as seen outbound) -> last activity time.
        self.state: Dict[tuple, float] = {}
        self.dropped_outbound = 0
        self.dropped_inbound = 0

    def _now(self) -> float:
        return self.runtime.now if self.runtime else 0.0

    def push(self, port: int, packet) -> PushResult:
        now = self._now()
        if port == self.OUTBOUND:
            if not self.allow_spec.matches(packet):
                self.dropped_outbound += 1
                return []
            self.state[packet.flow_key()] = now
            packet.annotations["firewall_tag"] = True
            return [(self.OUTBOUND, packet)]
        # Inbound: must reverse an established, fresh outbound flow.
        key = packet.reverse_flow_key()
        last_seen = self.state.get(key)
        if last_seen is None or now - last_seen > self.timeout:
            if last_seen is not None:
                del self.state[key]
            self.dropped_inbound += 1
            return []
        self.state[key] = now
        packet.annotations["firewall_tag"] = True
        return [(self.INBOUND, packet)]

    def shard_unsafe_reason(self):
        # Stateful, but the connection table is keyed by the outbound
        # flow key and only ever consulted by that flow's two
        # directions.  The flow hash is direction-symmetric, so a
        # sharded dataplane pins both directions of a conversation to
        # the same shard and per-shard tables stay disjoint.
        return None

    def active_flows(self) -> int:
        """Number of non-expired flow entries."""
        now = self._now()
        return sum(
            1 for t in self.state.values() if now - t <= self.timeout
        )

    def expire_idle(self) -> int:
        """Drop idle entries; returns how many were removed."""
        now = self._now()
        stale = [k for k, t in self.state.items() if now - t > self.timeout]
        for key in stale:
            del self.state[key]
        return len(stale)
