"""Header rewriting elements.

``IPRewriter`` follows Click's pattern syntax
(``pattern SADDR SPORT DADDR DPORT FOUTPUT ROUTPUT``) with ``-`` meaning
"leave unchanged"; it is the workhorse behind the paper's NAT, the
push-notification forwarder of Figure 4, and the Table 1 "NAT" row.
Simpler single-field setters and TTL manipulation live here too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.click import columnar
from repro.click.element import (
    Element,
    PushBatchResult,
    PushColumnsResult,
    PushResult,
    parse_int_arg,
    register_element,
)
from repro.click.packet import IP_DST, IP_PROTO, IP_SRC, IP_TTL, TP_DST, \
    TP_SRC
from repro.common.addr import parse_ip
from repro.common.errors import ConfigError


@dataclass
class RewritePattern:
    """One parsed ``pattern`` clause of an IPRewriter."""

    src_addr: Optional[int]              # None = unchanged
    src_port: Optional[Tuple[int, int]]  # None = unchanged; (lo,hi) range
    dst_addr: Optional[int]
    dst_port: Optional[Tuple[int, int]]
    fwd_output: int
    rev_output: int

    @property
    def allocates_ports(self) -> bool:
        """Whether any port field maps to a range (needs per-flow state)."""
        for port_range in (self.src_port, self.dst_port):
            if port_range is not None and port_range[0] != port_range[1]:
                return True
        return False

    @property
    def rewrites_source(self) -> bool:
        """Whether the pattern changes the source address or port."""
        return self.src_addr is not None or self.src_port is not None


def _parse_addr_field(token: str, what: str) -> Optional[int]:
    if token == "-":
        return None
    try:
        return parse_ip(token)
    except Exception:
        raise ConfigError("bad %s %r in IPRewriter pattern" % (what, token))


def _parse_port_field(token: str, what: str) -> Optional[Tuple[int, int]]:
    if token == "-":
        return None
    if "-" in token:
        low_text, _, high_text = token.partition("-")
        if not (low_text.isdigit() and high_text.isdigit()):
            raise ConfigError("bad %s %r in IPRewriter pattern" % (what,
                                                                   token))
        low, high = int(low_text), int(high_text)
    else:
        if not token.isdigit():
            raise ConfigError("bad %s %r in IPRewriter pattern" % (what,
                                                                   token))
        low = high = int(token)
    if high > 65535 or low > high:
        raise ConfigError("bad %s %r in IPRewriter pattern" % (what, token))
    return (low, high)


def parse_rewrite_pattern(text: str) -> RewritePattern:
    """Parse ``pattern SADDR SPORT DADDR DPORT FOUT ROUT``."""
    tokens = text.split()
    if not tokens or tokens[0].lower() != "pattern":
        raise ConfigError("IPRewriter rule must start with 'pattern': %r"
                          % (text,))
    if len(tokens) != 7:
        raise ConfigError(
            "IPRewriter pattern needs 6 fields, got %d in %r"
            % (len(tokens) - 1, text)
        )
    return RewritePattern(
        src_addr=_parse_addr_field(tokens[1], "source address"),
        src_port=_parse_port_field(tokens[2], "source port"),
        dst_addr=_parse_addr_field(tokens[3], "destination address"),
        dst_port=_parse_port_field(tokens[4], "destination port"),
        fwd_output=parse_int_arg(tokens[5], "forward output"),
        rev_output=parse_int_arg(tokens[6], "reverse output"),
    )


@register_element("IPRewriter")
class IPRewriter(Element):
    """Click-style NAT rewriter.

    Each input port is configured by one argument.  Supported forms:

    * ``pattern SADDR SPORT DADDR DPORT FOUT ROUT`` -- rewrite the flow
      per pattern, remember the mapping, and emit on ``FOUT``; reply
      packets of a known mapping arriving on any input are inverse-
      rewritten and emitted on ``ROUT``.
    * ``drop`` -- drop packets arriving on that input.

    The element is *stateless in effect* when no pattern allocates ports
    from a range and none rewrites the source (the Figure 4 forwarder):
    in that case every packet is rewritten identically, no per-flow
    memory is needed, and the platform may consolidate the config.
    """

    n_inputs = None
    n_outputs = None
    cycle_cost = 2.0
    has_column_kernel = True
    column_fields = (IP_SRC, IP_DST, IP_PROTO, TP_SRC, TP_DST)

    def configure(self, args: List[str]) -> None:
        if not args:
            raise ConfigError("IPRewriter needs at least one input spec")
        self.inputs: List[Optional[RewritePattern]] = []
        for arg in args:
            text = arg.strip()
            if text.lower() == "drop":
                self.inputs.append(None)
            else:
                self.inputs.append(parse_rewrite_pattern(text))
        # Per-flow mapping state: flow key -> (rewritten key, pattern).
        self.mappings: Dict[tuple, Tuple[tuple, RewritePattern]] = {}
        self.reverse_mappings: Dict[tuple, Tuple[tuple, RewritePattern]] = {}
        self._next_alloc_port: Dict[int, int] = {}

    @property
    def stateful(self) -> bool:  # type: ignore[override]
        """Per-flow state is only needed with port allocation or source
        rewriting (reply traffic must be un-mapped)."""
        return any(
            p is not None and (p.allocates_ports or p.rewrites_source)
            for p in self.inputs
        )

    def shard_unsafe_reason(self):
        # A purely static rewrite (the Figure 4 forwarder) maps each
        # packet independently of arrival order and needs no merge; a
        # pattern that allocates ports from a range hands out ports in
        # arrival order across *all* flows, which sharding would
        # permute.
        if self.stateful:
            return "allocates ports/mappings in cross-flow arrival order"
        return None

    def _allocate_port(self, index: int, port_range: Tuple[int, int]) -> int:
        low, high = port_range
        if low == high:
            return low
        cursor = self._next_alloc_port.get(index, low)
        if cursor > high:
            cursor = low
        self._next_alloc_port[index] = cursor + 1
        return cursor

    def _establish(
        self, port: int, key: tuple, pattern: RewritePattern
    ) -> Tuple[tuple, RewritePattern]:
        """Create (and remember) the mapping for a first-packet flow."""
        rewritten = (
            pattern.src_addr if pattern.src_addr is not None else key[0],
            pattern.dst_addr if pattern.dst_addr is not None else key[1],
            key[2],
            self._allocate_port(port, pattern.src_port)
            if pattern.src_port is not None else key[3],
            self._allocate_port(port, pattern.dst_port)
            if pattern.dst_port is not None else key[4],
        )
        mapping = self.mappings[key] = (rewritten, pattern)
        src, dst, _, sport, dport = rewritten
        # Reply key: traffic from the rewritten destination back to
        # the rewritten source.
        self.reverse_mappings[(dst, src, key[2], dport, sport)] = (
            key,
            pattern,
        )
        return mapping

    def push(self, port: int, packet) -> PushResult:
        if port >= len(self.inputs):
            raise ConfigError(
                "IPRewriter %r has no input %d" % (self.name, port)
            )
        key = packet.flow_key()
        # Reply direction of an established mapping?
        hit = self.reverse_mappings.get(key)
        if hit is not None:
            original_key, pattern = hit
            dst, src, _, dport, sport = original_key
            packet[IP_SRC], packet[TP_SRC] = src, sport
            packet[IP_DST], packet[TP_DST] = dst, dport
            return [(pattern.rev_output, packet)]
        pattern = self.inputs[port]
        if pattern is None:
            return []
        mapping = self.mappings.get(key)
        if mapping is None:
            mapping = self._establish(port, key, pattern)
        rewritten, pattern = mapping
        src, dst, _, sport, dport = rewritten
        packet[IP_SRC], packet[IP_DST] = src, dst
        packet[TP_SRC], packet[TP_DST] = sport, dport
        return [(pattern.fwd_output, packet)]

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        """Vectorized rewrite: mapping hits (the steady state of every
        flow after its first packet) are rewritten inline with hoisted
        dict lookups; mapping misses fall back to scalar :meth:`push`
        so allocation and mapping-establishment semantics stay exact.
        """
        if port >= len(self.inputs):
            raise ConfigError(
                "IPRewriter %r has no input %d" % (self.name, port)
            )
        rev_get = self.reverse_mappings.get
        fwd_get = self.mappings.get
        scalar_push = self.push
        groups = {}
        for packet in packets:
            fields = packet.fields
            key = (
                fields[IP_SRC], fields[IP_DST], fields["ip_proto"],
                fields[TP_SRC], fields[TP_DST],
            )
            hit = rev_get(key)
            if hit is not None:
                original_key, pattern = hit
                dst, src, _, dport, sport = original_key
                fields[IP_SRC], fields[TP_SRC] = src, sport
                fields[IP_DST], fields[TP_DST] = dst, dport
                packet._fkey = None
                packet._fhash = None
                out = pattern.rev_output
            else:
                mapping = fwd_get(key)
                if mapping is not None:
                    rewritten, pattern = mapping
                    src, dst, _, sport, dport = rewritten
                    fields[IP_SRC], fields[IP_DST] = src, dst
                    fields[TP_SRC], fields[TP_DST] = sport, dport
                    packet._fkey = None
                    packet._fhash = None
                    out = pattern.fwd_output
                else:
                    results = scalar_push(port, packet)
                    if not results:
                        continue  # "drop" input
                    out, packet = results[0]
            try:
                groups[out].append(packet)
            except KeyError:
                groups[out] = [packet]
        return list(groups.items())

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        """Columnar rewrite: one dict lookup per *run* of equal
        5-tuples (in the steady state a batch is a handful of flows,
        often one), then slice-wide column writes.  Mapping
        establishment reuses the scalar :meth:`_establish` so
        allocation order stays exactly arrival order.
        """
        if port >= len(self.inputs):
            raise ConfigError(
                "IPRewriter %r has no input %d" % (self.name, port)
            )
        np = columnar.np
        rev_get = self.reverse_mappings.get
        fwd_get = self.mappings.get
        # Compact the key columns to alive rows, find runs of equal
        # 5-tuples, and look each run up once (a single-flow batch is
        # simply the one-run case: one lookup, whole-column writes).
        alive = cols.alive
        if alive is None:
            idx = None
            csrc = cols.column(IP_SRC)
            cdst = cols.column(IP_DST)
            cproto = cols.column(IP_PROTO)
            csp = cols.column(TP_SRC)
            cdp = cols.column(TP_DST)
        else:
            idx = np.flatnonzero(alive)
            csrc = cols.column(IP_SRC)[idx]
            cdst = cols.column(IP_DST)[idx]
            cproto = cols.column(IP_PROTO)[idx]
            csp = cols.column(TP_SRC)[idx]
            cdp = cols.column(TP_DST)[idx]
        m = len(csrc)
        change = np.ones(m, dtype=bool)
        if m > 1:
            np.not_equal(csrc[1:], csrc[:-1], out=change[1:])
            change[1:] |= cdst[1:] != cdst[:-1]
            change[1:] |= cproto[1:] != cproto[:-1]
            change[1:] |= csp[1:] != csp[:-1]
            change[1:] |= cdp[1:] != cdp[:-1]
        starts = np.flatnonzero(change).tolist()
        starts.append(m)
        port_order: List[int] = []
        port_runs: Dict[int, List[Tuple[int, int]]] = {}
        drop_runs: List[Tuple[int, int]] = []
        w_src = w_dst = w_sp = w_dp = False
        for r in range(len(starts) - 1):
            a, b = starts[r], starts[r + 1]
            key = (
                int(csrc[a]), int(cdst[a]), int(cproto[a]),
                int(csp[a]), int(cdp[a]),
            )
            hit = rev_get(key)
            if hit is not None:
                original_key, pattern = hit
                dst, src, _, dport, sport = original_key
                out = pattern.rev_output
            else:
                mapping = fwd_get(key)
                if mapping is None:
                    pattern = self.inputs[port]
                    if pattern is None:
                        drop_runs.append((a, b))
                        continue
                    mapping = self._establish(port, key, pattern)
                rewritten, pattern = mapping
                src, dst, _, sport, dport = rewritten
                out = pattern.fwd_output
            if src != key[0]:
                csrc[a:b] = src
                w_src = True
            if dst != key[1]:
                cdst[a:b] = dst
                w_dst = True
            if sport != key[3]:
                csp[a:b] = sport
                w_sp = True
            if dport != key[4]:
                cdp[a:b] = dport
                w_dp = True
            try:
                port_runs[out].append((a, b))
            except KeyError:
                port_runs[out] = [(a, b)]
                port_order.append(out)
        for name, arr, changed in (
            (IP_SRC, csrc, w_src), (IP_DST, cdst, w_dst),
            (TP_SRC, csp, w_sp), (TP_DST, cdp, w_dp),
        ):
            if changed:
                if idx is not None:
                    # The compacted array is a copy; scatter it back.
                    cols.column(name)[idx] = arr
                cols.mark_dirty(name)
        if drop_runs:
            keep = np.ones(cols.n, dtype=bool)
            for a, b in drop_runs:
                if idx is None:
                    keep[a:b] = False
                else:
                    keep[idx[a:b]] = False
            cols.kill(keep)
            if not cols.n_alive:
                return []
        if len(port_order) == 1:
            return [(port_order[0], cols)]
        groups = []
        for out in port_order:
            mask = np.zeros(cols.n, dtype=bool)
            for a, b in port_runs[out]:
                if idx is None:
                    mask[a:b] = True
                else:
                    mask[idx[a:b]] = True
            groups.append((out, mask))
        return cols.split(groups)


@register_element("SetIPAddress")
class SetIPAddress(Element):
    """Sets the destination IP address to a constant."""

    cycle_cost = 0.5
    has_column_kernel = True
    column_fields = (IP_DST,)

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 1)
        self.address = parse_ip(args[0])

    def push(self, port: int, packet) -> PushResult:
        packet[IP_DST] = self.address
        return [(0, packet)]

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        cols.set_all(IP_DST, self.address)
        return [(0, cols)]


@register_element("SetIPSrc")
class SetIPSrc(Element):
    """Sets the source IP address to a constant (spoofing primitive).

    Exists so tests and Table 1 can exercise the anti-spoofing security
    rule -- a third-party config containing this element must be refused
    unless the address equals the module's assigned address.
    """

    cycle_cost = 0.5
    has_column_kernel = True
    column_fields = (IP_SRC,)

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 1)
        self.address = parse_ip(args[0])

    def push(self, port: int, packet) -> PushResult:
        packet[IP_SRC] = self.address
        return [(0, packet)]

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        cols.set_all(IP_SRC, self.address)
        return [(0, cols)]


@register_element("SetTPDst")
class SetTPDst(Element):
    """Sets the transport destination port to a constant."""

    cycle_cost = 0.4
    has_column_kernel = True
    column_fields = (TP_DST,)

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 1)
        self.port_value = parse_int_arg(args[0], "port")

    def push(self, port: int, packet) -> PushResult:
        packet[TP_DST] = self.port_value
        return [(0, packet)]

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        cols.set_all(TP_DST, self.port_value)
        return [(0, cols)]


@register_element("SetTPSrc")
class SetTPSrc(Element):
    """Sets the transport source port to a constant."""

    cycle_cost = 0.4
    has_column_kernel = True
    column_fields = (TP_SRC,)

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 1)
        self.port_value = parse_int_arg(args[0], "port")

    def push(self, port: int, packet) -> PushResult:
        packet[TP_SRC] = self.port_value
        return [(0, packet)]

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        cols.set_all(TP_SRC, self.port_value)
        return [(0, cols)]


@register_element("DecIPTTL")
class DecIPTTL(Element):
    """Decrements TTL; expired packets (TTL would hit 0) exit port 1 if
    connected, else are dropped."""

    n_outputs = None  # port 1 optional
    cycle_cost = 0.4
    has_column_kernel = True
    column_fields = (IP_TTL,)

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 0)
        self.expired = 0

    def push(self, port: int, packet) -> PushResult:
        ttl = packet[IP_TTL]
        if ttl <= 1:
            self.expired += 1
            return [(1, packet)]
        packet[IP_TTL] = ttl - 1
        return [(0, packet)]

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        np = columnar.np
        ttl = cols.column(IP_TTL)
        expired = ttl <= 1
        alive = cols.alive
        if alive is not None:
            expired &= alive
        n_expired = int(expired.sum())
        if not n_expired:
            if alive is None:
                ttl -= 1
            else:
                ttl[alive] -= 1
            cols.mark_dirty(IP_TTL)
            return [(0, cols)]
        self.expired += n_expired
        ok = ~expired if alive is None else (~expired & alive)
        if ok.any():
            ttl[ok] -= 1
        cols.mark_dirty(IP_TTL)
        if n_expired == cols.n_alive:
            return [(1, cols)]
        groups = [(0, ok), (1, expired)]
        # Emit groups in first-emission order, like scalar grouping.
        groups.sort(key=lambda g: int(np.argmax(g[1])))
        return cols.split(groups)


@register_element("CheckIPHeader")
class CheckIPHeader(Element):
    """Sanity-checks IP headers; malformed packets are dropped.

    Our packets are structurally valid by construction, so the check is
    over field ranges (zero/invalid addresses, TTL of 0).
    """

    cycle_cost = 0.8
    has_column_kernel = True
    column_fields = (IP_SRC, IP_TTL)

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 1)
        self.dropped = 0

    def push(self, port: int, packet) -> PushResult:
        valid = (
            0 < packet[IP_TTL] <= 255
            and packet[IP_SRC] != 0xFFFFFFFF
        )
        if not valid:
            self.dropped += 1
            return []
        return [(0, packet)]

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        out: List = []
        append = out.append
        dropped = 0
        for packet in packets:
            fields = packet.fields
            if 0 < fields[IP_TTL] <= 255 and fields[IP_SRC] != 0xFFFFFFFF:
                append(packet)
            else:
                dropped += 1
        if dropped:
            self.dropped += dropped
        if not out:
            return []
        return [(0, out)]

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        ttl = cols.column(IP_TTL)
        valid = (ttl > 0) & (ttl <= 255)
        valid &= cols.column(IP_SRC) != 0xFFFFFFFF
        before = cols.n_alive
        cols.kill(valid)
        killed = before - cols.n_alive
        if killed:
            self.dropped += killed
        if not cols.n_alive:
            return []
        return [(0, cols)]
