"""Tunnel elements: encapsulation and decapsulation.

Tunnels are the interesting Table 1 row: a third-party tunnel endpoint
*might* send traffic to legitimate whitelisted destinations, but the real
destination only appears at decap time, so static analysis cannot prove
compliance and the controller must sandbox the module (Section 7.1).
"""

from __future__ import annotations

from typing import List

from repro.click.element import (
    Element,
    PushResult,
    parse_int_arg,
    register_element,
)
from repro.click.packet import GRE, IP_DST, IP_PROTO, IP_SRC, TP_DST, TP_SRC, UDP
from repro.common.addr import parse_ip


@register_element("IPEncap")
class IPEncap(Element):
    """Wraps each packet in a new IP header (GRE-style).

    ``IPEncap(PROTO, SADDR, DADDR)``.
    """

    cycle_cost = 1.5

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 3)
        self.proto = parse_int_arg(args[0], "protocol")
        self.src = parse_ip(args[1])
        self.dst = parse_ip(args[2])

    def push(self, port: int, packet) -> PushResult:
        packet.encapsulate(
            **{IP_PROTO: self.proto, IP_SRC: self.src, IP_DST: self.dst}
        )
        packet.length += 20
        return [(0, packet)]


@register_element("UDPIPEncap")
class UDPIPEncap(Element):
    """Wraps each packet in fresh UDP/IP headers.

    ``UDPIPEncap(SADDR, SPORT, DADDR, DPORT)`` -- the tunnel the SCTP
    use case (Section 8) prefers when the path allows UDP.
    """

    cycle_cost = 1.6

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 4)
        self.src = parse_ip(args[0])
        self.sport = parse_int_arg(args[1], "source port")
        self.dst = parse_ip(args[2])
        self.dport = parse_int_arg(args[3], "destination port")

    def push(self, port: int, packet) -> PushResult:
        packet.encapsulate(
            **{
                IP_PROTO: UDP,
                IP_SRC: self.src,
                IP_DST: self.dst,
                TP_SRC: self.sport,
                TP_DST: self.dport,
            }
        )
        packet.length += 28
        return [(0, packet)]


@register_element("IPDecap")
class IPDecap(Element):
    """Strips the outer header, restoring the encapsulated one.

    Packets with no encapsulation layer are dropped.  After decap the
    packet's destination is whatever the *inner* header says -- the
    run-time-only information that forces sandboxing for third-party
    tunnels.
    """

    cycle_cost = 1.4

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 0)
        self.dropped = 0

    def push(self, port: int, packet) -> PushResult:
        if packet.encap_depth == 0:
            self.dropped += 1
            return []
        packet.decapsulate()
        packet.length = max(64, packet.length - 20)
        return [(0, packet)]


#: Protocol number constant re-exported for tunnel configurations.
GRE_PROTO = GRE
