"""The ``ChangeEnforcer`` sandbox element (Section 4.4).

When static analysis cannot prove a processing module safe (tunnels,
x86 VMs), the controller wraps it with ChangeEnforcer instances on every
path between the module and the netfront endpoints.  The element behaves
like a stateful firewall around the module:

* traffic from the outside world *to* the module always passes,
* traffic *from* the module only passes when it is response traffic of
  an established inbound flow (implicit authorization) or its
  destination is on the configured white-list (explicit authorization).

Authorization expires after an idle timeout, which is how the paper
bounds the time-based attack caveat discussed in Section 7.  (Source
addresses are checked *statically* before deployment; the enforcer's
job is the destination rule that static analysis could not decide.)
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.click.element import (
    Element,
    PushResult,
    parse_float_arg,
    register_element,
)
from repro.click.packet import IP_DST, IP_SRC
from repro.common.addr import parse_ip
from repro.common.errors import ConfigError


@register_element("ChangeEnforcer")
class ChangeEnforcer(Element):
    """Runtime sandbox for one processing module.

    * input/output 0 -- outside -> module direction,
    * input/output 1 -- module -> outside direction.

    Arguments: ``addr <module address>`` (the address the controller
    assigned to the module), any number of ``whitelist <addr>`` entries,
    and optional ``timeout <seconds>`` (default 300).
    """

    n_inputs = 2
    n_outputs = 2
    stateful = True
    cycle_cost = 1.5

    TO_MODULE = 0
    FROM_MODULE = 1

    def configure(self, args: List[str]) -> None:
        self.module_addr = None
        self.whitelist: Set[int] = set()
        self.timeout = 300.0
        for arg in args:
            keyword, _, rest = arg.strip().partition(" ")
            keyword = keyword.lower()
            rest = rest.strip()
            if keyword == "addr":
                self.module_addr = parse_ip(rest)
            elif keyword == "whitelist":
                self.whitelist.add(parse_ip(rest))
            elif keyword == "timeout":
                self.timeout = parse_float_arg(rest, "timeout")
            else:
                raise ConfigError(
                    "bad ChangeEnforcer argument %r" % (arg,)
                )
        #: inbound sources that implicitly authorized responses.
        self.authorized: Dict[int, float] = {}
        self.dropped_unauthorized = 0

    def _now(self) -> float:
        return self.runtime.now if self.runtime else 0.0

    def push(self, port: int, packet) -> PushResult:
        now = self._now()
        if port == self.TO_MODULE:
            # Outside world talking to the module: always allowed, and
            # implicitly authorizes responses to the sender.
            self.authorized[packet[IP_SRC]] = now
            return [(self.TO_MODULE, packet)]
        destination = packet[IP_DST]
        if destination in self.whitelist:
            return [(self.FROM_MODULE, packet)]
        last_seen = self.authorized.get(destination)
        if last_seen is not None and now - last_seen <= self.timeout:
            self.authorized[destination] = now
            return [(self.FROM_MODULE, packet)]
        if last_seen is not None:
            del self.authorized[destination]
        self.dropped_unauthorized += 1
        return []

    def expire_idle(self) -> int:
        """Revoke idle authorizations; returns how many expired."""
        now = self._now()
        stale = [
            a for a, t in self.authorized.items() if now - t > self.timeout
        ]
        for addr in stale:
            del self.authorized[addr]
        return len(stale)
