"""Multicast replication element (Table 1 "Multicast" row)."""

from __future__ import annotations

from typing import List

from repro.click.element import (
    Element,
    PushBatchResult,
    PushResult,
    register_element,
)
from repro.click.packet import IP_DST
from repro.common.addr import parse_ip
from repro.common.errors import ConfigError


@register_element("Multicast")
class Multicast(Element):
    """Replicates each packet to a fixed list of destination addresses.

    ``Multicast(ADDR1, ADDR2, ...)`` -- one copy per address, all out
    port 0 with the destination rewritten.  Because the destination set
    is a static constant list, static analysis can check every generated
    destination against the requester's white-list, which is why Table 1
    marks multicast safe (checkable) for third parties.
    """

    cycle_cost = 1.8
    is_multiplying = True

    def configure(self, args: List[str]) -> None:
        if not args:
            raise ConfigError("Multicast needs at least one destination")
        self.destinations = [parse_ip(a) for a in args]

    def push(self, port: int, packet) -> PushResult:
        results: PushResult = []
        for index, dest in enumerate(self.destinations):
            copy = packet if index == len(self.destinations) - 1 \
                else packet.copy()
            copy[IP_DST] = dest
            results.append((0, copy))
        return results

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        # One flat port-0 group in packet-major order (all of packet 1's
        # copies before packet 2's), matching the scalar egress order;
        # the last destination reuses the original packet, like push().
        destinations = self.destinations
        last = len(destinations) - 1
        out: List = []
        append = out.append
        for packet in packets:
            for index, dest in enumerate(destinations):
                copy = packet if index == last else packet.copy()
                copy[IP_DST] = dest
                append(copy)
        return [(0, out)]
