"""Measurement and plumbing elements: counters, flow meters, tees, paint.

``FlowMeter`` is the Table 1 "flow meter" middlebox: it observes flows
without modifying packets, which is why static analysis proves it safe
for every requester role.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.click.element import (
    Element,
    PushBatchResult,
    PushColumnsResult,
    PushResult,
    parse_int_arg,
    register_element,
)
from repro.click.packet import IP_DST, IP_PROTO, IP_SRC, TP_DST, TP_SRC


@register_element("Counter")
class Counter(Element):
    """Counts packets and bytes; forwards unchanged."""

    cycle_cost = 0.3
    has_column_kernel = True
    needs_length_column = True

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 0)
        self.packets = 0
        self.bytes = 0

    def push(self, port: int, packet) -> PushResult:
        self.packets += 1
        self.bytes += packet.length
        return [(0, packet)]

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        self.packets += len(packets)
        self.bytes += sum(p.length for p in packets)
        return [(0, packets)]

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        self.packets += cols.n_alive
        self.bytes += cols.bytes_alive()
        return [(0, cols)]


@register_element("FlowMeter")
class FlowMeter(Element):
    """Per-flow packet/byte accounting; forwards unchanged.

    Keeps per-flow state, but never alters traffic, so it is safe for
    any requester (Table 1) -- it is however excluded from consolidation
    because its memory grows with the number of flows (Section 5).
    """

    stateful = True
    cycle_cost = 1.0
    has_column_kernel = True
    column_fields = (IP_SRC, IP_DST, IP_PROTO, TP_SRC, TP_DST)
    needs_length_column = True

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 0)
        self.flow_packets: Dict[tuple, int] = defaultdict(int)
        self.flow_bytes: Dict[tuple, int] = defaultdict(int)

    def push(self, port: int, packet) -> PushResult:
        key = packet.flow_key()
        self.flow_packets[key] += 1
        self.flow_bytes[key] += packet.length
        return [(0, packet)]

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        flow_packets = self.flow_packets
        flow_bytes = self.flow_bytes
        for packet in packets:
            key = packet.flow_key()
            flow_packets[key] += 1
            flow_bytes[key] += packet.length
        return [(0, packets)]

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        # Keys come from the *columns*, not packet.flow_key(): an
        # upstream kernel may have rewritten 5-tuple columns that are
        # not materialized back to the packets yet.
        rows = cols.alive_rows()
        key_cols = [cols.column(f) for f in self.column_fields]
        lengths = cols.lengths()
        if rows is not None:
            key_cols = [c[rows] for c in key_cols]
            lengths = lengths[rows]
        flow_packets = self.flow_packets
        flow_bytes = self.flow_bytes
        columns = [c.tolist() for c in key_cols]
        for src, dst, proto, sport, dport, length in zip(
            columns[0], columns[1], columns[2], columns[3], columns[4],
            lengths.tolist(),
        ):
            key = (src, dst, proto, sport, dport)
            flow_packets[key] += 1
            flow_bytes[key] += length
        return [(0, cols)]

    @property
    def flow_count(self) -> int:
        """Number of distinct flows observed."""
        return len(self.flow_packets)

    def shard_unsafe_reason(self):
        # Stateful, but every table is keyed by the packet's flow key:
        # flows partitioned across shards never share an entry, so
        # per-shard tables union to exactly the single-process table.
        return None


@register_element("Tee")
class Tee(Element):
    """Copies each packet to every output port.

    ``Tee(N)`` declares N outputs; with no argument the number of
    connected outputs is used.
    """

    n_outputs = None
    cycle_cost = 0.5
    is_multiplying = True

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 1)
        self.fanout = parse_int_arg(args[0], "fanout") if args else None

    def initialize(self, runtime) -> None:
        if self.fanout is None:
            used = runtime.config.used_output_ports(self.name)
            self.fanout = (max(used) + 1) if used else 1

    def push(self, port: int, packet) -> PushResult:
        results = [(0, packet)]
        for out in range(1, self.fanout):
            results.append((out, packet.copy()))
        return results

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        # Replicate per batch: the originals go out port 0, each extra
        # port gets one fresh copy per packet (scalar order preserved).
        results = [(0, packets)]
        for out in range(1, self.fanout):
            results.append((out, [p.copy() for p in packets]))
        return results


@register_element("Paint")
class Paint(Element):
    """Stamps a color annotation on each packet."""

    cycle_cost = 0.3
    has_column_kernel = True

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 1)
        self.color = parse_int_arg(args[0], "color")

    def push(self, port: int, packet) -> PushResult:
        packet.annotations["paint"] = self.color
        return [(0, packet)]

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        color = self.color
        for packet in packets:
            packet.annotations["paint"] = color
        return [(0, packets)]

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        cols.annotate("paint", self.color)
        return [(0, cols)]


@register_element("PaintSwitch")
class PaintSwitch(Element):
    """Routes each packet out the port equal to its paint color.

    Unpainted packets exit port 0.
    """

    n_outputs = None
    cycle_cost = 0.4

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 0)

    def push(self, port: int, packet) -> PushResult:
        return [(int(packet.annotations.get("paint", 0)), packet)]

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        groups = {}
        for packet in packets:
            out = int(packet.annotations.get("paint", 0))
            try:
                groups[out].append(packet)
            except KeyError:
                groups[out] = [packet]
        return list(groups.items())
