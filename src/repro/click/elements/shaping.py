"""Buffering, batching, and rate control elements.

``TimedUnqueue`` is the element behind the paper's push-notification
batcher (Figure 4): it buffers traffic and releases bursts on a fixed
interval, letting a mobile device's radio sleep between bursts.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.click.element import (
    Element,
    PushBatchResult,
    PushResult,
    parse_float_arg,
    parse_int_arg,
    register_element,
)


@register_element("Queue")
class Queue(Element):
    """A FIFO with bounded capacity; overflow packets are dropped.

    Downstream pull-style elements (``Unqueue`` family) register as
    listeners and drain it.
    """

    cycle_cost = 0.5
    is_buffering = True

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 1)
        self.capacity = parse_int_arg(args[0], "capacity") if args else 1000
        self.buffer: Deque = deque()
        self.drops = 0
        self._listeners = []

    def add_listener(self, callback) -> None:
        """Register a callable invoked whenever a packet is enqueued."""
        self._listeners.append(callback)

    def pull(self):
        """Remove and return the head packet, or None when empty."""
        if self.buffer:
            return self.buffer.popleft()
        return None

    def __len__(self) -> int:
        return len(self.buffer)

    def push(self, port: int, packet) -> PushResult:
        if len(self.buffer) >= self.capacity:
            self.drops += 1
            return []
        self.buffer.append(packet)
        for listener in self._listeners:
            listener()
        return []

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        buffer = self.buffer
        if not self._listeners:
            # No drain side: absorb the whole batch in one extend, drop
            # whatever exceeds the remaining room (exactly what a
            # per-packet loop would do with nothing emptying the
            # buffer in between).
            room = self.capacity - len(buffer)
            if room >= len(packets):
                buffer.extend(packets)
            else:
                if room > 0:
                    buffer.extend(packets[:room])
                self.drops += len(packets) - max(room, 0)
            return []
        # Listeners may drain between enqueues (Unqueue), so overflow
        # depends on interleaving: keep the exact per-packet protocol,
        # with the hot names hoisted out of the loop.
        capacity = self.capacity
        listeners = self._listeners
        append = buffer.append
        drops = 0
        for packet in packets:
            if len(buffer) >= capacity:
                drops += 1
                continue
            append(packet)
            for listener in listeners:
                listener()
        if drops:
            self.drops += drops
        return []


class _QueueFedElement(Element):
    """Base for pull-side elements: binds to upstream Queue instances."""

    def initialize(self, runtime) -> None:
        self.upstream_queues: List[Queue] = []
        for name, _port in runtime.config.predecessors(self.name, 0):
            element = runtime.elements[name]
            if isinstance(element, Queue):
                element.add_listener(self._on_enqueue)
                self.upstream_queues.append(element)

    def _on_enqueue(self) -> None:
        """Called when an upstream queue receives a packet."""

    def _pull_one(self):
        for queue in self.upstream_queues:
            packet = queue.pull()
            if packet is not None:
                return packet
        return None


@register_element("Unqueue")
class Unqueue(_QueueFedElement):
    """Continuously drains upstream queues (back-to-back forwarding)."""

    cycle_cost = 0.5

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 0)

    def _on_enqueue(self) -> None:
        packet = self._pull_one()
        while packet is not None:
            self.emit(0, packet)
            packet = self._pull_one()

    def push(self, port: int, packet) -> PushResult:
        # Also usable in a push path as a no-op.
        return [(0, packet)]


@register_element("TimedUnqueue")
class TimedUnqueue(Element):
    """Releases up to BURST buffered packets every INTERVAL seconds.

    ``TimedUnqueue(INTERVAL, BURST)``.  Packets pushed into the element
    are buffered; a periodic timer flushes them.  This is the batching
    primitive of the Figure 4 client request (``TimedUnqueue(120,100)``).
    """

    cycle_cost = 0.7
    is_buffering = True

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 1, 2)
        self.interval = parse_float_arg(args[0], "interval")
        self.burst = parse_int_arg(args[1], "burst") if len(args) > 1 else 1
        if self.interval <= 0:
            self.interval = 1e-9
        self.buffer: Deque = deque()
        self.batches_emitted = 0

    def initialize(self, runtime) -> None:
        self.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        released = 0
        while self.buffer and released < self.burst:
            self.emit(0, self.buffer.popleft())
            released += 1
        if released:
            self.batches_emitted += 1
        self.schedule(self.interval, self._tick)

    def push(self, port: int, packet) -> PushResult:
        self.buffer.append(packet)
        return []

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        self.buffer.extend(packets)
        return []


@register_element("RatedUnqueue")
class RatedUnqueue(Element):
    """Emits buffered packets at a fixed packet rate (packets/second)."""

    cycle_cost = 0.7
    is_buffering = True

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 1)
        self.rate = parse_float_arg(args[0], "rate")
        if self.rate <= 0:
            self.rate = 1.0
        self.buffer: Deque = deque()
        self._draining = False

    def push(self, port: int, packet) -> PushResult:
        self.buffer.append(packet)
        if not self._draining:
            self._draining = True
            self.schedule(1.0 / self.rate, self._drain)
        return []

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        self.buffer.extend(packets)
        if not self._draining:
            self._draining = True
            self.schedule(1.0 / self.rate, self._drain)
        return []

    def _drain(self) -> None:
        if self.buffer:
            self.emit(0, self.buffer.popleft())
        if self.buffer:
            self.schedule(1.0 / self.rate, self._drain)
        else:
            self._draining = False


@register_element("BandwidthShaper")
class BandwidthShaper(Element):
    """Delays packets so egress never exceeds RATE bits per second.

    ``BandwidthShaper(RATE_BPS [, CAPACITY])``.  Packets beyond the
    buffering capacity are dropped.
    """

    cycle_cost = 0.9
    is_buffering = True

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 1, 2)
        self.rate_bps = parse_float_arg(args[0], "rate")
        self.capacity = (
            parse_int_arg(args[1], "capacity") if len(args) > 1 else 1000
        )
        self.backlog = 0
        self.drops = 0
        self._next_free = 0.0

    def push(self, port: int, packet) -> PushResult:
        if self.backlog >= self.capacity:
            self.drops += 1
            return []
        now = self.runtime.now if self.runtime else 0.0
        start = max(now, self._next_free)
        transmit_time = packet.length * 8.0 / self.rate_bps
        self._next_free = start + transmit_time
        self.backlog += 1

        def release(p=packet):
            self.backlog -= 1
            self.emit(0, p)

        self.schedule(self._next_free - now, release)
        return []


@register_element("RateLimiter")
class RateLimiter(Element):
    """Token-bucket policer: conformant packets exit port 0, excess is
    dropped (or exits port 1 when connected).

    ``RateLimiter(RATE_PPS [, BURST])``.
    """

    n_outputs = None
    cycle_cost = 0.8

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 1, 2)
        self.rate = parse_float_arg(args[0], "rate")
        self.burst = (
            parse_float_arg(args[1], "burst") if len(args) > 1 else self.rate
        )
        self.tokens = self.burst
        self._last_refill = 0.0
        self.dropped = 0

    def push(self, port: int, packet) -> PushResult:
        now = self.runtime.now if self.runtime else self._last_refill
        elapsed = max(0.0, now - self._last_refill)
        self._last_refill = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return [(0, packet)]
        self.dropped += 1
        return [(1, packet)]

    def shard_unsafe_reason(self):
        # One token bucket polices the aggregate; per-shard buckets
        # would multiply the permitted rate by the shard count.
        return "polices an aggregate token bucket across all flows"
