"""The built-in Click element library.

Importing this package registers every element class with the registry in
:mod:`repro.click.element`.  The set covers everything the paper's
configurations and Table 1 middleboxes need: I/O endpoints, classifiers,
rewriters (including the NAT-style ``IPRewriter``), traffic shaping and
batching, per-flow metering, stateful firewalls, tunnels, DPI, multicast,
and the ``ChangeEnforcer`` sandbox element (Section 4.4).
"""

from repro.click.elements import (  # noqa: F401
    classify,
    dpi,
    io,
    multicast,
    rewrite,
    sandbox,
    shaping,
    stateful,
    stats,
    switching,
    tunnel,
    web,
)
