"""Deep packet inspection and application-layer middlebox elements.

These model the operator middleboxes of Figure 3 (HTTP optimizer, web
cache) and the Table 1 rows DPI / transparent proxy.  DPI and the
transparent proxy touch traffic that is not addressed to them, which is
why Table 1 denies them to third parties and clients but allows them to
the operator.
"""

from __future__ import annotations

from typing import List

from repro.click.element import Element, PushResult, register_element
from repro.click.packet import IP_DST, IP_SRC, PAYLOAD, TP_DST, TP_SRC
from repro.common.addr import parse_ip
from repro.common.errors import ConfigError


@register_element("DPI")
class DPI(Element):
    """Payload pattern matcher: matches exit port 0, misses port 1.

    ``DPI(PATTERN [, PATTERN...])`` -- substring match over the payload.
    """

    n_outputs = 2
    cycle_cost = 3.0

    def configure(self, args: List[str]) -> None:
        if not args:
            raise ConfigError("DPI needs at least one pattern")
        self.patterns = [a.encode() if isinstance(a, str) else a
                         for a in args]
        self.matches = 0

    def push(self, port: int, packet) -> PushResult:
        payload = packet.get(PAYLOAD) or b""
        if isinstance(payload, str):
            payload = payload.encode()
        for pattern in self.patterns:
            if pattern in payload:
                self.matches += 1
                return [(0, packet)]
        return [(1, packet)]


@register_element("TransparentProxy")
class TransparentProxy(Element):
    """Redirects matching traffic to a proxy address, transparently.

    ``TransparentProxy(PROXY_ADDR, PROXY_PORT)``.  Rewrites the
    destination of port-80 traffic to the proxy -- processing traffic
    that was *not* addressed to it, the defining property that makes it
    operator-only in Table 1.
    """

    stateful = True
    cycle_cost = 2.5

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 2)
        self.proxy_addr = parse_ip(args[0])
        if not args[1].strip().isdigit():
            raise ConfigError("bad proxy port %r" % (args[1],))
        self.proxy_port = int(args[1])
        self.redirects = 0
        # original destination by flow key, to restore on responses.
        self.original_dst = {}

    def push(self, port: int, packet) -> PushResult:
        if packet[TP_DST] == 80:
            self.original_dst[packet.flow_key()] = packet[IP_DST]
            packet[IP_DST] = self.proxy_addr
            packet[TP_DST] = self.proxy_port
            self.redirects += 1
        return [(0, packet)]


@register_element("HTTPOptimizer")
class HTTPOptimizer(Element):
    """Operator HTTP optimizer (Figure 3): normalizes HTTP headers.

    Models the application optimizers that alter HTTP headers (e.g.
    ``Accept-Encoding``), the behaviour the HTTP-vs-HTTPS use case in
    Section 8 wants to opt out of via a payload invariant.
    """

    cycle_cost = 2.8

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 1)
        self.rewrites = 0

    def push(self, port: int, packet) -> PushResult:
        payload = packet.get(PAYLOAD) or b""
        if isinstance(payload, str):
            payload = payload.encode()
        if b"Accept-Encoding:" in payload:
            packet[PAYLOAD] = payload.replace(
                b"Accept-Encoding: gzip", b"Accept-Encoding: identity"
            )
            self.rewrites += 1
        return [(0, packet)]


@register_element("WebCache")
class WebCache(Element):
    """Operator web cache (Figure 3): answers repeat GETs locally.

    Cache hits are answered directly out port 1 (towards the client,
    with source/destination swapped); misses pass through port 0.
    """

    n_outputs = 2
    stateful = True
    cycle_cost = 2.5

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 1)
        self.cache = set()
        self.hits = 0
        self.misses = 0

    def push(self, port: int, packet) -> PushResult:
        payload = packet.get(PAYLOAD) or b""
        if isinstance(payload, str):
            payload = payload.encode()
        if not payload.startswith(b"GET "):
            return [(0, packet)]
        key = (packet[IP_DST], payload.split(b"\r\n", 1)[0])
        if key in self.cache:
            self.hits += 1
            response = packet.copy()
            response[IP_SRC], response[IP_DST] = (
                packet[IP_DST],
                packet[IP_SRC],
            )
            response[TP_SRC], response[TP_DST] = (
                packet[TP_DST],
                packet[TP_SRC],
            )
            return [(1, response)]
        self.cache.add(key)
        self.misses += 1
        return [(0, packet)]
