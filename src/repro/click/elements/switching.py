"""Port-selection and header-stamping elements.

The remaining vanilla-Click vocabulary the paper's configurations could
reasonably use: static and round-robin output switches, a rate meter,
TTL/TOS stampers, and an ICMP ping responder (another safe
responder-style module in the EchoResponder family).
"""

from __future__ import annotations

from typing import List

from repro.click.element import (
    Element,
    PushBatchResult,
    PushColumnsResult,
    PushResult,
    parse_float_arg,
    parse_int_arg,
    register_element,
)
from repro.click.packet import (
    ICMP,
    IP_DST,
    IP_PROTO,
    IP_SRC,
    IP_TOS,
    IP_TTL,
)
from repro.common.errors import ConfigError


@register_element("Switch")
class Switch(Element):
    """Emits every packet on one statically configured output port.

    ``Switch(K)``; ``Switch(-1)`` drops everything (Click semantics).
    """

    n_outputs = None
    cycle_cost = 0.2
    has_column_kernel = True

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 1)
        self.port = parse_int_arg(args[0], "output port")
        if self.port < -1:
            raise ConfigError("Switch port must be >= -1")

    def push(self, port: int, packet) -> PushResult:
        if self.port < 0:
            return []
        return [(self.port, packet)]

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        if self.port < 0:
            return []
        return [(self.port, packets)]

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        if self.port < 0:
            return []
        return [(self.port, cols)]


@register_element("RoundRobinSwitch")
class RoundRobinSwitch(Element):
    """Spreads packets across its outputs in round-robin order.

    ``RoundRobinSwitch(N)``; with no argument the number of connected
    outputs is used.
    """

    n_outputs = None
    cycle_cost = 0.3

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 1)
        self.fanout = parse_int_arg(args[0], "fanout") if args else None
        self._next = 0

    def initialize(self, runtime) -> None:
        if self.fanout is None:
            used = runtime.config.used_output_ports(self.name)
            self.fanout = (max(used) + 1) if used else 1

    def push(self, port: int, packet) -> PushResult:
        out = self._next % max(1, self.fanout)
        self._next += 1
        return [(out, packet)]

    def shard_unsafe_reason(self):
        # The output port depends on how many packets came before,
        # across all flows -- sharding would change every assignment.
        return "spreads packets round-robin in cross-flow arrival order"


@register_element("Meter")
class Meter(Element):
    """Rate-based classifier: packets within RATE packets/second exit
    port 0, the excess exits port 1 (Click's Meter).

    ``Meter(RATE_PPS)``.
    """

    n_outputs = 2
    cycle_cost = 0.6

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 1)
        self.rate = parse_float_arg(args[0], "rate")
        if self.rate <= 0:
            raise ConfigError("Meter rate must be positive")
        self._window_start = 0.0
        self._window_count = 0

    def push(self, port: int, packet) -> PushResult:
        now = self.runtime.now if self.runtime else 0.0
        if now - self._window_start >= 1.0:
            self._window_start = now
            self._window_count = 0
        self._window_count += 1
        if self._window_count <= self.rate:
            return [(0, packet)]
        return [(1, packet)]

    def shard_unsafe_reason(self):
        # The rate window counts packets of *all* flows together; N
        # shards would each admit a full RATE before marking excess.
        return "measures an aggregate rate across all flows"


@register_element("SetIPTTL")
class SetIPTTL(Element):
    """Stamps a constant TTL."""

    cycle_cost = 0.3
    has_column_kernel = True
    column_fields = (IP_TTL,)

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 1)
        self.ttl = parse_int_arg(args[0], "ttl")
        if not 1 <= self.ttl <= 255:
            raise ConfigError("TTL must be 1..255")

    def push(self, port: int, packet) -> PushResult:
        packet[IP_TTL] = self.ttl
        return [(0, packet)]

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        ttl = self.ttl
        for packet in packets:
            packet.fields[IP_TTL] = ttl
        return [(0, packets)]

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        cols.set_all(IP_TTL, self.ttl)
        return [(0, cols)]


@register_element("SetIPTOS")
class SetIPTOS(Element):
    """Stamps a constant TOS/DSCP byte (traffic prioritization)."""

    cycle_cost = 0.3
    has_column_kernel = True
    column_fields = (IP_TOS,)

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 1)
        self.tos = parse_int_arg(args[0], "tos")
        if not 0 <= self.tos <= 255:
            raise ConfigError("TOS must be 0..255")

    def push(self, port: int, packet) -> PushResult:
        packet[IP_TOS] = self.tos
        return [(0, packet)]

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        tos = self.tos
        for packet in packets:
            packet.fields[IP_TOS] = tos
        return [(0, packets)]

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        cols.set_all(IP_TOS, self.tos)
        return [(0, cols)]


@register_element("ICMPPingResponder")
class ICMPPingResponder(Element):
    """Answers ICMP echo requests by swapping source and destination.

    Non-ICMP traffic is dropped.  Like EchoResponder, statically
    provable safe: replies only go to whoever asked.
    """

    cycle_cost = 0.8

    def configure(self, args: List[str]) -> None:
        self.require_args(args, 0, 0)
        self.replies = 0

    def push(self, port: int, packet) -> PushResult:
        if packet[IP_PROTO] != ICMP:
            return []
        packet[IP_SRC], packet[IP_DST] = (
            packet[IP_DST], packet[IP_SRC],
        )
        self.replies += 1
        return [(0, packet)]
