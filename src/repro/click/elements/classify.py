"""Classification elements: ``IPFilter``, ``IPClassifier``, ``Classifier``.

All three are driven by the tcpdump-subset flow-spec language in
:mod:`repro.policy.flowspec`, so a pattern written in a client request
means exactly the same thing to the dataplane and to the symbolic engine.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.click.element import (
    Element,
    PushBatchResult,
    PushResult,
    register_element,
)
from repro.common.errors import ConfigError
from repro.policy.flowspec import FlowSpec, parse_flowspec


@register_element("IPFilter")
class IPFilter(Element):
    """Sequential allow/deny rules; first match wins.

    Arguments are rules like ``allow udp port 1500`` / ``deny all`` /
    ``drop src net 10.0.0.0/8``.  Unmatched packets are dropped (Click's
    implicit trailing ``deny all``).  Allowed packets exit on port 0.
    """

    n_inputs = 1
    n_outputs = 1
    cycle_cost = 1.2

    def configure(self, args: List[str]) -> None:
        if not args:
            raise ConfigError("IPFilter needs at least one rule")
        self.rules: List[Tuple[bool, FlowSpec]] = []
        for rule in args:
            action, _, spec_text = rule.strip().partition(" ")
            action = action.lower()
            if action in ("allow", "accept", "pass"):
                allowed = True
            elif action in ("deny", "drop", "reject"):
                allowed = False
            else:
                raise ConfigError("bad IPFilter action in %r" % (rule,))
            self.rules.append((allowed, parse_flowspec(spec_text)))
        # Hoisted DNF tuples for the vectorized batch matcher.
        self._compiled = tuple(
            (allowed, spec.compiled()) for allowed, spec in self.rules
        )
        self.dropped = 0

    def push(self, port: int, packet) -> PushResult:
        for allowed, spec in self.rules:
            if spec.matches(packet):
                if allowed:
                    return [(0, packet)]
                break
        self.dropped += 1
        return []

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        # Vectorized first-match-wins over the precompiled DNF: plain
        # tuple loops and one fields.get binding per packet instead of
        # a FlowSpec.matches() call per rule per packet.
        compiled = self._compiled
        out: List = []
        append = out.append
        dropped = 0
        for packet in packets:
            get = packet.fields.get
            verdict = False
            for allowed, clauses in compiled:
                matched = False
                for clause in clauses:
                    for field, allowed_set in clause:
                        if get(field, 0) not in allowed_set:
                            break
                    else:
                        matched = True
                        break
                if matched:
                    verdict = allowed
                    break
            if verdict:
                append(packet)
            else:
                dropped += 1
        if dropped:
            self.dropped += dropped
        if not out:
            return []
        return [(0, out)]


@register_element("IPClassifier")
class IPClassifier(Element):
    """Sends each packet out the port of its first matching pattern.

    One flow-spec argument per output port; the last argument may be
    ``-`` to catch everything else.  Unmatched packets are dropped.
    """

    n_inputs = 1
    n_outputs = None  # one output per pattern
    cycle_cost = 1.2

    def configure(self, args: List[str]) -> None:
        if not args:
            raise ConfigError("IPClassifier needs at least one pattern")
        self.patterns: List[FlowSpec] = []
        for arg in args:
            text = arg.strip()
            if text == "-":
                self.patterns.append(FlowSpec.any())
            else:
                self.patterns.append(parse_flowspec(text))
        self._compiled = tuple(spec.compiled() for spec in self.patterns)
        self.dropped = 0

    def push(self, port: int, packet) -> PushResult:
        for index, spec in enumerate(self.patterns):
            if spec.matches(packet):
                return [(index, packet)]
        self.dropped += 1
        return []

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        # Vectorized first-match dispatch over the precompiled DNF;
        # groups keep first-emission port order (dict insertion order).
        compiled = self._compiled
        groups = {}
        dropped = 0
        for packet in packets:
            get = packet.fields.get
            for index, clauses in enumerate(compiled):
                matched = False
                for clause in clauses:
                    for field, allowed_set in clause:
                        if get(field, 0) not in allowed_set:
                            break
                    else:
                        matched = True
                        break
                if matched:
                    try:
                        groups[index].append(packet)
                    except KeyError:
                        groups[index] = [packet]
                    break
            else:
                dropped += 1
        if dropped:
            self.dropped += dropped
        return list(groups.items())


@register_element("IngressFilter")
class IngressFilter(Element):
    """Directional anti-spoofing filter (Section 7 mitigation).

    Two interfaces: traffic entering interface 0 (inbound, from the
    outside) is dropped when its *source* lies in one of the protected
    prefixes -- outsiders cannot spoof inside addresses.  Interface 1
    (outbound) passes everything; inside sources legitimately appear
    there.

    ``IngressFilter(PREFIX, PREFIX, ...)``.
    """

    n_inputs = 2
    n_outputs = 2
    cycle_cost = 1.0

    INBOUND = 0
    OUTBOUND = 1

    def configure(self, args: List[str]) -> None:
        from repro.common.addr import parse_prefix, prefix_range
        from repro.common.intervals import IntervalSet

        if not args:
            raise ConfigError(
                "IngressFilter needs at least one protected prefix"
            )
        protected = IntervalSet.empty()
        for arg in args:
            network, plen = parse_prefix(arg.strip())
            low, high = prefix_range(network, plen)
            protected = protected.union(
                IntervalSet.from_interval(low, high)
            )
        self.protected = protected
        self.dropped_spoofed = 0

    def push(self, port: int, packet) -> PushResult:
        from repro.click.packet import IP_SRC

        if port == self.INBOUND and packet[IP_SRC] in self.protected:
            self.dropped_spoofed += 1
            return []
        return [(port, packet)]


@register_element("Classifier")
class Classifier(IPClassifier):
    """Accepted as an alias of :class:`IPClassifier`.

    Real Click's ``Classifier`` matches raw byte offsets; every use in the
    paper's configurations is expressible as an IP-level pattern, so we
    reuse the flow-spec syntax rather than model byte offsets.
    """
