"""Classification elements: ``IPFilter``, ``IPClassifier``, ``Classifier``.

All three are driven by the tcpdump-subset flow-spec language in
:mod:`repro.policy.flowspec`, so a pattern written in a client request
means exactly the same thing to the dataplane and to the symbolic engine.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.click import columnar
from repro.click.element import (
    Element,
    PushBatchResult,
    PushColumnsResult,
    PushResult,
    register_element,
)
from repro.common.errors import ConfigError
from repro.policy.flowspec import FlowSpec, parse_flowspec


def _dnf_fields(compiled_specs) -> tuple:
    """All header fields a sequence of compiled DNFs constrains."""
    fields = set()
    for clauses in compiled_specs:
        for clause in clauses:
            for field, _allowed in clause:
                fields.add(field)
    return tuple(sorted(fields))


@register_element("IPFilter")
class IPFilter(Element):
    """Sequential allow/deny rules; first match wins.

    Arguments are rules like ``allow udp port 1500`` / ``deny all`` /
    ``drop src net 10.0.0.0/8``.  Unmatched packets are dropped (Click's
    implicit trailing ``deny all``).  Allowed packets exit on port 0.
    """

    n_inputs = 1
    n_outputs = 1
    cycle_cost = 1.2
    has_column_kernel = True

    def configure(self, args: List[str]) -> None:
        if not args:
            raise ConfigError("IPFilter needs at least one rule")
        self.rules: List[Tuple[bool, FlowSpec]] = []
        for rule in args:
            action, _, spec_text = rule.strip().partition(" ")
            action = action.lower()
            if action in ("allow", "accept", "pass"):
                allowed = True
            elif action in ("deny", "drop", "reject"):
                allowed = False
            else:
                raise ConfigError("bad IPFilter action in %r" % (rule,))
            self.rules.append((allowed, parse_flowspec(spec_text)))
        # Hoisted DNF tuples for the vectorized batch matcher.
        self._compiled = tuple(
            (allowed, spec.compiled()) for allowed, spec in self.rules
        )
        self.column_fields = _dnf_fields(c for _a, c in self._compiled)
        self._col_rules = None  # compiled lazily on first column batch
        self.dropped = 0

    def push(self, port: int, packet) -> PushResult:
        for allowed, spec in self.rules:
            if spec.matches(packet):
                if allowed:
                    return [(0, packet)]
                break
        self.dropped += 1
        return []

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        # Vectorized first-match-wins over the precompiled DNF: plain
        # tuple loops and one fields.get binding per packet instead of
        # a FlowSpec.matches() call per rule per packet.
        compiled = self._compiled
        out: List = []
        append = out.append
        dropped = 0
        for packet in packets:
            get = packet.fields.get
            verdict = False
            for allowed, clauses in compiled:
                matched = False
                for clause in clauses:
                    for field, allowed_set in clause:
                        if get(field, 0) not in allowed_set:
                            break
                    else:
                        matched = True
                        break
                if matched:
                    verdict = allowed
                    break
            if verdict:
                append(packet)
            else:
                dropped += 1
        if dropped:
            self.dropped += dropped
        if not out:
            return []
        return [(0, out)]

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        # First-match-wins over whole columns: each rule's DNF mask is
        # intersected with the still-undecided rows, allow rules
        # accumulate into the verdict, and the scan stops as soon as
        # every row is decided.
        np = columnar.np
        rules = self._col_rules
        if rules is None:
            rules = self._col_rules = tuple(
                (allowed, columnar.compile_clause_matchers(clauses))
                for allowed, clauses in self._compiled
            )
        n = cols.n
        verdict = None
        undecided = None
        for allowed, clause_matchers in rules:
            mask = columnar.match_dnf(cols, clause_matchers, n)
            if undecided is None:
                eligible = mask
                undecided = ~mask
            else:
                eligible = mask & undecided
                undecided &= ~mask
            if allowed:
                verdict = eligible if verdict is None \
                    else verdict | eligible
            if not undecided.any():
                break
        if verdict is None:
            verdict = np.zeros(n, dtype=bool)
        before = cols.n_alive
        cols.kill(verdict)
        killed = before - cols.n_alive
        if killed:
            self.dropped += killed
        if not cols.n_alive:
            return []
        return [(0, cols)]


@register_element("IPClassifier")
class IPClassifier(Element):
    """Sends each packet out the port of its first matching pattern.

    One flow-spec argument per output port; the last argument may be
    ``-`` to catch everything else.  Unmatched packets are dropped.
    """

    n_inputs = 1
    n_outputs = None  # one output per pattern
    cycle_cost = 1.2
    has_column_kernel = True

    def configure(self, args: List[str]) -> None:
        if not args:
            raise ConfigError("IPClassifier needs at least one pattern")
        self.patterns: List[FlowSpec] = []
        for arg in args:
            text = arg.strip()
            if text == "-":
                self.patterns.append(FlowSpec.any())
            else:
                self.patterns.append(parse_flowspec(text))
        self._compiled = tuple(spec.compiled() for spec in self.patterns)
        self.column_fields = _dnf_fields(self._compiled)
        self._col_patterns = None  # compiled lazily on first column batch
        self.dropped = 0

    def push(self, port: int, packet) -> PushResult:
        for index, spec in enumerate(self.patterns):
            if spec.matches(packet):
                return [(index, packet)]
        self.dropped += 1
        return []

    def push_batch(self, port: int, packets: List) -> PushBatchResult:
        # Vectorized first-match dispatch over the precompiled DNF;
        # groups keep first-emission port order (dict insertion order).
        compiled = self._compiled
        groups = {}
        dropped = 0
        for packet in packets:
            get = packet.fields.get
            for index, clauses in enumerate(compiled):
                matched = False
                for clause in clauses:
                    for field, allowed_set in clause:
                        if get(field, 0) not in allowed_set:
                            break
                    else:
                        matched = True
                        break
                if matched:
                    try:
                        groups[index].append(packet)
                    except KeyError:
                        groups[index] = [packet]
                    break
            else:
                dropped += 1
        if dropped:
            self.dropped += dropped
        return list(groups.items())

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        # First-match dispatch: each pattern claims its matching rows
        # out of the still-unclaimed alive set.  Groups are emitted in
        # first-matching-row order -- the same order push_batch's
        # dict-insertion grouping produces -- and a single full group
        # skips the split entirely.
        np = columnar.np
        patterns = self._col_patterns
        if patterns is None:
            patterns = self._col_patterns = tuple(
                columnar.compile_clause_matchers(clauses)
                for clauses in self._compiled
            )
        n = cols.n
        unclaimed = cols.alive_mask()
        groups = []
        for index, clause_matchers in enumerate(patterns):
            mask = columnar.match_dnf(cols, clause_matchers, n)
            mask &= unclaimed
            if mask.any():
                groups.append((index, mask))
                unclaimed &= ~mask
                if not unclaimed.any():
                    break
        leftover = int(unclaimed.sum())
        if leftover:
            self.dropped += leftover
        if not groups:
            return []
        if len(groups) == 1 and int(groups[0][1].sum()) == cols.n_alive:
            # Every alive row matched one pattern: no split needed.
            return [(groups[0][0], cols)]
        groups.sort(key=lambda g: int(np.argmax(g[1])))
        return cols.split(groups)


@register_element("IngressFilter")
class IngressFilter(Element):
    """Directional anti-spoofing filter (Section 7 mitigation).

    Two interfaces: traffic entering interface 0 (inbound, from the
    outside) is dropped when its *source* lies in one of the protected
    prefixes -- outsiders cannot spoof inside addresses.  Interface 1
    (outbound) passes everything; inside sources legitimately appear
    there.

    ``IngressFilter(PREFIX, PREFIX, ...)``.
    """

    n_inputs = 2
    n_outputs = 2
    cycle_cost = 1.0
    has_column_kernel = True
    column_fields = ("ip_src",)

    INBOUND = 0
    OUTBOUND = 1

    def configure(self, args: List[str]) -> None:
        from repro.common.addr import parse_prefix, prefix_range
        from repro.common.intervals import IntervalSet

        if not args:
            raise ConfigError(
                "IngressFilter needs at least one protected prefix"
            )
        protected = IntervalSet.empty()
        for arg in args:
            network, plen = parse_prefix(arg.strip())
            low, high = prefix_range(network, plen)
            protected = protected.union(
                IntervalSet.from_interval(low, high)
            )
        self.protected = protected
        self._col_protected = None  # compiled lazily
        self.dropped_spoofed = 0

    def push(self, port: int, packet) -> PushResult:
        from repro.click.packet import IP_SRC

        if port == self.INBOUND and packet[IP_SRC] in self.protected:
            self.dropped_spoofed += 1
            return []
        return [(port, packet)]

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        if port != self.INBOUND:
            return [(port, cols)]
        matcher = self._col_protected
        if matcher is None:
            matcher = self._col_protected = \
                columnar.compile_interval_matcher(self.protected)
        spoofed = matcher(cols.column("ip_src"))
        before = cols.n_alive
        cols.kill(~spoofed)
        killed = before - cols.n_alive
        if killed:
            self.dropped_spoofed += killed
        if not cols.n_alive:
            return []
        return [(port, cols)]


@register_element("Classifier")
class Classifier(IPClassifier):
    """Accepted as an alias of :class:`IPClassifier`.

    Real Click's ``Classifier`` matches raw byte offsets; every use in the
    paper's configurations is expressible as an IP-level pattern, so we
    reuse the flow-spec syntax rather than model byte offsets.
    """
