"""The packet abstraction shared by the concrete and symbolic dataplanes.

A :class:`Packet` is a mapping from header-field names to values plus an
opaque payload.  The field names below are the canonical vocabulary used
everywhere in the library -- by concrete Click elements, by the symbolic
models in :mod:`repro.symexec`, and by the policy language -- so that a
flow specification written against ``tp_dst`` constrains the same thing
the dataplane rewrites.

Tunnel elements (``IPEncap``/``UDPIPEncap``) push the current headers onto
an encapsulation stack and install fresh outer headers; ``IPDecap`` pops
them back.  This mirrors the paper's tunnel use case, where the inner
destination address only becomes visible at decapsulation time.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

# Re-exported so `repro.click.packet` remains the natural import site for
# dataplane code; the constants themselves live in repro.common.fields to
# keep the policy and symbolic packages free of dataplane imports.
from repro.common.fields import (  # noqa: F401
    GRE,
    HEADER_FIELDS,
    ICMP,
    IP_DST,
    IP_PROTO,
    IP_SRC,
    IP_TOS,
    IP_TTL,
    PAYLOAD,
    PROTO_NAMES,
    PROTO_NUMBERS,
    SCTP,
    TCP,
    TCP_FLAGS,
    TH_ACK,
    TH_FIN,
    TH_RST,
    TH_SYN,
    TP_DST,
    TP_SRC,
    UDP,
)

_packet_ids = itertools.count(1)

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """The splitmix64 finalizer: a fixed, well-mixed 64-bit scrambler.

    Used by :meth:`Packet.flow_hash` because Python's builtin ``hash``
    is identity on small ints (terrible shard spread) and salted for
    strings (not stable across processes).
    """
    x &= _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class Packet:
    """A concrete network packet.

    ``fields`` holds the canonical header fields; ``annotations`` holds
    Click-style annotations (paint color, firewall tag, ...), which travel
    with the packet but are not part of the wire format.

    >>> from repro.common import parse_ip
    >>> p = Packet(ip_src=parse_ip("10.0.0.1"), ip_proto=UDP, tp_dst=1500)
    >>> p[TP_DST]
    1500
    """

    __slots__ = (
        "fields", "annotations", "encap_stack", "length", "uid",
        "_fkey", "_fhash",
    )

    #: Fields whose mutation invalidates the cached flow key/hash.
    _FLOW_FIELDS = frozenset((IP_SRC, IP_DST, IP_PROTO, TP_SRC, TP_DST))

    def __init__(
        self,
        length: int = 64,
        annotations: Optional[Dict[str, Any]] = None,
        **fields: Any,
    ):
        self.fields: Dict[str, Any] = {
            IP_SRC: 0,
            IP_DST: 0,
            IP_PROTO: UDP,
            IP_TTL: 64,
            IP_TOS: 0,
            TP_SRC: 0,
            TP_DST: 0,
            TCP_FLAGS: 0,
            PAYLOAD: b"",
        }
        for name, value in fields.items():
            self.fields[name] = value
        self.annotations: Dict[str, Any] = dict(annotations or {})
        self.encap_stack: List[Dict[str, Any]] = []
        self.length = length
        self.uid = next(_packet_ids)
        self._fkey = None
        self._fhash = None

    # -- mapping-style access ---------------------------------------------
    def __getitem__(self, field: str) -> Any:
        return self.fields[field]

    def __setitem__(self, field: str, value: Any) -> None:
        self.fields[field] = value
        if field in self._FLOW_FIELDS:
            self._fkey = None
            self._fhash = None

    def __contains__(self, field: str) -> bool:
        return field in self.fields

    def get(self, field: str, default: Any = None) -> Any:
        """Return a header field, or ``default`` if unset."""
        return self.fields.get(field, default)

    # -- lifecycle ----------------------------------------------------------
    def copy(self) -> "Packet":
        """Deep-enough copy: fields, annotations and encap stack."""
        clone = Packet.__new__(Packet)
        clone.fields = dict(self.fields)
        clone.annotations = dict(self.annotations)
        clone.encap_stack = [dict(layer) for layer in self.encap_stack]
        clone.length = self.length
        clone.uid = next(_packet_ids)
        # Clones share the 5-tuple, so the cached flow key/hash carries
        # over -- the big win for bulk traffic generation, where one
        # hashed template fans out to thousands of pre-hashed clones.
        clone._fkey = self._fkey
        clone._fhash = self._fhash
        return clone

    def copy_many(self, n: int) -> List["Packet"]:
        """``n`` independent copies, cheaper than ``n`` ``copy()`` calls.

        Bulk traffic generation (benchmark and simulator injectors)
        clones one template packet thousands of times; this amortizes
        the attribute and method lookups of :meth:`copy` over the whole
        run and skips the default-field-dict construction that
        ``Packet()`` would redo per clone.
        """
        fields = self.fields
        annotations = self.annotations
        encap_stack = self.encap_stack
        length = self.length
        fkey = self._fkey
        fhash = self._fhash
        new = Packet.__new__
        next_id = _packet_ids.__next__
        clones: List[Packet] = []
        append = clones.append
        for _ in range(n):
            clone = new(Packet)
            clone.fields = dict(fields)
            clone.annotations = dict(annotations)
            clone.encap_stack = [dict(layer) for layer in encap_stack]
            clone.length = length
            clone.uid = next_id()
            clone._fkey = fkey
            clone._fhash = fhash
            append(clone)
        return clones

    # -- tunneling -----------------------------------------------------------
    def encapsulate(self, **outer: Any) -> None:
        """Push current headers onto the encap stack, install outer ones.

        Fields not named in ``outer`` keep their current values in the new
        outer header (TTL, TOS...).
        """
        self.encap_stack.append(dict(self.fields))
        for name, value in outer.items():
            self.fields[name] = value
        self._fkey = None
        self._fhash = None

    def decapsulate(self) -> None:
        """Pop the innermost saved header, restoring pre-encap fields."""
        if not self.encap_stack:
            raise ValueError("decapsulate() on a packet with no encap stack")
        self.fields = self.encap_stack.pop()
        self._fkey = None
        self._fhash = None

    @property
    def encap_depth(self) -> int:
        """Number of encapsulation layers currently on the packet."""
        return len(self.encap_stack)

    # -- convenience -----------------------------------------------------------
    def is_tcp_syn(self) -> bool:
        """Whether this is a bare TCP SYN (connection-opening) packet."""
        flags = self.fields.get(TCP_FLAGS, 0)
        return (
            self.fields.get(IP_PROTO) == TCP
            and bool(flags & TH_SYN)
            and not flags & TH_ACK
        )

    def flow_key(self):
        """The 5-tuple identifying this packet's flow.

        Cached per packet; the cache is invalidated by
        :meth:`__setitem__` on a 5-tuple field and by
        encapsulation/decapsulation.  Code that writes
        ``packet.fields`` directly (hot batch loops, columnar
        materialization) must clear ``_fkey``/``_fhash`` itself.
        """
        key = self._fkey
        if key is None:
            f = self.fields
            key = self._fkey = (
                f[IP_SRC], f[IP_DST], f[IP_PROTO], f[TP_SRC], f[TP_DST],
            )
        return key

    def flow_hash(self) -> int:
        """A stable 64-bit hash of this packet's 5-tuple (RSS-style).

        Properties the sharded dataplane and any future RSS/ECMP logic
        rely on (see ``docs/dataplane.md``):

        * **Stable and seed-independent.**  The value is a pure
          function of the header fields -- no process state, no
          ``PYTHONHASHSEED``.  The same packet hashes identically in
          every worker process on every run, so a hash computed in one
          process can steer traffic in another.
        * **Direction-symmetric.**  The two endpoints are mixed
          commutatively, so a flow and its reverse flow share a hash
          -- both directions of a connection land on the same shard,
          which is what lets per-conversation elements (the stateful
          firewall) run sharded, like symmetric RSS in hardware.
        * **Missing-field tolerant.**  Fields that are absent or
          ``None`` (a half-built packet, a non-TCP/UDP packet without
          ports) contribute 0, matching a packet that carries explicit
          zeros.

        The value is cached per packet (invalidated the same way as
        :meth:`flow_key`), and clones inherit the cache -- so sharding
        a ``copy_many`` train rehashes nothing.
        """
        cached = self._fhash
        if cached is not None:
            return cached
        get = self.fields.get
        src = get(IP_SRC) or 0
        dst = get(IP_DST) or 0
        proto = get(IP_PROTO) or 0
        sport = get(TP_SRC) or 0
        dport = get(TP_DST) or 0
        a = _mix64((src << 16) ^ sport)
        b = _mix64((dst << 16) ^ dport)
        # xor and sum are both order-free, so (a, b) and (b, a) mix to
        # the same value without collapsing structure the way a bare
        # xor of equal endpoints would.
        value = _mix64(((a + b) & _MASK64) ^ _mix64((a ^ b) + proto))
        self._fhash = value
        return value

    def reverse_flow_key(self):
        """The 5-tuple of the reverse direction of this packet's flow."""
        f = self.fields
        return (f[IP_DST], f[IP_SRC], f[IP_PROTO], f[TP_DST], f[TP_SRC])

    def __repr__(self) -> str:
        from repro.common.addr import format_ip

        proto = PROTO_NAMES.get(self.fields.get(IP_PROTO), "?")
        return "Packet(%s %s:%s -> %s:%s len=%d)" % (
            proto,
            format_ip(self.fields.get(IP_SRC, 0)),
            self.fields.get(TP_SRC, 0),
            format_ip(self.fields.get(IP_DST, 0)),
            self.fields.get(TP_DST, 0),
            self.length,
        )
