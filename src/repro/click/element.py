"""Element base class and the element registry.

A Click element is a small unit of packet processing with numbered input
and output ports.  Concrete behaviour lives in :meth:`Element.push`;
the matching symbolic behaviour is registered separately in
:mod:`repro.symexec.models` keyed by the same class name, which is what
lets the controller statically analyse any configuration built from
known elements (Section 4.1 of the paper).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.common.errors import ConfigError

#: ``push()`` results: a list of (output port, packet) pairs.
PushResult = List[Tuple[int, "object"]]

#: ``push_batch()`` results: a list of (output port, packets) groups.
#: Port order follows first emission; packet order within a group is the
#: order the packets would have left that port under scalar ``push()``.
PushBatchResult = List[Tuple[int, List["object"]]]

#: ``push_columns()`` results: a list of (output port, PacketColumns)
#: groups, same ordering contract as ``push_batch``.
PushColumnsResult = List[Tuple[int, "object"]]

_REGISTRY: Dict[str, Type["Element"]] = {}


def register_element(class_name: str):
    """Class decorator registering a Click element under ``class_name``."""

    def decorate(cls: Type["Element"]) -> Type["Element"]:
        if class_name in _REGISTRY:
            raise ConfigError(
                "element class %r registered twice" % (class_name,)
            )
        cls.class_name = class_name
        _REGISTRY[class_name] = cls
        return cls

    return decorate


def element_registry() -> Dict[str, Type["Element"]]:
    """A copy of the class-name -> element-class registry."""
    return dict(_REGISTRY)


def lookup_element(class_name: str) -> Type["Element"]:
    """Return the element class registered under ``class_name``."""
    try:
        return _REGISTRY[class_name]
    except KeyError:
        raise ConfigError("unknown element class %r" % (class_name,))


def create_element(
    class_name: str, name: str, args: Sequence[str] = ()
) -> "Element":
    """Instantiate a registered element from its textual argument list."""
    return lookup_element(class_name)(name, list(args))


class Element:
    """Base class for all Click elements.

    Subclasses set :attr:`n_inputs` / :attr:`n_outputs` (``None`` means
    "any number", fixed by the configuration) and override
    :meth:`configure` to parse their argument strings and :meth:`push`
    to process packets.
    """

    class_name = "Element"
    n_inputs: Optional[int] = 1
    n_outputs: Optional[int] = 1
    #: Whether the element keeps per-flow state.  Stateful modules are not
    #: consolidated with other tenants and use suspend/resume rather than
    #: terminate/boot (Section 5).
    stateful = False
    #: Relative CPU cost of pushing one packet through this element, in
    #: abstract "element cost units"; the platform throughput model sums
    #: these along a config's path (see repro.platform.throughput).
    cycle_cost = 1.0
    #: Whether push() may buffer packets for later emission.  Buffering
    #: elements returning no results are not counted as drops by the
    #: instrumented runtime, and their backlog feeds the queue-depth
    #: gauge (see repro.obs).
    is_buffering = False
    #: Whether push() may emit more than one packet per input packet
    #: (Tee, Multicast).  The instrumented runtime's deferred-accounting
    #: fast path derives per-element drop counts from entry counts,
    #: which multiplying elements would skew, so their presence selects
    #: the exact per-hop counting path instead.
    is_multiplying = False
    #: Whether the element implements :meth:`push_columns`.  The segment
    #: compiler only emits a column plan for a join-free segment when
    #: *every* element on it (including the sink) sets this; otherwise
    #: the batch crosses the segment via ``push_batch``.
    has_column_kernel = False
    #: Header fields the column kernel reads or writes.  The plan
    #: compiler unions these over a segment to decide which columns
    #: :class:`~repro.click.columnar.PacketColumns` must lift.  Elements
    #: whose field set depends on configuration (the classifiers)
    #: shadow this class default with an instance attribute.
    column_fields: Tuple[str, ...] = ()
    #: Whether the kernel needs the packet-length column (counters).
    needs_length_column = False

    def __init__(self, name: str, args: Optional[Sequence[str]] = None):
        self.name = name
        self.args = [str(a) for a in (args or [])]
        self.runtime = None  # set by Runtime.bind()
        self.configure(self.args)

    # -- configuration hooks -------------------------------------------------
    def configure(self, args: List[str]) -> None:
        """Parse textual configuration arguments.

        The default accepts an empty argument list only.
        """
        if args:
            raise ConfigError(
                "%s takes no arguments, got %r" % (self.class_name, args)
            )

    def initialize(self, runtime) -> None:
        """Hook called once the runtime is assembled (timers go here)."""

    # -- sharding --------------------------------------------------------------
    def shard_unsafe_reason(self) -> Optional[str]:
        """Why this element cannot run flow-sharded, or ``None`` if it can.

        The sharded dataplane (:mod:`repro.click.sharding`) partitions
        traffic by flow hash across independent runtimes, one per
        worker.  That is only transparent when every element's
        behaviour for a packet depends on nothing but the packet itself
        and state keyed by its flow (or conversation -- the flow hash
        is direction-symmetric).  The default derives the answer from
        the class flags: buffering elements interleave with timers,
        multiplying elements force the exact-counting obs mode, and
        stateful elements are assumed to share state across flows.
        Elements whose state *is* per-flow (``FlowMeter``,
        ``StatefulFirewall``) override this to return ``None``;
        elements that are order-dependent despite being stateless by
        flags (``RoundRobinSwitch``) override it to return a reason.
        """
        if self.is_buffering:
            return "buffers packets for timer-driven release"
        if self.is_multiplying:
            return "multiplies packets (exact-counting graph)"
        if self.stateful:
            return "keeps state that is not keyed by flow"
        return None

    # -- dataplane -------------------------------------------------------------
    def push(self, port: int, packet) -> PushResult:
        """Process ``packet`` arriving on input ``port``.

        Returns a list of ``(output_port, packet)`` pairs; an empty list
        drops the packet.  Elements that buffer (queues, batchers) stash
        the packet and emit later via scheduled callbacks.
        """
        return [(0, packet)]

    def push_batch(self, port: int, packets: List["object"]) -> PushBatchResult:
        """Process a whole batch arriving on input ``port``.

        Returns ``(output_port, packets)`` groups.  The default loops
        over scalar :meth:`push` and regroups by output port, so every
        element is batch-capable; hot elements override this with a
        hand-vectorized loop (FastClick-style) that amortizes attribute
        lookups and list allocations over the batch.

        Contract for overrides, relied on by the runtime's segment
        executor:

        * never return a group with an empty packet list (drop the
          group instead; return ``[]`` when the whole batch was
          dropped or buffered),
        * within one group, packets keep the relative order scalar
          ``push()`` would have emitted them in,
        * the runtime owns the ``packets`` list -- overrides may return
          it (or slices of it) without copying.
        """
        groups: Dict[int, List[object]] = {}
        push = self.push
        for packet in packets:
            for out_port, out_packet in push(port, packet):
                try:
                    groups[out_port].append(out_packet)
                except KeyError:
                    groups[out_port] = [out_packet]
        return list(groups.items())

    def push_columns(self, port: int, cols) -> PushColumnsResult:
        """Process a whole columnar batch arriving on input ``port``.

        Opt-in vectorized tier: only elements with
        :attr:`has_column_kernel` set implement this, and the runtime
        only calls it inside a compiled column plan (see
        ``docs/dataplane.md``).  Contract, on top of the
        :meth:`push_batch` rules:

        * return ``(output_port, PacketColumns)`` groups; never a
          group with zero surviving rows (return ``[]`` when the
          whole batch died),
        * a kernel may pass a freshly built mask to ``cols.kill`` and
          must not reuse it afterwards (the batch takes ownership),
        * writes go through ``set_all``/``set_rows`` or mark the
          column dirty explicitly -- materialization only writes dirty
          columns back,
        * dead rows may hold garbage in written columns; they never
          materialize.
        """
        raise NotImplementedError(
            "%s declares no column kernel" % (type(self).__name__,)
        )

    # -- helpers ---------------------------------------------------------------
    def emit(self, port: int, packet) -> None:
        """Asynchronously emit a packet (for timer-driven elements)."""
        if self.runtime is None:
            raise ConfigError(
                "element %r emitted outside a runtime" % (self.name,)
            )
        self.runtime.deliver_from(self, port, packet)

    def schedule(self, delay: float, callback) -> None:
        """Schedule ``callback()`` after ``delay`` simulated seconds."""
        if self.runtime is None:
            raise ConfigError(
                "element %r scheduled outside a runtime" % (self.name,)
            )
        self.runtime.schedule(delay, callback)

    def require_args(
        self, args: Sequence[str], minimum: int, maximum: Optional[int] = None
    ) -> None:
        """Validate the argument count, raising ConfigError otherwise."""
        if maximum is None:
            maximum = minimum
        if not minimum <= len(args) <= maximum:
            raise ConfigError(
                "%s expects %d..%d arguments, got %d"
                % (self.class_name, minimum, maximum, len(args))
            )

    def __repr__(self) -> str:
        return "%s(%s :: %s)" % (
            type(self).__name__,
            self.name,
            self.class_name,
        )


def parse_keyword_args(
    args: Sequence[str], keywords: Sequence[str]
) -> Tuple[List[str], Dict[str, str]]:
    """Split Click arguments into positional and ``KEY value`` keyword parts.

    Click syntax allows trailing keyword arguments like
    ``Queue(1000, CAPACITY 2000)``.  Returns ``(positional, keyword_map)``.
    """
    positional: List[str] = []
    keyword_map: Dict[str, str] = {}
    wanted = {k.upper() for k in keywords}
    for arg in args:
        head, _, tail = arg.strip().partition(" ")
        if head.upper() in wanted and tail:
            keyword_map[head.upper()] = tail.strip()
        else:
            positional.append(arg)
    return positional, keyword_map


def parse_int_arg(value: str, what: str) -> int:
    """Parse an integer element argument with a helpful error."""
    try:
        return int(value.strip())
    except ValueError:
        raise ConfigError("invalid %s: %r" % (what, value))


def parse_float_arg(value: str, what: str) -> float:
    """Parse a float element argument with a helpful error."""
    try:
        return float(value.strip())
    except ValueError:
        raise ConfigError("invalid %s: %r" % (what, value))
