"""Discrete-event network simulation substrate.

The paper's evaluation ran on real testbeds (10 GbE lab machines, a
wide-area deployment, PlanetLab, a 3G phone with a Monsoon power
monitor).  This package provides the synthetic equivalents that exercise
the same code paths:

* :mod:`repro.sim.events` -- the event loop every simulator shares,
* :mod:`repro.sim.links` -- links with capacity, propagation delay and
  random loss,
* :mod:`repro.sim.tcp` -- analytic TCP/SCTP throughput models (loss
  response, tunnel stacking) for the Figure 14 experiment,
* :mod:`repro.sim.http` -- HTTP transfer and Slowloris session models,
* :mod:`repro.sim.energy` -- the 3G RRC radio energy model behind the
  Figure 13 batching experiment,
* :mod:`repro.sim.traces` -- the synthetic MAWI-like backbone workload
  of Section 6,
* :mod:`repro.sim.replay` -- trace replay driving a Click runtime in
  scalar or batched mode.
"""

from repro.sim.energy import RadioEnergyModel, RRC_PARAMS_3G
from repro.sim.events import EventLoop
from repro.sim.links import Link
from repro.sim.tcp import (
    sctp_over_tcp_goodput,
    sctp_over_udp_goodput,
    tcp_throughput,
)
from repro.sim.replay import (
    ReplayStats,
    flow_packets,
    replay_trace,
    replay_trace_sharded,
    shard_flows,
    trace_packets,
)
from repro.sim.traces import TraceConfig, generate_trace, trace_statistics

__all__ = [
    "EventLoop",
    "Link",
    "tcp_throughput",
    "sctp_over_udp_goodput",
    "sctp_over_tcp_goodput",
    "RadioEnergyModel",
    "RRC_PARAMS_3G",
    "TraceConfig",
    "generate_trace",
    "trace_statistics",
    "ReplayStats",
    "flow_packets",
    "replay_trace",
    "replay_trace_sharded",
    "shard_flows",
    "trace_packets",
]
