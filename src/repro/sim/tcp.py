"""Analytic TCP/SCTP throughput models (Figure 14).

The paper measures SCTP tunneled over UDP vs over TCP on an emulated
100 Mb/s, 20 ms-RTT wide-area link with injected random loss.  We model
both with the Padhye steady-state TCP equation:

* **SCTP over UDP**: SCTP's congestion control is TCP-like, and a UDP
  tunnel is transparent to it, so goodput follows Padhye at the link's
  loss rate.
* **SCTP over TCP**: the outer TCP's loss recovery interacts with the
  inner loop -- every outer retransmission stalls the whole tunnel
  (head-of-line blocking) and the inner SCTP sees the stall as
  congestion.  We model the stacking as loss-amplification: the tunnel
  behaves like a single TCP flow at ``TUNNEL_LOSS_AMPLIFICATION x`` the
  real loss rate, which reproduces the paper's two-to-five-times gap
  over the 1-5 % range.
"""

from __future__ import annotations

import math

#: Default segment size (bytes of payload per packet).
DEFAULT_MSS = 1460
#: Default retransmission timeout (seconds).
DEFAULT_RTO = 0.2
#: Delayed-ACK factor (packets acknowledged per ACK).
DELAYED_ACK_B = 1
#: How much worse loss "feels" through a TCP tunnel (see module doc).
TUNNEL_LOSS_AMPLIFICATION = 3.0

#: Per-packet header overhead, used to turn link capacity into goodput.
UDP_TUNNEL_OVERHEAD = 28 + 20      # UDP/IP outer + inner IP
TCP_TUNNEL_OVERHEAD = 40 + 20      # TCP/IP outer + inner IP


def padhye_throughput_bps(
    loss: float,
    rtt_s: float,
    mss_bytes: int = DEFAULT_MSS,
    rto_s: float = DEFAULT_RTO,
) -> float:
    """Steady-state TCP throughput (Padhye et al.), bits/second.

    Returns ``inf`` at zero loss (caller caps at link capacity).
    """
    if loss <= 0:
        return math.inf
    if not 0 < loss < 1:
        raise ValueError("loss must be in (0, 1)")
    if rtt_s <= 0:
        raise ValueError("rtt must be positive")
    b = DELAYED_ACK_B
    term_fast = rtt_s * math.sqrt(2.0 * b * loss / 3.0)
    term_timeout = (
        rto_s
        * min(1.0, 3.0 * math.sqrt(3.0 * b * loss / 8.0))
        * loss
        * (1.0 + 32.0 * loss * loss)
    )
    segments_per_second = 1.0 / (term_fast + term_timeout)
    return segments_per_second * mss_bytes * 8.0


def tcp_throughput(
    capacity_bps: float,
    rtt_s: float,
    loss: float,
    mss_bytes: int = DEFAULT_MSS,
) -> float:
    """Plain TCP goodput on a lossy link: min(capacity, Padhye)."""
    return min(
        capacity_bps, padhye_throughput_bps(loss, rtt_s, mss_bytes)
    )


def _goodput_fraction(overhead_bytes: int, mss_bytes: int) -> float:
    return mss_bytes / float(mss_bytes + overhead_bytes)


def sctp_over_udp_goodput(
    capacity_bps: float,
    rtt_s: float,
    loss: float,
    mss_bytes: int = DEFAULT_MSS,
) -> float:
    """SCTP goodput through a UDP tunnel (Figure 14, `UDP` series)."""
    fraction = _goodput_fraction(UDP_TUNNEL_OVERHEAD, mss_bytes)
    return min(
        capacity_bps * fraction,
        padhye_throughput_bps(loss, rtt_s, mss_bytes),
    )


def sctp_over_tcp_goodput(
    capacity_bps: float,
    rtt_s: float,
    loss: float,
    mss_bytes: int = DEFAULT_MSS,
    amplification: float = TUNNEL_LOSS_AMPLIFICATION,
) -> float:
    """SCTP goodput through a TCP tunnel (Figure 14, `TCP` series).

    Loss is amplified by the control-loop stacking before entering the
    Padhye model (head-of-line blocking on outer retransmissions).
    """
    fraction = _goodput_fraction(TCP_TUNNEL_OVERHEAD, mss_bytes)
    effective_loss = min(0.999, loss * amplification) if loss > 0 else 0.0
    return min(
        capacity_bps * fraction,
        padhye_throughput_bps(effective_loss, rtt_s, mss_bytes),
    )


def reachability_probe_time_s(
    controller_latency_s: float = 0.2,
) -> float:
    """Time to learn tunnel viability via the In-Net API (Section 8).

    The sender asks the controller whether UDP reaches the destination
    (~200 ms) instead of waiting for SCTP's 3-second init timeout.
    """
    return controller_latency_s


#: SCTP's specification-mandated init timeout (seconds) -- what the
#: sender pays per fallback probe without In-Net.
SCTP_INIT_TIMEOUT_S = 3.0
