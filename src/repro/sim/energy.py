"""Mobile radio energy model (Figures 13 and the HTTP-vs-HTTPS case).

The paper measured a Samsung Galaxy Nexus with a Monsoon power monitor.
We substitute the standard 3G RRC state-machine model: the radio sits in
IDLE, jumps to the high-power DCH state to transfer, then lingers in
DCH (tail timer) and the medium-power FACH state (second tail) before
returning to IDLE.  Push messages that arrive while the radio sleeps pay
the full ramp + both tails; batching amortizes them -- exactly the
effect Figure 13 measures.

Constants are calibrated so the Figure 13 endpoints match: ~240 mW at a
30 s batching interval, ~140 mW at 240 s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class RRCParams:
    """Power states and timers of the radio's RRC state machine."""

    #: Average platform power with the radio idle (screen off), mW.
    idle_mw: float = 115.0
    #: Power while in the dedicated-channel (transfer) state, mW.
    dch_mw: float = 620.0
    #: Power in the shared-channel state, mW.
    fach_mw: float = 400.0
    #: Seconds to promote IDLE -> DCH and complete a small transfer.
    ramp_s: float = 2.0
    #: Extra DCH seconds per message in a delivery burst.
    per_message_s: float = 0.25
    #: DCH inactivity timer before demotion to FACH.
    tail_dch_s: float = 2.0
    #: FACH inactivity timer before demotion to IDLE.
    tail_fach_s: float = 6.0


#: Calibrated 3G parameters (Galaxy Nexus class device).
RRC_PARAMS_3G = RRCParams()

#: LTE-class parameters: higher connected-state power but much shorter
#: tails (connected-mode DRX), so batching still helps -- less
#: dramatically than on 3G.  Included for the paper's forward-looking
#: claim that batching generalizes across radio generations.
RRC_PARAMS_LTE = RRCParams(
    idle_mw=110.0,
    dch_mw=1000.0,     # LTE CONNECTED
    fach_mw=500.0,     # connected-mode DRX (short cycle)
    ramp_s=0.3,
    per_message_s=0.05,
    tail_dch_s=1.0,
    tail_fach_s=2.5,
)


class RadioEnergyModel:
    """Integrates radio power over a delivery schedule."""

    def __init__(self, params: RRCParams = RRC_PARAMS_3G):
        self.params = params

    # -- schedule-level API ------------------------------------------------
    def average_power_mw(
        self,
        deliveries: Sequence[Tuple[float, int]],
        window_s: float,
    ) -> float:
        """Average power over ``window_s`` given delivery bursts.

        ``deliveries`` is ``[(time, messages_in_burst), ...]``; bursts
        whose tails overlap merge (no double counting).
        """
        if window_s <= 0:
            raise ValueError("window must be positive")
        p = self.params
        # Build DCH busy intervals, then FACH tails behind them.
        dch: List[Tuple[float, float]] = []
        for when, count in sorted(deliveries):
            if count <= 0:
                continue
            busy = p.ramp_s + p.per_message_s * count
            start, end = when, when + busy + p.tail_dch_s
            if dch and start <= dch[-1][1]:
                dch[-1] = (dch[-1][0], max(dch[-1][1], end))
            else:
                dch.append((start, end))
        fach: List[Tuple[float, float]] = []
        for start, end in dch:
            f_start, f_end = end, end + p.tail_fach_s
            if fach and f_start <= fach[-1][1]:
                fach[-1] = (fach[-1][0], max(fach[-1][1], f_end))
            else:
                fach.append((f_start, f_end))
        dch_time = _clipped_total(dch, window_s)
        # FACH time must not double-count later DCH promotions.
        fach_time = _clipped_total(
            _subtract_intervals(fach, dch), window_s
        )
        idle_time = max(0.0, window_s - dch_time - fach_time)
        energy = (
            dch_time * p.dch_mw
            + fach_time * p.fach_mw
            + idle_time * p.idle_mw
        )
        return energy / window_s

    def batched_push_power_mw(
        self,
        message_interval_s: float,
        batch_interval_s: float,
        window_s: float = 3600.0,
    ) -> float:
        """Average power when pushes arriving every ``message_interval_s``
        are released in batches every ``batch_interval_s`` (Figure 13).

        The batcher releases everything buffered at each tick, so each
        delivery burst carries ``batch_interval / message_interval``
        messages.
        """
        if batch_interval_s < message_interval_s:
            batch_interval_s = message_interval_s
        per_batch = max(1, round(batch_interval_s / message_interval_s))
        deliveries = []
        t = batch_interval_s
        while t <= window_s:
            deliveries.append((t, per_batch))
            t += batch_interval_s
        return self.average_power_mw(deliveries, window_s)

    def radio_awake_fraction(
        self,
        deliveries: Sequence[Tuple[float, int]],
        window_s: float,
    ) -> float:
        """Fraction of the window with the radio out of IDLE."""
        p = self.params
        avg = self.average_power_mw(deliveries, window_s)
        span = max(p.dch_mw, p.fach_mw) - p.idle_mw
        if span <= 0:
            return 0.0
        # Invert with a conservative FACH-weighted mean awake power.
        awake_mw = (p.dch_mw + p.fach_mw) / 2.0
        return max(
            0.0, min(1.0, (avg - p.idle_mw) / (awake_mw - p.idle_mw))
        )


def _clipped_total(
    intervals: Iterable[Tuple[float, float]], window_s: float
) -> float:
    total = 0.0
    for start, end in intervals:
        lo, hi = max(0.0, start), min(window_s, end)
        if hi > lo:
            total += hi - lo
    return total


def _subtract_intervals(
    intervals: List[Tuple[float, float]],
    cut: List[Tuple[float, float]],
) -> List[Tuple[float, float]]:
    result: List[Tuple[float, float]] = []
    for start, end in intervals:
        pieces = [(start, end)]
        for c_start, c_end in cut:
            next_pieces: List[Tuple[float, float]] = []
            for lo, hi in pieces:
                if c_end <= lo or c_start >= hi:
                    next_pieces.append((lo, hi))
                    continue
                if lo < c_start:
                    next_pieces.append((lo, c_start))
                if hi > c_end:
                    next_pieces.append((c_end, hi))
            pieces = next_pieces
        result.extend(pieces)
    return result


# -- the Section 8 HTTP-vs-HTTPS energy comparison -------------------------

#: WiFi radio + platform power while actively downloading, mW.
WIFI_ACTIVE_MW = 570.0
#: Extra CPU power to decrypt TLS at line speed, mW per Mb/s.
TLS_CPU_MW_PER_MBPS = 10.0


def download_power_mw(rate_bps: float, https: bool = False) -> float:
    """Average device power during a WiFi download (Section 8).

    HTTP at 8 Mb/s measures 570 mW; HTTPS adds the decryption CPU cost
    (~15% at that rate on the paper's device).
    """
    power = WIFI_ACTIVE_MW
    if https:
        power += TLS_CPU_MW_PER_MBPS * (rate_bps / 1e6)
    return power


def download_energy_mj(
    size_bytes: int, rate_bps: float, https: bool = False
) -> float:
    """Total energy of a download in millijoules."""
    duration = size_bytes * 8.0 / rate_bps
    return download_power_mw(rate_bps, https) * duration
