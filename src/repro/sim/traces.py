"""Synthetic MAWI-like backbone workload (Section 6).

The paper processed MAWI traces (the WIDE backbone, January 2014),
keeping TCP connections whose setup and teardown fall inside a 15-minute
window, and found **1,600-4,000 concurrently active TCP connections**
and **400-840 active TCP clients** at any moment -- the numbers that
justify the 1,000-client platform target.

The real pcaps are not redistributable, so this module generates
synthetic traces with the same aggregate behaviour: Poisson connection
arrivals, log-normal (heavy-tailed) durations, and a Zipf-distributed
client population, calibrated so the concurrency statistics land inside
the paper's reported ranges.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Sequence, Tuple


class Flow(NamedTuple):
    """One TCP connection observed in the trace window."""

    start: float
    duration: float
    client: int       # active opener (client IP index)
    server: int
    sport: int
    dport: int


@dataclass(frozen=True)
class TraceConfig:
    """Workload knobs, defaults calibrated to the paper's statistics."""

    #: Observation window (the paper uses 15-minute traces).
    window_s: float = 900.0
    #: Aggregate connection arrival rate (flows/second).
    arrival_rate: float = 280.0
    #: Log-normal duration parameters (median ~3.5 s, heavy tail).
    duration_mu: float = 1.25
    duration_sigma: float = 1.3
    #: Connection durations are clipped to the window (the paper drops
    #: connections whose setup/teardown it does not see).
    max_duration_s: float = 600.0
    #: Size of the client population behind the link.
    n_clients: int = 1500
    #: Zipf skew of per-client activity.
    zipf_s: float = 1.1
    #: Server population.
    n_servers: int = 5000


def _zipf_weights(n: int, s: float) -> List[float]:
    weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def generate_trace(
    config: TraceConfig = TraceConfig(), seed: int = 2014
) -> List[Flow]:
    """Generate one synthetic 15-minute backbone trace."""
    rng = random.Random(seed)
    weights = _zipf_weights(config.n_clients, config.zipf_s)
    cumulative: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)

    def pick_client() -> int:
        x = rng.random()
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return lo

    flows: List[Flow] = []
    t = 0.0
    while True:
        t += rng.expovariate(config.arrival_rate)
        if t >= config.window_s:
            break
        duration = min(
            config.max_duration_s,
            rng.lognormvariate(config.duration_mu, config.duration_sigma),
        )
        # Keep only connections fully inside the window, like the paper.
        if t + duration > config.window_s:
            continue
        flows.append(
            Flow(
                start=t,
                duration=duration,
                client=pick_client(),
                server=rng.randrange(config.n_servers),
                sport=rng.randrange(1024, 65536),
                dport=rng.choice((80, 443, 25, 22, 8080)),
            )
        )
    return flows


class TraceStats(NamedTuple):
    """Concurrency statistics over a trace."""

    max_active_connections: int
    min_active_connections: int
    max_active_clients: int
    min_active_clients: int
    total_connections: int
    samples: int


def trace_statistics(
    flows: Sequence[Flow],
    window_s: float = 900.0,
    sample_every_s: float = 1.0,
    warmup_s: float = 60.0,
) -> TraceStats:
    """Active-connection / active-client statistics (Section 6).

    Sampled each second after a warm-up (the window edges are empty by
    construction since clipped flows were dropped).
    """
    events: List[Tuple[float, int, int]] = []  # time, +1/-1, client
    for flow in flows:
        events.append((flow.start, +1, flow.client))
        events.append((flow.start + flow.duration, -1, flow.client))
    events.sort()
    active = 0
    per_client: Dict[int, int] = {}
    index = 0
    max_conns = 0
    min_conns = None
    max_clients = 0
    min_clients = None
    samples = 0
    t = warmup_s
    end = window_s - warmup_s
    while t <= end:
        while index < len(events) and events[index][0] <= t:
            _when, delta, client = events[index]
            active += delta
            count = per_client.get(client, 0) + delta
            if count <= 0:
                per_client.pop(client, None)
            else:
                per_client[client] = count
            index += 1
        samples += 1
        max_conns = max(max_conns, active)
        min_conns = active if min_conns is None else min(min_conns,
                                                         active)
        n_clients = len(per_client)
        max_clients = max(max_clients, n_clients)
        min_clients = (
            n_clients if min_clients is None
            else min(min_clients, n_clients)
        )
        t += sample_every_s
    return TraceStats(
        max_active_connections=max_conns,
        min_active_connections=min_conns or 0,
        max_active_clients=max_clients,
        min_active_clients=min_clients or 0,
        total_connections=len(flows),
        samples=samples,
    )
