"""A packet-level AIMD congestion-control simulator.

Figure 14's analytic series (:mod:`repro.sim.tcp`) uses the Padhye
equation; this module provides the *empirical* counterpart: an
RTT-slotted AIMD loop (slow start, fast recovery, retransmission
timeouts) driving seeded random loss, so the analytic model can be
cross-validated against simulated transfers.

Two tunnel modes:

* **UDP tunnel** -- the tunnel is transparent: the SCTP-like AIMD loop
  sees the link's loss directly,
* **TCP tunnel** -- the outer TCP retransmits lost packets itself, so
  the inner loop never sees loss, but every outer loss head-of-line
  blocks the tunnel for about one outer recovery time; during long
  stalls the inner loop's RTO fires and it collapses its window too --
  the stacking pathology the paper measures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

DEFAULT_MSS = 1460


@dataclass
class CcResult:
    """Outcome of one simulated transfer."""

    goodput_bps: float
    packets_delivered: int
    loss_events: int
    timeouts: int
    duration_s: float


def _bdp_packets(capacity_bps: float, rtt_s: float,
                 mss_bytes: int) -> float:
    return capacity_bps * rtt_s / (8.0 * mss_bytes)


def simulate_aimd(
    capacity_bps: float,
    rtt_s: float,
    loss: float,
    duration_s: float = 60.0,
    mss_bytes: int = DEFAULT_MSS,
    rto_s: float = 0.2,
    seed: int = 1,
) -> CcResult:
    """One AIMD flow over a lossy link (the UDP-tunnel case).

    RTT-slotted: each round sends ``cwnd`` packets, each independently
    lost with probability ``loss``.  Any loss halves the window (fast
    recovery costs one RTT); a fully-lost round is a timeout (window
    back to 1, pay the RTO).
    """
    rng = random.Random(seed)
    bdp = max(2.0, _bdp_packets(capacity_bps, rtt_s, mss_bytes))
    cwnd = 2.0
    ssthresh = bdp
    now = 0.0
    delivered = 0
    loss_events = 0
    timeouts = 0
    while now < duration_s:
        to_send = max(1, int(min(cwnd, bdp)))
        lost = sum(1 for _ in range(to_send) if rng.random() < loss)
        delivered += to_send - lost
        now += rtt_s
        if lost == to_send and to_send > 0 and loss > 0:
            timeouts += 1
            ssthresh = max(2.0, cwnd / 2.0)
            cwnd = 1.0
            now += rto_s
        elif lost:
            loss_events += 1
            ssthresh = max(2.0, cwnd / 2.0)
            cwnd = ssthresh
            now += rtt_s  # fast-recovery round
        else:
            if cwnd < ssthresh:
                cwnd *= 2.0      # slow start
            else:
                cwnd += 1.0      # congestion avoidance
    return CcResult(
        goodput_bps=delivered * mss_bytes * 8.0 / now,
        packets_delivered=delivered,
        loss_events=loss_events,
        timeouts=timeouts,
        duration_s=now,
    )


def simulate_sctp_over_udp(
    capacity_bps: float,
    rtt_s: float,
    loss: float,
    duration_s: float = 60.0,
    mss_bytes: int = DEFAULT_MSS,
    seed: int = 1,
) -> CcResult:
    """Empirical Figure 14 `UDP` series point."""
    return simulate_aimd(
        capacity_bps, rtt_s, loss,
        duration_s=duration_s, mss_bytes=mss_bytes, seed=seed,
    )


def simulate_sctp_over_tcp(
    capacity_bps: float,
    rtt_s: float,
    loss: float,
    duration_s: float = 60.0,
    mss_bytes: int = DEFAULT_MSS,
    rto_s: float = 0.2,
    seed: int = 1,
) -> CcResult:
    """Empirical Figure 14 `TCP` series point.

    The outer TCP hides loss from the inner loop but stalls the whole
    tunnel on each loss event: roughly one outer recovery (an RTT) per
    fast-retransmit, an RTO per lost retransmission.  The inner loop
    perceives stalls longer than its RTO as timeouts and collapses; it
    also halves on the delay spike of shorter stalls (SCTP's RTT
    variance estimator), which is what strangles throughput.
    """
    rng = random.Random(seed)
    bdp = max(2.0, _bdp_packets(capacity_bps, rtt_s, mss_bytes))
    cwnd = 2.0
    ssthresh = bdp
    now = 0.0
    delivered = 0
    loss_events = 0
    timeouts = 0
    consecutive_timeouts = 0
    while now < duration_s:
        to_send = max(1, int(min(cwnd, bdp)))
        lost = sum(1 for _ in range(to_send) if rng.random() < loss)
        # The outer TCP delivers everything eventually (reliably)...
        delivered += to_send
        now += rtt_s
        if lost:
            loss_events += 1
            # ...but both control loops back off for the same event:
            # the outer halves its window (throttling the tunnel) and
            # the inner halves again when it sees the delay spike --
            # the "double backoff" of stacked loops.
            ssthresh = max(1.0, cwnd / 2.0)
            cwnd = max(1.0, cwnd / 4.0)
            # The tunnel head-of-line blocks for the outer recovery.
            now += 2 * rtt_s
            # Bursts queued behind the stall inflate the inner RTT
            # estimate; spurious inner RTOs are the signature failure
            # of stacked reliable transports (the "TCP meltdown"),
            # firing on a large fraction of outer recovery episodes
            # and backing off exponentially when they repeat.
            if rng.random() < min(1.0, 0.3 + 8.0 * loss):
                timeouts += 1
                consecutive_timeouts += 1
                cwnd = 1.0
                ssthresh = max(2.0, ssthresh / 2.0)
                now += rto_s * (
                    2 ** min(consecutive_timeouts - 1, 3)
                )
            else:
                consecutive_timeouts = 0
        else:
            consecutive_timeouts = 0
            if cwnd < ssthresh:
                cwnd *= 2.0
            else:
                cwnd += 1.0
    return CcResult(
        goodput_bps=delivered * mss_bytes * 8.0 / now,
        packets_delivered=delivered,
        loss_events=loss_events,
        timeouts=timeouts,
        duration_s=now,
    )
