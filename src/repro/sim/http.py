"""HTTP server and transfer models.

Provides the connection-slot server model used by the Slowloris defense
experiment (Figure 15) and simple transfer-time helpers used by the HTTP
platform experiments and the CDN use case.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.events import EventLoop


def transfer_time_s(
    size_bytes: int, rate_bps: float, rtt_s: float = 0.0
) -> float:
    """Duration of one HTTP download: handshake + serialization."""
    if rate_bps <= 0:
        raise ValueError("rate must be positive")
    return 2 * rtt_s + size_bytes * 8.0 / rate_bps


class HttpServer:
    """A server with a bounded connection table.

    Valid requests occupy a slot for ``service_time_s``; Slowloris
    connections occupy a slot for their configured hold time while
    trickling bytes.  When the table is full, new connections are
    rejected -- the starvation the attack aims for.
    """

    def __init__(
        self,
        loop: EventLoop,
        max_connections: int = 256,
        service_time_s: float = 0.05,
        name: str = "origin",
    ):
        self.loop = loop
        self.max_connections = max_connections
        self.service_time_s = service_time_s
        self.name = name
        self.active = 0
        self.served = 0
        self.rejected = 0
        #: (time, served_cumulative) samples for rate plots.
        self.completions: List[float] = []

    def try_open(self, hold_s: Optional[float] = None) -> bool:
        """Attempt a connection; returns False when the table is full.

        ``hold_s`` overrides the service time (Slowloris uses a long
        hold; its connections never count as served).
        """
        if self.active >= self.max_connections:
            self.rejected += 1
            return False
        self.active += 1
        is_attack = hold_s is not None
        duration = hold_s if is_attack else self.service_time_s

        def finish() -> None:
            self.active -= 1
            if not is_attack:
                self.served += 1
                self.completions.append(self.loop.now)

        self.loop.schedule(duration, finish)
        return True

    def served_per_second(
        self, bin_s: float, until: float
    ) -> List[float]:
        """Completed valid requests per second, binned over [0, until]."""
        bins = int(until / bin_s) + 1
        counts = [0.0] * bins
        for when in self.completions:
            index = int(when / bin_s)
            if 0 <= index < bins:
                counts[index] += 1
        return [c / bin_s for c in counts]
