"""A minimal discrete-event loop.

Shared by the platform simulator (VM boots, suspend/resume, batch
timers) and the use-case simulations (attacks, downloads).  Events fire
in timestamp order; ties break in scheduling order, so runs are fully
deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.common.errors import SimulationError


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("when", "seq", "callback", "cancelled")

    def __init__(self, when: float, seq: int,
                 callback: Callable[[], Any]):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class RepeatingEvent:
    """A periodic callback; cancellable between firings.

    Created by :meth:`EventLoop.every`.  Each firing schedules the
    next one, so cancellation takes effect at the next boundary.
    """

    __slots__ = ("_loop", "interval", "callback", "_event", "cancelled")

    def __init__(self, loop: "EventLoop", interval: float,
                 callback: Callable[[], Any]):
        self._loop = loop
        self.interval = interval
        self.callback = callback
        self.cancelled = False
        self._event: Optional[Event] = None

    def cancel(self) -> None:
        """Stop firing (the currently scheduled tick is cancelled)."""
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()

    def _tick(self) -> None:
        if self.cancelled:
            return
        try:
            self.callback()
        finally:
            if not self.cancelled:
                self._event = self._loop.schedule(
                    self.interval, self._tick
                )


class EventLoop:
    """A deterministic simulated-time event loop."""

    def __init__(self, start: float = 0.0):
        self.now = start
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self.fired = 0

    def schedule(
        self, delay: float, callback: Callable[[], Any]
    ) -> Event:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError("cannot schedule in the past")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(
        self, when: float, callback: Callable[[], Any]
    ) -> Event:
        """Run ``callback`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError("cannot schedule in the past")
        event = Event(when, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def every(
        self,
        interval: float,
        callback: Callable[[], Any],
        start_after: Optional[float] = None,
    ) -> RepeatingEvent:
        """Run ``callback`` every ``interval`` simulated seconds.

        The first firing happens after ``start_after`` (defaults to
        ``interval``).  Used by periodic control-plane machinery (the
        idle reaper, the health monitor's liveness checks)."""
        if interval <= 0:
            raise SimulationError("repeat interval must be positive")
        repeating = RepeatingEvent(self, interval, callback)
        delay = interval if start_after is None else start_after
        repeating._event = self.schedule(delay, repeating._tick)
        return repeating

    def run_until(self, deadline: float) -> None:
        """Fire every event up to and including ``deadline``."""
        while self._heap and self._heap[0].when <= deadline:
            self._fire_next()
        self.now = max(self.now, deadline)

    def run(self, max_events: Optional[int] = None) -> None:
        """Fire events until the queue drains (or ``max_events``)."""
        fired = 0
        while self._heap:
            self._fire_next()
            fired += 1
            if max_events is not None and fired >= max_events:
                return

    def _fire_next(self) -> None:
        event = heapq.heappop(self._heap)
        if event.cancelled:
            return
        self.now = max(self.now, event.when)
        self.fired += 1
        event.callback()

    def pending(self) -> int:
        """Number of events not yet fired (including cancelled)."""
        return len(self._heap)

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event (None when empty)."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].when
        return None
