"""Trace replay: drive a Click runtime with the synthetic backbone trace.

Bridges :mod:`repro.sim.traces` (Section 6's MAWI-like workload) and the
concrete dataplane: each :class:`~repro.sim.traces.Flow` becomes a small
train of packets cloned from one template via
:meth:`~repro.click.packet.Packet.copy_many`, and the whole trace is
pushed through a :class:`~repro.click.runtime.Runtime` either packet by
packet (``mode="scalar"``) or through the segment-compiled batch path
(``mode="batch"``, the default).  Both modes inject the same packets in
the same flow-major order, so their egress and drop totals are directly
comparable -- the batch mode exists to make trace-scale experiments
affordable (see ``docs/dataplane.md``).
"""

from __future__ import annotations

import time
from typing import Iterable, List, NamedTuple, Optional, Sequence

from repro.click.packet import TCP, Packet
from repro.click.runtime import Runtime
from repro.click.sharding import ShardedRuntime
from repro.common.errors import SimulationError
from repro.sim.traces import Flow

#: Client index -> IP mapping base (10.0.0.0/8).
CLIENT_BASE = 10 << 24
#: Server index -> IP mapping base (172.16.0.0/12).
SERVER_BASE = (172 << 24) | (16 << 16)


class ReplayStats(NamedTuple):
    """Outcome of one trace replay run."""

    mode: str
    flows: int
    packets: int
    egress: int
    dropped: int
    wall_seconds: float

    @property
    def packets_per_second(self) -> float:
        """Injection throughput of the replay (wall-clock packets/s)."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.packets / self.wall_seconds


def flow_packets(
    flow: Flow, packets_per_flow: int, length: int = 64
) -> List[Packet]:
    """The packet train for one trace flow.

    One template is built per flow and cloned with ``copy_many``, so
    replaying a large trace does not rebuild the default field dict per
    packet.
    """
    template = Packet(
        length=length,
        ip_src=CLIENT_BASE + flow.client,
        ip_dst=SERVER_BASE + flow.server,
        ip_proto=TCP,
        tp_src=flow.sport,
        tp_dst=flow.dport,
    )
    # Prime the flow-key/hash caches once; copy_many propagates them,
    # so neither the sharder nor a stateful element rehashes per clone.
    template.flow_key()
    template.flow_hash()
    return template.copy_many(packets_per_flow)


def trace_packets(
    flows: Iterable[Flow], packets_per_flow: int = 4, length: int = 64
) -> List[Packet]:
    """All packets of a trace, flow-major (all of flow 1, then flow 2...)."""
    packets: List[Packet] = []
    for flow in flows:
        packets.extend(flow_packets(flow, packets_per_flow, length))
    return packets


def replay_trace(
    runtime: Runtime,
    flows: Sequence[Flow],
    entry: Optional[str] = None,
    packets_per_flow: int = 4,
    mode: str = "batch",
    batch_size: int = 256,
    length: int = 64,
) -> ReplayStats:
    """Push a trace's packets through ``runtime`` and report totals.

    ``entry`` defaults to the configuration's first source element.
    ``mode="batch"`` drives ``batch_size`` packets per
    :meth:`~repro.click.runtime.Runtime.inject_batch` call;
    ``mode="scalar"`` loops :meth:`~repro.click.runtime.Runtime.inject`.
    Egress and drop deltas are measured across the run, so the runtime
    may be reused (or pre-warmed) by the caller.
    """
    if mode not in ("batch", "scalar"):
        raise SimulationError("unknown replay mode %r" % (mode,))
    if entry is None:
        sources = runtime.config.sources()
        if not sources:
            raise SimulationError(
                "trace replay needs a source element to inject into"
            )
        entry = sources[0]
    packets = trace_packets(flows, packets_per_flow, length)
    egress_before = len(runtime.output)
    dropped_before = runtime.dropped
    start = time.perf_counter()
    if mode == "batch":
        inject_batch = runtime.inject_batch
        for index in range(0, len(packets), batch_size):
            inject_batch(entry, packets[index:index + batch_size])
    else:
        inject = runtime.inject
        for packet in packets:
            inject(entry, packet)
    wall = time.perf_counter() - start
    return ReplayStats(
        mode=mode,
        flows=len(flows),
        packets=len(packets),
        egress=len(runtime.output) - egress_before,
        dropped=runtime.dropped - dropped_before,
        wall_seconds=wall,
    )


def flow_shard(flow: Flow, shards: int, length: int = 64) -> int:
    """The shard a trace flow's packets map to.

    Uses the exact key the dataplane sharder uses -- the template
    packet's :meth:`~repro.click.packet.Packet.flow_hash` modulo the
    shard count -- so a caller-partitioned replay agrees packet for
    packet with :meth:`~repro.click.sharding.ShardedRuntime.
    inject_batch`'s own partitioning.
    """
    return flow_packets(flow, 1, length)[0].flow_hash() % shards


def shard_flows(
    flows: Sequence[Flow], shards: int, length: int = 64
) -> List[List[Flow]]:
    """Partition a trace's flows across ``shards`` by flow hash.

    The hash is computed once per *flow* (not per packet), which is
    what keeps the parent-side cost of a sharded replay independent of
    ``packets_per_flow``.  Within each shard the flows keep their trace
    order, so per-flow packet order is preserved end to end.
    """
    groups: List[List[Flow]] = [[] for _ in range(shards)]
    for flow in flows:
        groups[flow_shard(flow, shards, length)].append(flow)
    return groups


def _generate_flow_packets(
    flows: Sequence[Flow], packets_per_flow: int, length: int
) -> List[Packet]:
    """Shard-side packet factory for :func:`replay_trace_sharded`.

    Module-level so the process executor can ship it by reference; it
    runs *inside* the shard worker, which is the point -- the packet
    trains never cross the parent/worker boundary.
    """
    packets: List[Packet] = []
    for flow in flows:
        packets.extend(flow_packets(flow, packets_per_flow, length))
    return packets


def replay_trace_sharded(
    sharded: ShardedRuntime,
    flows: Sequence[Flow],
    entry: Optional[str] = None,
    packets_per_flow: int = 4,
    batch_size: int = 256,
    length: int = 64,
    full: bool = False,
) -> ReplayStats:
    """Replay a trace through a :class:`ShardedRuntime`, and collect.

    The parent partitions *flows* (not packets) by flow hash via
    :func:`shard_flows`, then each shard worker generates and injects
    its own packet train (:meth:`~repro.click.sharding.ShardedRuntime.
    inject_generated`), flow-major within the shard.  Nothing
    per-packet crosses the process boundary; with ``full=False`` (the
    default) even the egress records stay worker-side and only counts
    come back, which is what lets throughput scale with worker cores.
    Pass ``full=True`` to also retrieve the egress records (they land
    in ``sharded.output``), e.g. for differential runs.

    The reported wall time spans injection *and* the collect barrier,
    so ``packets_per_second`` measures completed work, not dispatch.
    """
    if entry is None:
        sources = sharded.config.sources()
        if not sources:
            raise SimulationError(
                "trace replay needs a source element to inject into"
            )
        entry = sources[0]
    groups = shard_flows(flows, sharded.shards, length)
    total_packets = len(flows) * packets_per_flow
    start = time.perf_counter()
    sharded.inject_generated(
        entry,
        _generate_flow_packets,
        [(group, packets_per_flow, length) for group in groups],
        batch_size=batch_size,
    )
    collection = sharded.collect(full=full)
    wall = time.perf_counter() - start
    return ReplayStats(
        mode="sharded",
        flows=len(flows),
        packets=total_packets,
        egress=collection.egress_count,
        dropped=collection.dropped,
        wall_seconds=wall,
    )
