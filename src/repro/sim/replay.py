"""Trace replay: drive a Click runtime with the synthetic backbone trace.

Bridges :mod:`repro.sim.traces` (Section 6's MAWI-like workload) and the
concrete dataplane: each :class:`~repro.sim.traces.Flow` becomes a small
train of packets cloned from one template via
:meth:`~repro.click.packet.Packet.copy_many`, and the whole trace is
pushed through a :class:`~repro.click.runtime.Runtime` either packet by
packet (``mode="scalar"``) or through the segment-compiled batch path
(``mode="batch"``, the default).  Both modes inject the same packets in
the same flow-major order, so their egress and drop totals are directly
comparable -- the batch mode exists to make trace-scale experiments
affordable (see ``docs/dataplane.md``).
"""

from __future__ import annotations

import time
from typing import Iterable, List, NamedTuple, Optional, Sequence

from repro.click.packet import TCP, Packet
from repro.click.runtime import Runtime
from repro.common.errors import SimulationError
from repro.sim.traces import Flow

#: Client index -> IP mapping base (10.0.0.0/8).
CLIENT_BASE = 10 << 24
#: Server index -> IP mapping base (172.16.0.0/12).
SERVER_BASE = (172 << 24) | (16 << 16)


class ReplayStats(NamedTuple):
    """Outcome of one trace replay run."""

    mode: str
    flows: int
    packets: int
    egress: int
    dropped: int
    wall_seconds: float

    @property
    def packets_per_second(self) -> float:
        """Injection throughput of the replay (wall-clock packets/s)."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.packets / self.wall_seconds


def flow_packets(
    flow: Flow, packets_per_flow: int, length: int = 64
) -> List[Packet]:
    """The packet train for one trace flow.

    One template is built per flow and cloned with ``copy_many``, so
    replaying a large trace does not rebuild the default field dict per
    packet.
    """
    template = Packet(
        length=length,
        ip_src=CLIENT_BASE + flow.client,
        ip_dst=SERVER_BASE + flow.server,
        ip_proto=TCP,
        tp_src=flow.sport,
        tp_dst=flow.dport,
    )
    return template.copy_many(packets_per_flow)


def trace_packets(
    flows: Iterable[Flow], packets_per_flow: int = 4, length: int = 64
) -> List[Packet]:
    """All packets of a trace, flow-major (all of flow 1, then flow 2...)."""
    packets: List[Packet] = []
    for flow in flows:
        packets.extend(flow_packets(flow, packets_per_flow, length))
    return packets


def replay_trace(
    runtime: Runtime,
    flows: Sequence[Flow],
    entry: Optional[str] = None,
    packets_per_flow: int = 4,
    mode: str = "batch",
    batch_size: int = 256,
    length: int = 64,
) -> ReplayStats:
    """Push a trace's packets through ``runtime`` and report totals.

    ``entry`` defaults to the configuration's first source element.
    ``mode="batch"`` drives ``batch_size`` packets per
    :meth:`~repro.click.runtime.Runtime.inject_batch` call;
    ``mode="scalar"`` loops :meth:`~repro.click.runtime.Runtime.inject`.
    Egress and drop deltas are measured across the run, so the runtime
    may be reused (or pre-warmed) by the caller.
    """
    if mode not in ("batch", "scalar"):
        raise SimulationError("unknown replay mode %r" % (mode,))
    if entry is None:
        sources = runtime.config.sources()
        if not sources:
            raise SimulationError(
                "trace replay needs a source element to inject into"
            )
        entry = sources[0]
    packets = trace_packets(flows, packets_per_flow, length)
    egress_before = len(runtime.output)
    dropped_before = runtime.dropped
    start = time.perf_counter()
    if mode == "batch":
        inject_batch = runtime.inject_batch
        for index in range(0, len(packets), batch_size):
            inject_batch(entry, packets[index:index + batch_size])
    else:
        inject = runtime.inject
        for packet in packets:
            inject(entry, packet)
    wall = time.perf_counter() - start
    return ReplayStats(
        mode=mode,
        flows=len(flows),
        packets=len(packets),
        egress=len(runtime.output) - egress_before,
        dropped=runtime.dropped - dropped_before,
        wall_seconds=wall,
    )
