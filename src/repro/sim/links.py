"""Link models: capacity, propagation delay, random loss.

Used by the wide-area use cases (the emulated 100 Mb/s / 20 ms RTT link
of Figure 14, the PlanetLab-like latency matrix of Figure 16).
"""

from __future__ import annotations

import random
from typing import Optional


class Link:
    """A point-to-point link."""

    def __init__(
        self,
        capacity_bps: float,
        delay_s: float = 0.0,
        loss: float = 0.0,
        seed: Optional[int] = None,
    ):
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= loss < 1.0:
            raise ValueError("loss must be in [0, 1)")
        self.capacity_bps = capacity_bps
        self.delay_s = delay_s
        self.loss = loss
        self._rng = random.Random(seed)
        self.packets_sent = 0
        self.packets_lost = 0

    @property
    def rtt_s(self) -> float:
        """Round-trip propagation delay."""
        return 2 * self.delay_s

    def transmit_time(self, size_bytes: int) -> float:
        """Serialization delay of one packet."""
        return size_bytes * 8.0 / self.capacity_bps

    def one_way_latency(self, size_bytes: int) -> float:
        """Serialization + propagation for one packet."""
        return self.transmit_time(size_bytes) + self.delay_s

    def deliver(self, size_bytes: int) -> Optional[float]:
        """Attempt a transmission: latency, or None when lost."""
        self.packets_sent += 1
        if self.loss and self._rng.random() < self.loss:
            self.packets_lost += 1
            return None
        return self.one_way_latency(size_bytes)

    def observed_loss(self) -> float:
        """Empirical loss rate so far."""
        if not self.packets_sent:
            return 0.0
        return self.packets_lost / self.packets_sent

    def __repr__(self) -> str:
        return "Link(%.0f Mb/s, %.1f ms, loss %.1f%%)" % (
            self.capacity_bps / 1e6,
            self.delay_s * 1e3,
            self.loss * 100,
        )
