"""Command-line interface: ``python -m repro``.

Subcommands:

* ``demo``                      -- run the Figure 4 walkthrough,
* ``audit``                     -- print the Table 1 safety matrix,
* ``check CONFIG.click``        -- statically analyse a configuration
  file for a given role (exit code 0 = allow, 2 = sandbox, 3 = reject),
* ``request REQUEST.json``      -- process a wire-format request
  against the Figure 3 reference network and print the JSON reply,
* ``trace CONFIG.click``        -- print the Figure 2-style symbolic
  execution table for a configuration,
* ``obs``                       -- run the Figure 4 walkthrough with
  observability enabled end to end (admission, provisioning, platform
  boot, dataplane traffic, one failover episode) and dump the
  metrics/span snapshot as a table, JSON, or Prometheus text,
* ``chaos``                     -- run the failure-model chaos
  scenarios (platform crash, boot-timeout storm, link flap during
  migration, controller restart) across seeds; exit 1 on any
  invariant violation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def cmd_demo(_args) -> int:
    from repro import ClientRequest, Controller, figure3_network

    controller = Controller(figure3_network())
    result = controller.request(ClientRequest(
        client_id="mobile1",
        role="client",
        config_source="""
            FromNetfront() ->
            IPFilter(allow udp port 1500) ->
            IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> TimedUnqueue(120, 100)
            -> dst :: ToNetfront();
        """,
        requirements="reach from internet udp -> client dst port 1500",
        owned_addresses=("172.16.15.133",),
        module_name="batcher",
    ))
    print("accepted : %s" % result.accepted)
    print("platform : %s" % result.platform)
    print("address  : %s" % result.address)
    print("sandboxed: %s" % result.sandboxed)
    return 0 if result.accepted else 1


def cmd_audit(_args) -> int:
    from repro.common.addr import parse_ip
    from repro.core import SecurityAnalyzer
    from repro.core.catalog import TABLE1_FUNCTIONALITIES, catalog_config
    from repro.core.security import addresses_to_whitelist

    analyzer = SecurityAnalyzer()
    whitelist = addresses_to_whitelist(
        ["172.16.15.133", "172.16.15.134",
         "198.51.100.1", "198.51.100.2", "198.51.100.3"]
    )
    marks = {"allow": "ok", "sandbox": "ok(s)", "reject": "X"}
    print("%-20s %-12s %-8s %-8s" % (
        "functionality", "third-party", "client", "operator",
    ))
    for name in TABLE1_FUNCTIONALITIES:
        config = catalog_config(name)
        row = [name]
        for role in ("third-party", "client", "operator"):
            report = analyzer.analyze(
                config, role,
                module_address=parse_ip("192.0.2.10"),
                whitelist=whitelist,
            )
            row.append(marks[report.verdict])
        print("%-20s %-12s %-8s %-8s" % tuple(row))
    return 0


def cmd_check(args) -> int:
    from repro.click import parse_config
    from repro.common.addr import parse_ip
    from repro.core import SecurityAnalyzer
    from repro.core.security import addresses_to_whitelist

    with open(args.config) as handle:
        source = handle.read()
    config = parse_config(source)
    config.validate()
    report = SecurityAnalyzer().analyze(
        config,
        args.role,
        module_address=parse_ip(args.module_address),
        whitelist=addresses_to_whitelist(args.whitelist or []),
    )
    print(report)
    return {"allow": 0, "sandbox": 2, "reject": 3}[report.verdict]


def cmd_request(args) -> int:
    from repro import Controller, figure3_network
    from repro.core.api import request_from_json, result_to_json

    with open(args.request) as handle:
        wire = handle.read()
    controller = Controller(figure3_network())
    result = controller.request(request_from_json(wire))
    print(result_to_json(result))
    return 0 if result.accepted else 1


def cmd_elements(_args) -> int:
    from repro.click.element import element_registry
    from repro.symexec.models import has_model

    registry = element_registry()
    print("%-22s %4s %4s %-8s %-6s %s" % (
        "element", "in", "out", "stateful", "model", "summary",
    ))
    for name in sorted(registry):
        cls = registry[name]
        doc = (cls.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        n_in = "any" if cls.n_inputs is None else str(cls.n_inputs)
        n_out = "any" if cls.n_outputs is None else str(cls.n_outputs)
        if isinstance(cls.stateful, bool):
            stateful = "yes" if cls.stateful else "no"
        else:
            stateful = "dyn"  # depends on configuration (IPRewriter)
        print("%-22s %4s %4s %-8s %-6s %s" % (
            name, n_in, n_out, stateful,
            "yes" if has_model(name) else "NO",
            summary[:60],
        ))
    print("\n%d elements registered; every one has a symbolic model."
          % len(registry))
    return 0


def cmd_obs(args) -> int:
    """The Figure 4 walkthrough, fully instrumented.

    One end-to-end pass through every instrumented layer: the
    controller admits the batcher request (admission spans + verdict
    cache), the orchestrator provisions the network's platforms, the
    chosen platform boots the module's VM on first traffic (lifecycle
    histograms), and the deployed configuration is driven with a train
    of UDP packets on a local runtime (per-element dataplane metrics).
    """
    from repro import ClientRequest, Controller, Packet, Runtime, \
        figure3_network
    from repro.click.packet import UDP
    from repro.common.addr import parse_ip
    from repro.obs import Observability
    from repro.platform.orchestrator import PlatformOrchestrator

    obs = Observability()
    network = figure3_network()
    controller = Controller(network, obs=obs)
    result = controller.request(ClientRequest(
        client_id="mobile1",
        role="client",
        config_source="""
            FromNetfront() ->
            IPFilter(allow udp port 1500) ->
            IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> TimedUnqueue(120, 100)
            -> dst :: ToNetfront();
        """,
        requirements="reach from internet udp -> client dst port 1500",
        owned_addresses=("172.16.15.133",),
        module_name="batcher",
    ))
    if not result.accepted:
        print("walkthrough request rejected: %s" % result.reason,
              file=sys.stderr)
        return 1
    # Provision the accepted placement onto the platform substrate and
    # boot the module's VM the way real traffic would (first packet).
    orchestrator = PlatformOrchestrator(network, obs=obs)
    orchestrator.provision_all()
    sim = orchestrator.sim_for(result.platform)
    obs.tracer.sim_clock = lambda: sim.loop.now
    with obs.tracer.span("first-packet", platform=result.platform):
        sim.force_boot(result.module_id)
    sim.suspend_resume_cycle(result.module_id)
    # Drive the deployed configuration with a packet train.
    record = controller.deployed[result.module_id]
    runtime = Runtime(record.config, obs=obs)
    source = record.config.sources()[0]
    for index in range(args.packets):
        runtime.inject(source, Packet(
            ip_src=parse_ip("8.8.8.8"),
            ip_dst=parse_ip(result.address),
            ip_proto=UDP,
            tp_dst=1500,
            tp_src=40000 + index,
        ))
    runtime.run(until=130.0)  # one TimedUnqueue batch interval
    # A short resilience episode so the failure-model counters
    # (faults injected, health checks, failover outcomes, recovery
    # time) show up in the same snapshot as the happy path.
    from repro.resilience.chaos import run_scenario

    run_scenario("platform-crash", seed=1, obs=obs)
    if args.format == "json":
        print(obs.snapshot_json(indent=2))
    elif args.format == "prom":
        print(obs.to_prometheus(), end="")
    else:
        print(obs.render_table(title="figure 4 walkthrough"))
    return 0


def cmd_chaos(args) -> int:
    """Run the chaos scenarios and report per-run verdicts.

    Exit code 0 only when every scenario is invariants-green for
    every seed -- this is what the ``chaos`` CI job gates on.
    """
    from repro.resilience.chaos import SCENARIOS, run_scenario

    if args.list:
        for name in sorted(SCENARIOS):
            print(name)
        return 0
    names = [args.scenario] if args.scenario else sorted(SCENARIOS)
    seeds = tuple(args.seeds)
    reports = [
        run_scenario(name, seed=seed)
        for name in names for seed in seeds
    ]
    for report in reports:
        print(report.summary())
        for failure in report.failures:
            print("    FAIL: %s" % failure)
    green = sum(1 for r in reports if r.passed)
    print("%d/%d runs green (%d scenario(s) x %d seed(s))"
          % (green, len(reports), len(names), len(seeds)))
    return 0 if green == len(reports) else 1


def cmd_trace(args) -> int:
    from repro.click import parse_config
    from repro.symexec import SymbolicEngine, SymGraph
    from repro.symexec.render import format_exploration

    with open(args.config) as handle:
        source = handle.read()
    config = parse_config(source)
    engine = SymbolicEngine(SymGraph.from_click(config))
    sources = config.sources()
    if not sources:
        print("configuration has no source element", file=sys.stderr)
        return 1
    exploration = engine.inject(sources[0])
    print(format_exploration(exploration))
    print("\n%d flows delivered, %d dropped, %d model evaluations"
          % (len(exploration.delivered), len(exploration.dropped),
             exploration.steps))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="In-Net (EuroSys 2015) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="run the Figure 4 walkthrough")
    sub.add_parser("audit", help="print the Table 1 safety matrix")
    sub.add_parser("elements", help="list the Click element library")
    check = sub.add_parser("check", help="statically analyse a config")
    check.add_argument("config", help="Click configuration file")
    check.add_argument("--role", default="third-party",
                       choices=("third-party", "client", "operator"))
    check.add_argument("--module-address", default="192.0.2.10")
    check.add_argument("--whitelist", nargs="*", metavar="ADDR")
    request = sub.add_parser(
        "request", help="process a wire-format request"
    )
    request.add_argument("request", help="JSON request file")
    trace = sub.add_parser(
        "trace", help="print the symbolic execution table"
    )
    trace.add_argument("config", help="Click configuration file")
    obs = sub.add_parser(
        "obs",
        help="run the instrumented Figure 4 walkthrough and dump the "
             "observability snapshot",
    )
    obs.add_argument(
        "--format", default="table",
        choices=("table", "json", "prom"),
        help="snapshot output format (default: table)",
    )
    obs.add_argument(
        "--packets", type=int, default=50,
        help="UDP packets to drive through the deployed module",
    )
    chaos = sub.add_parser(
        "chaos",
        help="run the failure-model chaos scenarios and report "
             "per-run verdicts (exit 1 on any red run)",
    )
    chaos.add_argument(
        "--scenario", default=None,
        help="run only this scenario (default: all)",
    )
    chaos.add_argument(
        "--seeds", type=int, nargs="+", default=[1, 2, 3],
        metavar="SEED",
        help="fault-injection seeds to run each scenario under",
    )
    chaos.add_argument(
        "--list", action="store_true",
        help="list the available scenarios and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "demo": cmd_demo,
        "audit": cmd_audit,
        "elements": cmd_elements,
        "check": cmd_check,
        "request": cmd_request,
        "trace": cmd_trace,
        "obs": cmd_obs,
        "chaos": cmd_chaos,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
